//! `RA_cwa` in action: relational division evaluated naïvely is correct under
//! the closed-world assumption (paper §6.2).
//!
//! Scenario: suppliers supply parts, but some supply records have an unknown
//! part. "Which suppliers supply *every* part in the catalogue?" is a division
//! query — not expressible in positive algebra, yet CWA-naïve evaluation still
//! computes its certain answer.
//!
//! Run with `cargo run --example division_cwa`.

use incomplete_data::prelude::*;
use relalgebra::ast::RaExpr;
use relmodel::display::render_database;
use relmodel::{DatabaseBuilder, Semantics, Value};
use releval::worlds::WorldOptions;

fn main() {
    // Supplies(supplier, part); Part(part).
    let db = DatabaseBuilder::new()
        .relation("Supplies", &["supplier", "part"])
        .relation("Part", &["part"])
        .strs("Supplies", &["acme", "bolt"])
        .strs("Supplies", &["acme", "nut"])
        .strs("Supplies", &["bolts_r_us", "bolt"])
        // Globex supplies bolt and *something* we could not read from the invoice:
        .strs("Supplies", &["globex", "bolt"])
        .tuple("Supplies", vec![Value::str("globex"), Value::null(0)])
        .strs("Part", &["bolt"])
        .strs("Part", &["nut"])
        .build();
    println!("Database:\n{}", render_database(&db));

    // Q = Supplies ÷ Part : suppliers paired with every part.
    let q = RaExpr::relation("Supplies").divide(RaExpr::relation("Part"));
    println!("Query: {q}");
    println!("Class: {}", relalgebra::classify::classify(&q));

    let naive = eval_naive(&q, &db).unwrap();
    let certain_naive = certain_answer_naive(&q, &db).unwrap();
    let truth_cwa =
        certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
    println!("naïve answer:                 {naive}");
    println!("naïve certain answer:         {certain_naive}");
    println!("ground truth (CWA):           {truth_cwa}");
    println!(
        "CWA-naïve evaluation correct: {}",
        CertainAnswers::new(Semantics::Cwa).naive_is_correct(&q, &db).unwrap()
    );

    // Under OWA the same query loses its guarantee: new parts could appear.
    let owa = CertainAnswers::new(Semantics::Owa)
        .with_world_options(WorldOptions::with_owa_extra(1));
    println!(
        "OWA-naïve evaluation correct: {} (division is not preserved when worlds may grow)",
        owa.naive_is_correct(&q, &db).unwrap()
    );

    println!("\nacme is a certain answer: it supplies bolt and nut outright.");
    println!("globex is not: its unknown part might not be `nut`.");
}
