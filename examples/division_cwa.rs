//! `RA_cwa` in action: relational division evaluated naïvely is correct under
//! the closed-world assumption (paper §6.2) — and the engine knows it.
//!
//! Scenario: suppliers supply parts, but some supply records have an unknown
//! part. "Which suppliers supply *every* part in the catalogue?" is a division
//! query — not expressible in positive algebra, yet CWA-naïve evaluation still
//! computes its certain answer, so the engine dispatches it to `NaiveExact`
//! with an `exact` guarantee. Under OWA the same query only carries a
//! `complete` guarantee.
//!
//! Run with `cargo run --example division_cwa`.

use incomplete_data::prelude::*;
use releval::worlds::WorldOptions;
use relmodel::display::render_database;
use relmodel::DatabaseBuilder;

fn main() {
    // Supplies(supplier, part); Part(part).
    let db = DatabaseBuilder::new()
        .relation("Supplies", &["supplier", "part"])
        .relation("Part", &["part"])
        .strs("Supplies", &["acme", "bolt"])
        .strs("Supplies", &["acme", "nut"])
        .strs("Supplies", &["bolts_r_us", "bolt"])
        // Globex supplies bolt and *something* we could not read from the invoice:
        .strs("Supplies", &["globex", "bolt"])
        .tuple("Supplies", vec![Value::str("globex"), Value::null(0)])
        .strs("Part", &["bolt"])
        .strs("Part", &["nut"])
        .build();
    println!("Database:\n{}", render_database(&db));

    // Q = Supplies ÷ Part : suppliers paired with every part.
    let q = parse("Supplies divide Part").unwrap();
    println!("Query: {q}");

    // Under CWA the classifier sees RA_cwa and the theorem applies: naïve
    // evaluation, exact, polynomial.
    let cwa = Engine::new(&db).plan(&q).unwrap();
    println!(
        "CWA dispatch: class {}, strategy {}, guarantee {}",
        cwa.class, cwa.strategy, cwa.guarantee
    );
    println!(
        "naïve object answer:          {}",
        cwa.object_answer.as_ref().unwrap()
    );
    println!("certain answer:               {}", cwa.answers);

    // Cross-check against possible-world ground truth through the same door.
    let truth = Engine::new(&db)
        .options(EngineOptions::exhaustive())
        .ground_truth(&q)
        .unwrap();
    println!("ground truth (CWA):           {}", truth.answers);
    println!(
        "naïve == ground truth:        {}",
        cwa.answers == truth.answers
    );

    // Under OWA the guarantee honestly weakens: new parts could appear, so
    // the naïve answer only *contains* the certain one.
    let owa = Engine::new(&db).semantics(Semantics::Owa).plan(&q).unwrap();
    println!(
        "OWA dispatch: strategy {}, guarantee {} → answers {}",
        owa.strategy, owa.guarantee, owa.answers
    );
    let owa_truth = Engine::new(&db)
        .semantics(Semantics::Owa)
        .options(EngineOptions::exhaustive().with_world_options(WorldOptions::with_owa_extra(1)))
        .ground_truth(&q)
        .unwrap();
    println!("OWA ground truth (growing worlds): {}", owa_truth.answers);

    println!("\nacme is a certain answer: it supplies bolt and nut outright.");
    println!("globex is not: its unknown part might not be `nut`.");
}
