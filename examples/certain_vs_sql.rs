//! The paper's §1 failure gallery, side by side: for each query, what SQL's
//! three-valued logic answers, what naïve evaluation answers, and what is
//! actually certain.
//!
//! Run with `cargo run --example certain_vs_sql`.

use incomplete_data::prelude::*;
use qparser::parse;
use relmodel::builder::{difference_example, orders_and_payments_example};
use relmodel::display::render_rows;
use relmodel::{Database, Semantics};
use releval::worlds::WorldOptions;

fn row(name: &str, query_text: &str, db: &Database) -> Vec<String> {
    let q = parse(query_text).unwrap();
    let sql = eval_3vl(&q, db).unwrap();
    let naive = certain_answer_naive(&q, db).unwrap();
    let truth = certain_answer_worlds(&q, db, Semantics::Cwa, &WorldOptions::default()).unwrap();
    vec![
        name.to_owned(),
        query_text.to_owned(),
        sql.to_string(),
        naive.to_string(),
        truth.to_string(),
    ]
}

fn main() {
    let orders = orders_and_payments_example();
    let diff = difference_example();

    let rows = vec![
        vec![
            "scenario".to_owned(),
            "query".to_owned(),
            "SQL 3VL".to_owned(),
            "naïve (complete part)".to_owned(),
            "certain (ground truth)".to_owned(),
        ],
        row("unpaid orders", "project[#0](Order) minus project[#1](Pay)", &orders),
        row(
            "tautology",
            "project[#0](select[#1 = 'oid1' or #1 != 'oid1'](Pay))",
            &orders,
        ),
        row("R − S, null in S", "R minus S", &diff),
        row("positive: all order ids", "project[#0](Order)", &orders),
        row("positive: paid orders", "project[#1](Pay) intersect project[#0](Order)", &orders),
    ];
    println!("{}", render_rows(&rows));

    println!("Take-aways (paper §1–§2):");
    println!(" * the first three queries are not positive: SQL under-reports, naïve evaluation can over-report;");
    println!(" * for positive queries the naïve answer and the certain answer coincide — that is equation (4).");
}
