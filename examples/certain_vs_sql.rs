//! The paper's §1 failure gallery, side by side: for each query, what SQL's
//! three-valued logic answers, what naïve evaluation answers, what is
//! actually certain — and what guarantee the engine's default dispatch
//! attaches to its own answer.
//!
//! Run with `cargo run --example certain_vs_sql`.

use incomplete_data::prelude::*;
use relmodel::builder::{difference_example, orders_and_payments_example};
use relmodel::display::render_rows;

fn row(name: &str, query_text: &str, db: &Database) -> Vec<String> {
    let q = parse(query_text).unwrap();
    let exhaustive = Engine::new(db).options(EngineOptions::exhaustive());
    let sql = exhaustive
        .baseline_3vl(&q)
        .unwrap()
        .object_answer
        .expect("3VL raw answer");
    let naive = exhaustive
        .plan_with(StrategyKind::NaiveExact, &q)
        .unwrap()
        .answers;
    let truth = exhaustive.plan(&q).unwrap().answers;
    let dispatched = Engine::new(db).plan(&q).unwrap();
    vec![
        name.to_owned(),
        query_text.to_owned(),
        sql.to_string(),
        naive.to_string(),
        truth.to_string(),
        format!("{} [{}]", dispatched.answers, dispatched.guarantee),
    ]
}

fn main() {
    let orders = orders_and_payments_example();
    let diff = difference_example();

    let rows = vec![
        vec![
            "scenario".to_owned(),
            "query".to_owned(),
            "SQL 3VL".to_owned(),
            "naïve (complete part)".to_owned(),
            "certain (ground truth)".to_owned(),
            "engine default [guarantee]".to_owned(),
        ],
        row(
            "unpaid orders",
            "project[#0](Order) minus project[#1](Pay)",
            &orders,
        ),
        row(
            "tautology",
            "project[#0](select[#1 = 'oid1' or #1 != 'oid1'](Pay))",
            &orders,
        ),
        row("R − S, null in S", "R minus S", &diff),
        row("positive: all order ids", "project[#0](Order)", &orders),
        row(
            "positive: paid orders",
            "project[#1](Pay) intersect project[#0](Order)",
            &orders,
        ),
    ];
    println!("{}", render_rows(&rows));

    println!("Take-aways (paper §1–§2):");
    println!(" * the first three queries are not positive: SQL under-reports, naïve evaluation can over-report;");
    println!(" * for positive queries the naïve answer and the certain answer coincide — that is equation (4);");
    println!(" * the engine's default dispatch never over-reports: outside the exact fragment it returns a");
    println!(
        "   sound approximation and labels it as such, instead of silently guessing like SQL does."
    );
}
