//! A tour of the physical-plan layer: parse → plan → lower → execute, with
//! `EXPLAIN` output and operator stats at every stop.
//!
//! Every strategy now executes a rewritten physical plan — `σ(A×B)` becomes
//! a hash equi-join, selections and projections are pushed toward the
//! leaves — on the morsel-driven columnar core, and every `CertainReport`
//! carries the plan's explain text plus the operator telemetry
//! (`stats.plan_text`, `stats.physical_ops`), including the batch layer's
//! counters: morsels processed and how probe traffic split into ground
//! (vectorized hash) vs symbolic (per-row fallback) runs.
//!
//! Run with `cargo run --example explain_tour`.

use incomplete_data::prelude::*;
use relalgebra::physical::PhysicalPlan;
use relmodel::builder::orders_and_payments_example;
use relmodel::display::render_database;

fn show(title: &str, report: &CertainReport) {
    println!("— {title}");
    println!(
        "  strategy {} · guarantee {}",
        report.strategy, report.guarantee
    );
    println!("  physical plan:");
    for line in report.stats.plan_text.lines() {
        println!("    {line}");
    }
    if let Some(ops) = report.stats.physical_ops {
        // `OpStats::summary` renders the same footer `explain_executed`
        // appends to a plan: one line of operator counters, one line of
        // batch/run telemetry (morsels processed, ground vs symbolic rows).
        for line in ops.summary().lines() {
            println!("  {line}");
        }
    }
    println!("  answers: {}\n", report.answers);
}

fn main() {
    let db = orders_and_payments_example();
    println!("The database:\n{}", render_database(&db));

    // 1. Join fusion, seen directly: lowering σ(A×B) yields a hash join
    //    with the non-equality leftovers as a residual predicate.
    let join = parse("project[#0](select[#1 = #3 and #0 != #2](product(Order, Pay)))").unwrap();
    let plan = PhysicalPlan::lower(&join, db.schema()).unwrap();
    println!("— lowering σ[#1 = #3 ∧ #0 ≠ #2](Order × Pay), then π[#0]:");
    for line in plan.explain().lines() {
        println!("    {line}");
    }
    println!(
        "  {} operator(s), hash join fused: {}\n",
        plan.operator_count(),
        plan.has_hash_join()
    );

    // 2. The same plan through the engine: the report carries the explain
    //    text and what the operators actually did.
    let engine = Engine::new(&db);
    show(
        "engine.plan(join query) — the dispatched strategy runs the hash join",
        &engine.plan(&join).unwrap(),
    );

    // 3. The worlds strategy lowers ONCE and executes the shared physical
    //    plan in every possible world; the operator stats aggregate across
    //    worlds.
    let unpaid = parse("project[#0](Order) minus project[#1](Pay)").unwrap();
    let truth = Engine::new(&db)
        .options(EngineOptions::exhaustive().without_symbolic())
        .ground_truth(&unpaid)
        .unwrap();
    println!(
        "— worlds strategy: {} world(s) visited, one plan lowered",
        truth.stats.worlds_enumerated.unwrap_or(0)
    );
    show("ground truth (plan-once, execute-per-world)", &truth);

    // 4. The symbolic strategy runs the *same* plan shape over
    //    condition-carrying c-table rows — hash joins on ground keys,
    //    equality conditions for null keys.
    show(
        "symbolic c-tables on the same operator core",
        &engine.plan(&unpaid).unwrap(),
    );
}
