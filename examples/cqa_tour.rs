//! A tour of consistent query answering: constraints, repairs, and the
//! guarantee-carrying reports they produce.
//!
//! Inconsistency is incompleteness's twin problem: a database violating its
//! integrity constraints denotes the set of its subset-minimal *repairs*,
//! and a trustworthy answer is one that survives every repair. This example
//! declares a key, injects a violation, and walks the engine's consistent-
//! answer dispatch: exact repair enumeration, the sound conflict-free-core
//! approximation under a starved budget, and the composition with nulls.
//!
//! Run with `cargo run --example cqa_tour`.

use incomplete_data::engine::Semantics as EngineSemantics;
use incomplete_data::prelude::*;
use incomplete_data::repairs::{enumerate_repairs, ConflictGraph};
use relmodel::display::render_database;
use relmodel::{DatabaseBuilder, Value};

fn show(title: &str, report: &CertainReport) {
    println!("— {title}");
    println!("    semantics : {}", report.semantics);
    println!("    strategy  : {}", report.strategy);
    println!("    guarantee : {}", report.guarantee);
    println!("    answers   : {}", report.answers);
    let stats = &report.stats;
    if let Some(v) = stats.violations {
        println!(
            "    conflicts : {v} violation(s), {} conflict tuple(s){}",
            stats.conflict_tuples.unwrap_or(0),
            stats
                .estimated_repairs
                .map(|r| format!(", ≤{r} repair(s) estimated"))
                .unwrap_or_default()
        );
    }
    if let Some(r) = stats.repairs_enumerated {
        println!(
            "    repairs   : {r} visited{}",
            if stats.repair_early_exit {
                " (early exit)"
            } else {
                ""
            }
        );
    }
    if let Some(reason) = &stats.fallback {
        println!("    fallback  : {reason}");
    }
    println!();
}

fn main() {
    // ── 1. Declare a key, inject a violation. ─────────────────────────────
    // Two ingestion runs disagree about order oid1's amount: a key
    // violation. oid2 is clean.
    let db = DatabaseBuilder::new()
        .relation("Pay", &["order", "amount"])
        .key("Pay", &["order"])
        .tuple("Pay", vec![Value::str("oid1"), Value::int(100)])
        .tuple("Pay", vec![Value::str("oid1"), Value::int(120)])
        .tuple("Pay", vec![Value::str("oid2"), Value::int(80)])
        .build();
    println!(
        "Database (key Pay(order) violated):\n{}",
        render_database(&db)
    );
    println!("violations: {:?}\n", db.violations().len());

    // ── 2. The repairs, materialized for show. ────────────────────────────
    let graph = ConflictGraph::build(&db);
    for (i, repair) in enumerate_repairs(&db, &graph, 16)
        .unwrap()
        .iter()
        .enumerate()
    {
        println!("repair {i}:\n{}", render_database(repair));
    }

    // ── 3. Plain CWA vs consistent answers. ───────────────────────────────
    let q = "project[#0](Pay)";
    show(
        "certain answers ignore the constraints (dirty data in, dirty answers out)",
        &Engine::new(&db).plan_text(q).unwrap(),
    );
    show(
        "consistent answers: repair enumeration, exact",
        &Engine::new(&db).consistent_answers().plan_text(q).unwrap(),
    );
    show(
        "amounts: only oid2's survives every repair",
        &Engine::new(&db)
            .consistent_answers()
            .plan_text("project[#1](Pay)")
            .unwrap(),
    );

    // ── 4. A starved repair budget degrades to the sound core. ────────────
    show(
        "starved repair budget → conflict-free core, sound, reason recorded",
        &Engine::new(&db)
            .consistent_answers()
            .options(EngineOptions::default().with_max_repairs(1))
            .plan_text("project[#1](Pay)")
            .unwrap(),
    );

    // ── 5. Nulls and violations compose. ──────────────────────────────────
    let dirty_incomplete = DatabaseBuilder::new()
        .relation("Pay", &["order", "amount"])
        .key("Pay", &["order"])
        .tuple("Pay", vec![Value::str("oid1"), Value::int(100)])
        .tuple("Pay", vec![Value::str("oid1"), Value::null(0)])
        .tuple("Pay", vec![Value::str("oid2"), Value::null(1)])
        .build();
    println!(
        "Database (violations AND nulls):\n{}",
        render_database(&dirty_incomplete)
    );
    show(
        "repairs are incomplete databases: per-repair certain answers compose",
        &Engine::new(&dirty_incomplete)
            .semantics(EngineSemantics::ConsistentAnswers)
            .plan_text("project[#0](Pay)")
            .unwrap(),
    );
    show(
        "…and no amount is consistent-certain (⊥ in every repair)",
        &Engine::new(&dirty_incomplete)
            .consistent_answers()
            .plan_text("project[#1](Pay)")
            .unwrap(),
    );
}
