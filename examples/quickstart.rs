//! Quickstart: build an incomplete database, write a query, and compare the
//! four ways of answering it (SQL 3VL, naïve, classical certain answers,
//! possible-world ground truth).
//!
//! Run with `cargo run --example quickstart`.

use incomplete_data::prelude::*;
use qparser::parse;
use relmodel::builder::orders_and_payments_example;
use relmodel::display::render_database;
use relmodel::Semantics;
use releval::worlds::WorldOptions;

fn main() {
    // The paper's running example: two orders, one payment whose `order`
    // attribute is missing (a marked null ⊥0).
    let db = orders_and_payments_example();
    println!("Database:\n{}", render_database(&db));

    // "Which orders have not been paid?" — the student query from the intro.
    let unpaid = parse("project[#0](Order) minus project[#1](Pay)").unwrap();
    println!("Query: {unpaid}");
    println!("Class: {}", relalgebra::classify::classify(&unpaid));

    // 1. What SQL does (three-valued logic): the empty answer.
    let sql = eval_3vl(&unpaid, &db).unwrap();
    println!("SQL 3VL answer:            {sql}");

    // 2. Naïve evaluation (nulls as values), complete part only.
    let naive = certain_answer_naive(&unpaid, &db).unwrap();
    println!("naïve certain answer:      {naive}");

    // 3. Ground truth by possible-world enumeration.
    let truth =
        certain_answer_worlds(&unpaid, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
    println!("ground-truth certain:      {truth}");

    // 4. The Boolean question "is some order certainly unpaid?" is true even
    //    though no specific order is a certain answer.
    let exists_unpaid = unpaid.project(vec![]);
    let certainly_unpaid = releval::worlds::certain_boolean_worlds(
        &exists_unpaid,
        &db,
        Semantics::Cwa,
        &WorldOptions::default(),
    )
    .unwrap();
    println!("certainly ∃ unpaid order:  {certainly_unpaid}");

    // A positive query, on the other hand, is safe to evaluate naïvely.
    let products = parse("project[#1](Order)").unwrap();
    let ca = CertainAnswers::new(Semantics::Cwa);
    println!(
        "products (naïve == ground truth): {}",
        ca.naive_is_correct(&products, &db).unwrap()
    );
}
