//! Quickstart: build an incomplete database, write a query, and let the
//! [`Engine`] front door classify it, pick an evaluation strategy, and report
//! what guarantee the answer carries.
//!
//! Run with `cargo run --example quickstart`.

use incomplete_data::prelude::*;
use relmodel::builder::orders_and_payments_example;
use relmodel::display::render_database;

fn main() {
    // The paper's running example: two orders, one payment whose `order`
    // attribute is missing (a marked null ⊥0).
    let db = orders_and_payments_example();
    println!("Database:\n{}", render_database(&db));

    // "Which orders have not been paid?" — the student query from the intro.
    let unpaid = parse("project[#0](Order) minus project[#1](Pay)").unwrap();
    println!("Query: {unpaid}");

    // One engine, CWA semantics, ground truth allowed within budget.
    let engine = Engine::new(&db).options(EngineOptions::exhaustive());

    // 1. What SQL does (three-valued logic): the empty answer — and the
    //    report labels it `no-guarantee` out loud.
    let sql = engine.baseline_3vl(&unpaid).unwrap();
    println!(
        "SQL 3VL baseline:          {} [{}]",
        sql.object_answer.as_ref().unwrap(),
        sql.guarantee
    );

    // 2. The engine's own dispatch: full RA, exhaustive mode → ground truth.
    let report = engine.plan(&unpaid).unwrap();
    println!(
        "engine dispatch:           {} [class {}, strategy {}, {}]",
        report.answers, report.class, report.strategy, report.guarantee
    );

    // 3. The Boolean question "is some order certainly unpaid?" is true even
    //    though no specific order is a certain answer.
    let exists = engine.plan(&unpaid.clone().project(vec![])).unwrap();
    println!("certainly ∃ unpaid order:  {:?}", exists.certain_true());

    // 4. A positive query, on the other hand, dispatches straight to naïve
    //    evaluation: polynomial, and guaranteed exact by the paper's theorem.
    let products = engine.plan_text("project[#1](Order)").unwrap();
    println!(
        "products:                  {} [strategy {}, {}]",
        products.answers, products.strategy, products.guarantee
    );

    // 5. Without exhaustive mode the engine never enumerates worlds: the hard
    //    query degrades to an explicitly sound approximation.
    let prod = Engine::new(&db).plan(&unpaid).unwrap();
    println!(
        "production engine:         {} [strategy {}, {}]",
        prod.answers, prod.strategy, prod.guarantee
    );
}
