//! A tour of the observability layer: per-query span traces, EXPLAIN
//! ANALYZE, the serving layer's latency metrics page, and the slow-query
//! ring — the four ways to see *where a certain answer's time went*.
//!
//! Run with `cargo run --example observe_tour`.

use std::time::Duration;

use incomplete_data::prelude::*;
use relmodel::builder::DatabaseBuilder;

fn orders() -> Database {
    // Order(o_id, total) ⋈ Pay(o_id, amount), with a null amount: enough
    // structure for a join plan and a non-trivial dispatch decision.
    DatabaseBuilder::new()
        .relation("Order", &["o_id", "total"])
        .ints("Order", &[1, 100])
        .ints("Order", &[2, 250])
        .ints("Order", &[3, 75])
        .relation("Pay", &["p_id", "amount"])
        .ints("Pay", &[1, 100])
        .tuple("Pay", vec![Value::int(2), Value::null(0)])
        .build()
}

fn main() {
    let db = orders();
    let query = "project[#0](select[#0 = #2](product(Order, Pay)))";

    // 1. Span traces: opt in per engine with `with_trace(true)` and every
    //    report carries a tree of phase spans — plan (with the analyzer
    //    inside), then execute (with the strategy underneath), wall times
    //    and the engine's counters attached as span fields.
    let engine = Engine::new(&db).options(EngineOptions::default().with_trace(true));
    let report = engine.plan_text(query).expect("query evaluates");
    println!("— span trace ({})\n", report.summary());
    let trace = report.stats.trace.as_ref().expect("tracing was on");
    for line in trace.render().lines() {
        println!("  {line}");
    }

    // 2. EXPLAIN ANALYZE: the physical plan annotated with *measured*
    //    per-operator rows, batches, table reuse, and time — what actually
    //    happened, not what the planner predicted.
    let analyzed = engine.explain_analyze_text(query).expect("query evaluates");
    println!("\n— explain analyze\n");
    for line in analyzed.to_string().lines() {
        println!("  {line}");
    }

    // 3. A served workload: arm the slow-query ring (zero threshold here,
    //    so every query is captured — production would use milliseconds)
    //    and run the query cold, then hot.
    let service = CertainService::with_options(
        orders(),
        ServeOptions {
            slow_query_threshold: Some(Duration::ZERO),
            slow_query_capacity: 8,
            ..ServeOptions::default()
        },
    );
    let before = service.telemetry();
    let cold = service.submit(query).expect("query evaluates");
    let hot = service.submit(query).expect("query evaluates");
    println!("\n— served: cold then hot");
    println!("  cold: {}", cold.summary());
    println!("  hot:  {}", hot.summary());

    // 4. The slow-query ring: the last N captured queries, each with its
    //    full span tree — the first line of each trace shown here.
    println!("\n— slow queries (threshold 0 ⇒ everything captured)");
    for slow in service.slow_queries() {
        let root = slow.trace.as_ref().expect("armed ring forces tracing");
        println!(
            "  {:?} {} cache_hit={} | root span: {} ({:?}, {} spans)",
            slow.latency,
            slow.strategy,
            slow.cache_hit,
            root.name,
            root.duration,
            root.span_count(),
        );
    }

    // 5. The metrics page: latency quantiles per (strategy, cache outcome),
    //    hit-rate and snapshot gauges — and the interval view via
    //    `ServiceTelemetry::diff`.
    println!("\n— metrics page\n");
    for line in service.metrics_text().lines() {
        println!("  {line}");
    }
    let interval = service.telemetry().diff(&before);
    println!("\n— telemetry over this tour: {interval}");
}
