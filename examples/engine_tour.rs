//! A tour of the [`Engine`] front door: one API, every evaluation strategy,
//! guarantee-carrying reports.
//!
//! The paper's fix for incomplete data is a *dispatch rule* — classify the
//! query, evaluate naïvely where that is provably exact, be explicit about
//! the guarantee everywhere else. This example walks that rule end to end:
//! text → plan → strategy → `CertainReport`.
//!
//! Run with `cargo run --example engine_tour`.

use incomplete_data::prelude::*;
use relmodel::builder::orders_and_payments_example;
use relmodel::display::render_database;

fn show(title: &str, report: &CertainReport) {
    println!("— {title}");
    println!("    class     : {}", report.class);
    println!("    strategy  : {}", report.strategy);
    println!("    guarantee : {}", report.guarantee);
    println!("    answers   : {}", report.answers);
    if let Some(object) = &report.object_answer {
        println!("    object    : {object}");
    }
    let stats = &report.stats;
    println!(
        "    stats     : plan {:?}, execute {:?}, {} null(s){}{}",
        stats.plan_time,
        stats.execute_time,
        stats.nulls,
        stats
            .estimated_worlds
            .map(|w| format!(", ~{w} world(s) estimated"))
            .unwrap_or_default(),
        if stats.degraded {
            ", DEGRADED to approximation"
        } else {
            ""
        },
    );
}

fn main() {
    let db = orders_and_payments_example();
    println!("Database:\n{}", render_database(&db));

    // ── 1. Text to plan: parse_and_plan typechecks and classifies once. ────
    let plan = parse_and_plan("project[#0](Order) minus project[#1](Pay)", db.schema()).unwrap();
    println!("plan: {plan}\n");

    // ── 2. The default engine: theorem-backed fast paths only. ─────────────
    let engine = Engine::new(&db).semantics(Semantics::Cwa);
    show(
        "positive query → NaiveExact/exact",
        &engine.plan_text("project[#1](Order)").unwrap(),
    );
    show(
        "full RA → SymbolicCTable/exact (no worlds enumerated)",
        &engine.plan_prepared(&plan).unwrap(),
    );

    // ── 3. The pre-symbolic paths are still there, explicitly chosen. ──────
    let no_symbolic = Engine::new(&db).options(EngineOptions::default().without_symbolic());
    show(
        "full RA, symbolic off → SoundApproximation/sound",
        &no_symbolic.plan_prepared(&plan).unwrap(),
    );
    let exhaustive = Engine::new(&db).options(EngineOptions::exhaustive());
    show(
        "full RA, exhaustive+no symbolic → WorldsGroundTruth/exact",
        &Engine::new(&db)
            .options(EngineOptions::exhaustive().without_symbolic())
            .plan_prepared(&plan)
            .unwrap(),
    );

    // ── 4. Budgets degrade explicitly instead of hanging. ──────────────────
    let starved = Engine::new(&db).options(
        EngineOptions::exhaustive()
            .with_max_worlds(1)
            .without_symbolic(),
    );
    show(
        "full RA, starved budget → degraded",
        &starved.plan_prepared(&plan).unwrap(),
    );

    // ── 5. The SQL baseline goes through the same door, labelled honestly. ─
    let taut = parse("project[#0](select[#1 = 'oid1' or #1 != 'oid1'](Pay))").unwrap();
    show(
        "SQL 3VL baseline on the §1 tautology",
        &exhaustive.baseline_3vl(&taut).unwrap(),
    );
    show(
        "…and what is actually certain",
        &exhaustive.plan(&taut).unwrap(),
    );

    // ── 6. Boolean certainty, guarantee-aware. ─────────────────────────────
    let exists_unpaid = plan.expr().clone().project(vec![]);
    let report = exhaustive.plan(&exists_unpaid).unwrap();
    println!(
        "\n∃ an unpaid order, certainly? {:?}",
        report.certain_true()
    );
    let symbolic = engine.plan(&exists_unpaid).unwrap();
    println!(
        "same question, default engine: {:?} ({} via {} — no worlds needed)",
        symbolic.certain_true(),
        symbolic.guarantee,
        symbolic.strategy
    );
    let weak = no_symbolic.plan(&exists_unpaid).unwrap();
    println!(
        "same question, symbolic off: {:?} (a {} answer cannot settle it)",
        weak.certain_true(),
        weak.guarantee
    );
}
