//! Data exchange: where marked nulls come from (paper §1).
//!
//! The schema mapping `Order(i, p) → ∃x Cust(x) ∧ Pref(x, p)` is chased over a
//! source of orders; the canonical target contains marked nulls, and certain
//! answers over it are computed by naïve evaluation.
//!
//! Run with `cargo run --example data_exchange`.

use exchange::prelude::*;
use exchange::solutions::exchange_and_answer;
use qparser::parse;
use relmodel::display::render_database;
use relmodel::DatabaseBuilder;

fn main() {
    let mapping = SchemaMapping::order_to_customer_example();
    println!("Schema mapping:\n{mapping}");

    let source = DatabaseBuilder::new()
        .relation("Order", &["o_id", "product"])
        .strs("Order", &["oid1", "pr1"])
        .strs("Order", &["oid2", "pr2"])
        .strs("Order", &["oid3", "pr1"])
        .build();
    println!("Source:\n{}", render_database(&source));

    let result = chase(&source, &mapping);
    println!(
        "Chase fired {} triggers and introduced {} fresh marked nulls.",
        result.triggers_fired, result.nulls_introduced
    );
    println!("Canonical target:\n{}", render_database(&result.target));

    // Certain answers over the exchanged data.
    for (question, text) in [
        (
            "Which products does some customer prefer?",
            "project[#1](Pref)",
        ),
        ("Which customers do we know by name?", "Cust"),
        (
            "Which products are preferred by a customer who also prefers pr1?",
            "project[#3](select[#0 = #2 and #1 = 'pr1'](product(Pref, Pref)))",
        ),
    ] {
        let q = parse(text).unwrap();
        let answer = exchange_and_answer(&source, &mapping, &q).unwrap();
        println!(
            "\nQ: {question}\n   query   = {text}\n   certain = {}",
            answer.certain
        );
        println!(
            "   naïve object answer (marked nulls preserved) = {}",
            answer.naive_object
        );
    }

    println!("\nNote how the marked nulls let the join recognise that the customer of");
    println!("Pref(⊥, pr1) is the same unknown individual as in Cust(⊥) — exactly the");
    println!("point the paper makes about needing naïve (not Codd) nulls for exchange.");
}
