//! A tour of the serving layer: a snapshot-versioned [`CertainService`]
//! answering the same query cold, hot (result-cache hit), and again after a
//! copy-on-write snapshot bump invalidates the cached answer — with the
//! cache-hit telemetry printed at each step.
//!
//! Run with `cargo run --example serve_tour`.

use incomplete_data::prelude::*;
use relmodel::builder::DatabaseBuilder;
use relmodel::display::render_relation;

fn show(title: &str, report: &CertainReport) {
    println!("— {title}");
    // One line per report: strategy | guarantee | answer count | timings,
    // cache hits, and the snapshot version, all from `summary()`.
    println!("  {}", report.summary());
    for line in render_relation(&["product"], &report.answers).lines() {
        println!("  {line}");
    }
    println!();
}

fn main() {
    // A long-lived service over Order(o_id, product): think "the database
    // behind an endpoint", not "a database handed to one query".
    let service = CertainService::new(
        DatabaseBuilder::new()
            .relation("Order", &["o_id", "product"])
            .strs("Order", &["oid1", "pr1"])
            .strs("Order", &["oid2", "pr2"])
            .build(),
    );
    let query = "project[#1](Order)";

    // 1. Cold: parse + typecheck + lower + execute, then cache both the
    //    plan and the certain answer under snapshot version 0.
    show("cold submit (version 0)", &service.submit(query).unwrap());

    // 2. Hot: the identical query on the unchanged snapshot comes straight
    //    from the result cache — no planning, no execution. Trivially
    //    respaced variants share the same cache line.
    show("hot resubmit", &service.submit(query).unwrap());
    show(
        "hot resubmit (respaced variant)",
        &service.submit("  project[#1](Order)\n").unwrap(),
    );

    // 3. A write: copy-on-write — the current database is cloned, mutated,
    //    and published as version 1. Readers mid-query keep version 0 alive;
    //    new requests see version 1. The version bump invalidates every
    //    cached answer by construction (stale keys can no longer match) …
    let v = service.update(|db| {
        db.insert(
            "Order",
            Tuple::new(vec![Value::str("oid3"), Value::str("pr3")]),
        )
        .unwrap();
    });
    println!("… published snapshot version {v}\n");

    // 4. … so the same query now recomputes — but the *plan* survived: a
    //    data-only bump keeps the schema, hence every cached plan.
    show("resubmit after the bump", &service.submit(query).unwrap());

    // 5. The service's own counters tell the same story.
    println!("telemetry: {}", service.telemetry());
}
