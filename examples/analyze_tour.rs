//! A tour of the static query analyzer: `Engine::analyze` without running
//! anything, lints with stable `QL…` codes, and the analyzer-driven
//! dispatch upgrade on a *mixed* query — a non-monotone core whose inputs
//! happen to be null-free, evaluated plainly where the class-based rules
//! would have paid for symbolic machinery or settled for an approximation.
//!
//! Run with `cargo run --example analyze_tour`.

use incomplete_data::prelude::*;
use relmodel::builder::orders_and_payments_example;
use relmodel::display::render_database;

fn show(title: &str, report: &AnalysisReport) {
    println!("— {title}");
    for line in report.to_string().lines() {
        println!("  {line}");
    }
    println!();
}

fn main() {
    let db = orders_and_payments_example();
    println!("The database (Order is complete; Pay has a marked null):\n");
    println!("{}", render_database(&db));

    let engine = Engine::new(&db);

    // 1. A lint firing. The unpaid-orders query of the paper's introduction
    //    subtracts a null-bearing operand: naïve evaluation is unsound here
    //    (QL001), and the analyzer flags the ground subtree that *is*
    //    world-invariant (QL006).
    let unpaid = "project[#0](Order) minus project[#1](Pay)";
    show(
        "lint: difference over a null-bearing operand",
        &engine.analyze_text(unpaid).expect("query typechecks"),
    );

    // 2. The analyzer-driven upgrade. A mixed query: the same non-monotone
    //    difference — but over the null-free Order relation only — under a
    //    monotone union that reads the nullable Pay. The class is still
    //    full RA, yet the analyzer proves the difference core *ground*,
    //    inlines it, and dispatches the positive remainder to plain naïve
    //    evaluation: `exact`, without symbolic machinery, even with the
    //    symbolic engine disabled.
    let mixed = "(project[#0](Order) minus project[#1](Order)) union project[#1](Pay)";
    let plain = Engine::new(&db).options(EngineOptions::default().without_symbolic());
    show(
        "upgrade: mixed query, ground core under a monotone top",
        &plain.analyze_text(mixed).expect("query typechecks"),
    );

    let report = plain.plan_text(mixed).expect("query evaluates");
    let analyzer = report.stats.analyzer.expect("analyzer stats");
    println!("— executing the mixed query (symbolic disabled)");
    println!(
        "  strategy {} · guarantee {} · upgraded {} · subtrees inlined {}",
        report.strategy, report.guarantee, analyzer.upgraded, analyzer.inlined_subtrees
    );
    println!("  answers: {}", report.answers);
    assert_eq!(report.strategy, StrategyKind::NaiveExact);
    assert_eq!(report.guarantee, Guarantee::Exact);
    assert!(analyzer.upgraded && analyzer.inlined_subtrees == 1);

    // 3. The same query against a class-only view of the world: force the
    //    pessimistic census by analyzing under no census information
    //    (what `classify` alone knows), for contrast.
    let class_only = relalgebra::analysis::analyze(
        &parse(mixed).expect("query parses"),
        &relalgebra::analysis::NullCensus::pessimistic(),
    );
    println!(
        "\n— the class-based verdict for the same query: class {}, \
         certainty-preserving under CWA: {}",
        class_only.root().class,
        class_only
            .root()
            .certainty_preserving(relmodel::Semantics::Cwa)
    );
    println!("  (the census is what turns this into an exact naive dispatch)");
}
