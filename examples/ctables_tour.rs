//! A tour of conditional tables: the strong representation system the paper
//! recalls in §2, and why its answers are "hardly meaningful to humans".
//!
//! Run with `cargo run --example ctables_tour`.

use ctables::prelude::*;
use qparser::parse;
use relmodel::builder::difference_example;
use relmodel::display::render_database;

fn main() {
    // R = {1, 2}, S = {⊥}: the paper's difference example.
    let db = difference_example();
    println!("Database:\n{}", render_database(&db));

    let cdb = ConditionalDatabase::from_database(&db);
    let q = parse("R minus S").unwrap();
    println!("Query: {q}\n");

    // The Imieliński–Lipski algebra produces a conditional table capturing all
    // possible answers at once.
    let answer = eval_ctable(&q, &cdb).unwrap();
    println!("Conditional answer table:\n{answer}");
    println!(
        "({} condition atoms for a two-tuple answer.)\n",
        answer.condition_atoms()
    );

    // Its worlds are exactly Q([[D]]_cwa) = {{1,2}, {1}, {2}}.
    let check = ctables::verify::check_strong_representation(&q, &cdb, 2).unwrap();
    println!(
        "Possible answers of the query ({} of them):",
        check.query_of_worlds.len()
    );
    for world in &check.query_of_worlds {
        println!("  {world}");
    }
    println!("Strong representation holds: {}", check.holds());

    // Growing the query grows the conditions quickly — the usability critique.
    let nested = parse("(R minus S) minus (S minus R)").unwrap();
    let nested_answer = eval_ctable(&nested, &cdb).unwrap();
    println!(
        "\nFor the nested query {nested} the answer already carries {} condition atoms:",
        nested_answer.condition_atoms()
    );
    println!("{nested_answer}");

    // ── Certain answers without enumerating a single world. ───────────────
    //
    // The same conditional table, asked a different question: a tuple t is
    // certain iff ⋁ᵢ (tᵢ = t ∧ cᵢ) holds under EVERY valuation — a validity
    // question the certainty solver decides by DNF + congruence closure over
    // the infinite constant domain. This is `releval::symbolic`, the engine's
    // default strategy for full RA under CWA.
    use relalgebra::plan::PlannedQuery;
    use releval::symbolic::{symbolic_certain_answer, SymbolicOptions, SymbolicOutcome};

    println!("── certain answers, symbolically ──");
    for text in ["R minus S", "R union S", "(R minus S) minus (S minus R)"] {
        let q = parse(text).unwrap();
        let plan = PlannedQuery::new(q, db.schema()).unwrap();
        match symbolic_certain_answer(&plan, &db, &SymbolicOptions::default()) {
            SymbolicOutcome::Answered(exec) => println!(
                "certain({text}) = {}   [{} solver call(s), {} condition atoms, 0 worlds]",
                exec.answers, exec.solver_calls, exec.condition_atoms
            ),
            SymbolicOutcome::Punted(reason) => println!("certain({text}): punted — {reason}"),
        }
    }

    // A disjunctive certainty the classical intersection needs every world
    // for: "R − S is nonempty" is certainly true even though no specific
    // tuple of R − S is certain.
    let boolean = parse("R minus S").unwrap().project(vec![]);
    let plan = PlannedQuery::new(boolean, db.schema()).unwrap();
    if let SymbolicOutcome::Answered(exec) =
        symbolic_certain_answer(&plan, &db, &SymbolicOptions::default())
    {
        println!(
            "certainly-true(R minus S ≠ ∅) = {}   — proven by one validity query",
            !exec.answers.is_empty()
        );
    }
}
