//! # incomplete-data
//!
//! Umbrella crate re-exporting the whole workspace: a from-scratch Rust
//! implementation of certain-answer query evaluation over incomplete
//! relational databases, reproducing Libkin's PODS 2014 keynote
//! *"Incomplete Data: What Went Wrong, and How to Fix It"*.
//!
//! See the individual crates for details:
//! - [`relmodel`]: relational model with marked (naïve) nulls and Codd tables
//! - [`relalgebra`]: relational algebra, conjunctive queries, UCQ, `Pos∀G`/`RA_cwa`
//! - [`releval`]: complete / naïve / SQL three-valued-logic evaluation, possible worlds
//! - [`ctables`]: conditional tables and the Imielinski–Lipski algebra
//! - [`certain_core`]: information orderings, homomorphisms, `certainO`/`certainK`
//! - [`exchange`]: schema mappings, the chase, data exchange
//! - [`qparser`]: a small textual query language
//! - [`datagen`]: synthetic workload generators

pub use certain_core;
pub use ctables;
pub use datagen;
pub use exchange;
pub use qparser;
pub use relalgebra;
pub use releval;
pub use relmodel;

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use certain_core::{
        homomorphism::{find_homomorphism, HomKind},
        ordering::InfoOrdering,
        CertainAnswers,
    };
    pub use relalgebra::{ast::RaExpr, cq::ConjunctiveQuery, classify::QueryClass};
    pub use releval::{
        complete::eval_complete, naive::certain_answer_naive, naive::eval_naive,
        three_valued::eval_3vl, worlds::certain_answer_worlds,
    };
    pub use relmodel::{
        database::Database, relation::Relation, schema::Schema, tuple::Tuple, value::Value,
    };
}
