//! # incomplete-data
//!
//! Umbrella crate for a from-scratch Rust implementation of certain-answer
//! query evaluation over incomplete relational databases, reproducing
//! Libkin's PODS 2014 keynote *"Incomplete Data: What Went Wrong, and How to
//! Fix It"*.
//!
//! ## The front door: [`Engine`]
//!
//! The paper's fix is a dispatch rule — classify the query, evaluate naïvely
//! where that is provably exact, be explicit about the guarantee everywhere
//! else. The [`Engine`] is that rule as an API, and the recommended way to
//! use this workspace:
//!
//! ```
//! use incomplete_data::prelude::*;
//!
//! let db = incomplete_data::relmodel::builder::orders_and_payments_example();
//! let engine = Engine::new(&db).semantics(Semantics::Cwa);
//!
//! // A positive query: dispatched to naïve evaluation, guaranteed exact.
//! let products = engine.plan_text("project[#1](Order)").unwrap();
//! assert_eq!(products.guarantee, Guarantee::Exact);
//! assert_eq!(products.strategy, StrategyKind::NaiveExact);
//! assert_eq!(products.answers.len(), 2);
//!
//! // The unpaid-orders query of the paper's introduction is full RA: the
//! // default engine answers it *symbolically* — c-tables plus a certainty
//! // solver — exactly, without enumerating a single possible world …
//! let unpaid = engine.plan_text("project[#0](Order) minus project[#1](Pay)").unwrap();
//! assert_eq!(unpaid.guarantee, Guarantee::Exact);
//! assert_eq!(unpaid.strategy, StrategyKind::SymbolicCTable);
//! assert!(unpaid.stats.worlds_enumerated.is_none());
//!
//! // … and the exponential world oracle agrees, when explicitly bought.
//! let truth = Engine::new(&db)
//!     .options(EngineOptions::exhaustive())
//!     .ground_truth(&incomplete_data::qparser::parse(
//!         "project[#0](Order) minus project[#1](Pay)").unwrap())
//!     .unwrap();
//! assert_eq!(truth.strategy, StrategyKind::WorldsGroundTruth);
//! assert_eq!(truth.answers, unpaid.answers);
//! ```
//!
//! Every answer comes back as a [`engine::CertainReport`]: the tuples, the
//! strategy that produced them, the query's class, the guarantee they carry
//! (`exact` / `sound` / `complete` / `no-guarantee`), and per-phase timing.
//!
//! ## The crates underneath
//!
//! - [`relmodel`]: relational model with marked (naïve) nulls and Codd tables
//! - [`relalgebra`]: relational algebra, CQ/UCQ, `Pos∀G`/`RA_cwa`,
//!   classification, typechecked plans, physical plans (join fusion,
//!   pushdowns, `EXPLAIN`), and the static analyzer
//!   ([`relalgebra::analysis`]: per-node abstract interpretation, `QL…`
//!   lints, null-census-aware certainty preservation — surfaced through
//!   [`Engine::analyze`])
//! - [`releval`]: the evaluation strategies (complete / naïve / SQL 3VL /
//!   possible worlds / certain⁺ / symbolic c-tables) behind a common
//!   [`releval::strategy::Strategy`] trait, executing one shared physical
//!   operator core ([`releval::exec`])
//! - [`engine`]: the classify-and-dispatch front door re-exported above
//!   (including [`engine::Semantics::ConsistentAnswers`])
//! - [`repairs`]: consistent query answering — conflict hypergraphs,
//!   streaming subset-minimal repair enumeration, the conflict-free-core
//!   approximation
//! - [`ctables`]: conditional tables and the Imielinski–Lipski algebra
//! - [`certain_core`]: information orderings, homomorphisms,
//!   `certainO`/`certainK` (rebuilt on top of the engine)
//! - [`exchange`]: schema mappings, the chase, data exchange
//! - [`qparser`]: a small textual query language; `parse_and_plan` feeds the
//!   engine directly
//! - [`serve`]: the serving layer — a concurrent, snapshot-versioned
//!   [`serve::CertainService`] wrapping the engine with copy-on-write
//!   database versions, a plan cache, and a version-keyed certain-answer
//!   result cache
//! - [`obs`]: the observability substrate — query-trace [`obs::Span`]s,
//!   lock-free latency [`obs::Histogram`]s, the serve-layer
//!   [`obs::MetricsRegistry`], and the slow-query ring (surfaced through
//!   [`engine::EngineOptions`]'s `trace` flag, `Engine::explain_analyze`,
//!   and `serve::CertainService::{metrics_text, metrics_json, slow_queries}`)
//! - [`datagen`]: synthetic workload generators

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use certain_core;
pub use ctables;
pub use datagen;
pub use engine;
pub use exchange;
pub use obs;
pub use qparser;
pub use relalgebra;
pub use releval;
pub use relmodel;
pub use repairs;
pub use serve;

pub use engine::{
    AnalysisReport, AnalyzerStats, CertainReport, Engine, EngineError, EngineOptions,
    FallbackReason, Guarantee, RepairAbort, StrategyKind,
};

/// Convenience prelude bringing the most commonly used types into scope.
pub mod prelude {
    pub use certain_core::{
        homomorphism::{find_homomorphism, HomKind},
        ordering::InfoOrdering,
        CertainAnswers,
    };
    pub use engine::{
        AnalysisReport, AnalyzerStats, CertainReport, Engine, EngineError, EngineOptions,
        EngineStats, FallbackReason, Guarantee, RepairAbort, StrategyKind,
    };
    pub use qparser::{parse, parse_and_plan};
    pub use relalgebra::{
        ast::RaExpr, classify::QueryClass, cq::ConjunctiveQuery, plan::PlannedQuery,
    };
    pub use relmodel::{
        database::Database, relation::Relation, schema::Schema, semantics::Semantics, tuple::Tuple,
        value::Value,
    };
    pub use serve::{CertainService, ServeOptions, ServiceTelemetry, SlowQuery};
}
