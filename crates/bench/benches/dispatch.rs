//! Engine dispatch overhead (run with `cargo bench`).
//!
//! The front-door redesign routes every evaluation through
//! `Engine::plan` — classify, select a strategy, execute, build a
//! guarantee-carrying report. This bench measures what that dispatch costs
//! relative to calling the naïve evaluator directly on the paper's
//! orders/payments workload. Target: **< 5 % median overhead** at realistic
//! sizes (the absolute cost is a few typecheck/classify traversals of a
//! five-node expression plus report assembly, independent of data size).

use std::time::Duration;

use bench::harness::{fmt_duration, measure, Measurement};
use datagen::{orders_database, OrdersConfig};
use engine::Engine;
use qparser::parse;
use releval::naive::eval_naive;

fn overhead_percent(direct: &Measurement, engine: &Measurement) -> f64 {
    let d = direct.median_ns().max(1) as f64;
    (engine.median_ns() as f64 - d) / d * 100.0
}

fn main() {
    // A positive join query: the class the engine dispatches to NaiveExact,
    // i.e. the exact path the paper recommends for production traffic.
    let q = parse("project[#1](select[#0 = #4](product(Order, Pay)))").expect("query parses");
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let budget = if smoke {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(500)
    };
    let sizes: &[usize] = if smoke { &[50, 200] } else { &[50, 200, 800] };

    println!("## engine_dispatch_overhead");
    println!(
        "{:<10}  {:>12}  {:>12}  {:>9}",
        "orders", "direct", "engine", "overhead"
    );
    for &orders in sizes {
        let db = orders_database(&OrdersConfig {
            orders,
            payments: orders,
            null_rate: 0.1,
            ..OrdersConfig::default()
        });
        // Direct path: the pre-redesign call sequence (typecheck + evaluate +
        // keep the complete part). `eval_naive` is the engine-internal
        // primitive the comparison is *about*, so it is called directly here.
        let direct = measure(format!("direct/{orders}"), budget, || {
            eval_naive(&q, &db)
                .expect("evaluation succeeds")
                .complete_part()
        });
        let engine = Engine::new(&db);
        let dispatched = measure(format!("engine/{orders}"), budget, || {
            engine.plan(&q).expect("evaluation succeeds")
        });
        println!(
            "{:<10}  {:>12}  {:>12}  {:>8.2}%",
            orders,
            fmt_duration(direct.median),
            fmt_duration(dispatched.median),
            overhead_percent(&direct, &dispatched)
        );
        println!(
            "BENCH {{\"bench\":\"dispatch\",\"orders\":{orders},\"direct_ns\":{},\
             \"engine_ns\":{},\"overhead_pct\":{:.2}}}",
            direct.median.as_nanos(),
            dispatched.median.as_nanos(),
            overhead_percent(&direct, &dispatched)
        );
    }
    println!("\ntarget: < 5% median overhead at the 200- and 800-order sizes");
}
