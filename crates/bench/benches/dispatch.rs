//! Engine dispatch overhead (run with `cargo bench`).
//!
//! The front-door redesign routes every evaluation through
//! `Engine::plan` — classify, select a strategy, execute, build a
//! guarantee-carrying report. This bench measures what that dispatch costs
//! relative to calling the engine-internal primitive directly — since the
//! physical-plan refactor that primitive is plan-then-execute
//! (`PlannedQuery::new` + `exec::execute`), the exact work `Engine::plan`
//! wraps. Target: **< 5 % median overhead** at realistic sizes (the
//! absolute cost is a classify traversal plus report assembly, independent
//! of data size).
//!
//! A third row keeps the seed's logical interpreter (`eval_naive`, which
//! loops over `σ(A×B)`) as a reference: the gap between it and the plan
//! rows is the hash-join fusion win `benches/join.rs` measures in depth.

use std::time::Duration;

use bench::harness::{fmt_duration, measure, Measurement};
use datagen::{orders_database, OrdersConfig};
use engine::Engine;
use qparser::parse;
use relalgebra::plan::PlannedQuery;
use releval::exec;
use releval::naive::eval_naive;

fn overhead_percent(direct: &Measurement, engine: &Measurement) -> f64 {
    let d = direct.median_ns().max(1) as f64;
    (engine.median_ns() as f64 - d) / d * 100.0
}

fn main() {
    // A positive join query: the class the engine dispatches to NaiveExact,
    // i.e. the exact path the paper recommends for production traffic.
    let q = parse("project[#1](select[#0 = #4](product(Order, Pay)))").expect("query parses");
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let budget = if smoke {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(500)
    };
    let sizes: &[usize] = if smoke { &[50, 200] } else { &[50, 200, 800] };

    println!("## engine_dispatch_overhead");
    println!(
        "{:<10}  {:>12}  {:>12}  {:>12}  {:>9}",
        "orders", "interpreter", "direct", "engine", "overhead"
    );
    for &orders in sizes {
        let db = orders_database(&OrdersConfig {
            orders,
            payments: orders,
            null_rate: 0.1,
            ..OrdersConfig::default()
        });
        // The seed's evaluation path: the logical tree-walking interpreter,
        // kept as the reference semantics (and as the "before" of the hash
        // join fusion).
        let interpreter = measure(format!("interpreter/{orders}"), budget, || {
            eval_naive(&q, &db)
                .expect("evaluation succeeds")
                .complete_part()
        });
        // Direct path: the engine-internal primitive — typecheck/lower once
        // per call, execute the physical plan, keep the complete part. This
        // is exactly the work `Engine::plan` wraps, minus dispatch/report.
        let direct = measure(format!("direct/{orders}"), budget, || {
            let plan = PlannedQuery::new(q.clone(), db.schema()).expect("query typechecks");
            exec::execute(plan.physical(), &db).complete_part()
        });
        let engine = Engine::new(&db);
        let dispatched = measure(format!("engine/{orders}"), budget, || {
            engine.plan(&q).expect("evaluation succeeds")
        });
        println!(
            "{:<10}  {:>12}  {:>12}  {:>12}  {:>8.2}%",
            orders,
            fmt_duration(interpreter.median),
            fmt_duration(direct.median),
            fmt_duration(dispatched.median),
            overhead_percent(&direct, &dispatched)
        );
        println!(
            "BENCH {{\"bench\":\"dispatch\",\"orders\":{orders},\"interpreter_ns\":{},\
             \"direct_ns\":{},\"engine_ns\":{},\"overhead_pct\":{:.2}}}",
            interpreter.median.as_nanos(),
            direct.median.as_nanos(),
            dispatched.median.as_nanos(),
            overhead_percent(&direct, &dispatched)
        );
    }
    println!("\ntarget: < 5% median overhead at the 200- and 800-order sizes");

    // The static analyzer runs inside every dispatch: measure one
    // abstract-interpretation pass (census already taken — the engine
    // censuses once per database, not per query) against both bare plan
    // construction and the full dispatched evaluation it rides on. The
    // pass is a single tree walk over the *query* — constant in data size
    // — so its share of the per-query cost vanishes as instances grow.
    println!("\n## analysis_overhead");
    println!(
        "{:<10}  {:>12}  {:>12}  {:>12}  {:>9}",
        "orders", "plan", "analyze", "engine", "analysis%"
    );
    for &orders in sizes {
        let db = orders_database(&OrdersConfig {
            orders,
            payments: orders,
            null_rate: 0.1,
            ..OrdersConfig::default()
        });
        let census = relalgebra::analysis::NullCensus::of_database(&db);
        let planning = measure(format!("plan/{orders}"), budget, || {
            PlannedQuery::new(q.clone(), db.schema()).expect("query typechecks")
        });
        let analyzing = measure(format!("analyze/{orders}"), budget, || {
            relalgebra::analysis::analyze(&q, &census)
        });
        let engine = Engine::new(&db);
        let dispatched = measure(format!("engine/{orders}"), budget, || {
            engine.plan(&q).expect("evaluation succeeds")
        });
        let pct = analyzing.median_ns() as f64 / dispatched.median_ns().max(1) as f64 * 100.0;
        println!(
            "{:<10}  {:>12}  {:>12}  {:>12}  {:>8.2}%",
            orders,
            fmt_duration(planning.median),
            fmt_duration(analyzing.median),
            fmt_duration(dispatched.median),
            pct
        );
        println!(
            "BENCH {{\"bench\":\"analysis\",\"orders\":{orders},\"plan_ns\":{},\
             \"analyze_ns\":{},\"engine_ns\":{},\"analysis_pct\":{:.2}}}",
            planning.median.as_nanos(),
            analyzing.median.as_nanos(),
            dispatched.median.as_nanos(),
            pct
        );
    }
    println!(
        "\ntarget: analysis < 5% of the dispatched evaluation (one query-sized tree walk, \
         data-size independent; the engine rows above already include it)"
    );

    // Observability cost: the same dispatched evaluation with per-query span
    // tracing off (the default — the engine rows above) versus on. The
    // disabled path is a few bool branches, and even the enabled path only
    // adds a handful of timer reads and one small span tree per query, so
    // the gap must stay under the 5 % gate; the largest size is asserted
    // (the absolute tracing cost is constant, so its share only shrinks
    // from there).
    println!("\n## tracing_overhead");
    println!(
        "{:<10}  {:>12}  {:>12}  {:>9}",
        "orders", "trace-off", "trace-on", "overhead"
    );
    let largest = *sizes.last().expect("sizes is non-empty");
    for &orders in sizes {
        let db = orders_database(&OrdersConfig {
            orders,
            payments: orders,
            null_rate: 0.1,
            ..OrdersConfig::default()
        });
        let engine_off = Engine::new(&db);
        let off = measure(format!("trace-off/{orders}"), budget, || {
            engine_off.plan(&q).expect("evaluation succeeds")
        });
        let engine_on = Engine::new(&db).options(engine::EngineOptions::default().with_trace(true));
        let on = measure(format!("trace-on/{orders}"), budget, || {
            let report = engine_on.plan(&q).expect("evaluation succeeds");
            assert!(report.stats.trace.is_some(), "tracing was on");
            report
        });
        let pct = overhead_percent(&off, &on);
        println!(
            "{:<10}  {:>12}  {:>12}  {:>8.2}%",
            orders,
            fmt_duration(off.median),
            fmt_duration(on.median),
            pct
        );
        println!(
            "BENCH {{\"bench\":\"tracing\",\"orders\":{orders},\"trace_off_ns\":{},\
             \"trace_on_ns\":{},\"overhead_pct\":{:.2}}}",
            off.median.as_nanos(),
            on.median.as_nanos(),
            pct
        );
        if orders == largest {
            assert!(
                pct < 5.0,
                "tracing overhead {pct:.2}% at {orders} orders breaches the 5% gate"
            );
        }
    }
    println!("\ntarget: tracing < 5% overhead at the largest size (asserted)");

    // Serve-layer metrics as a BENCH artifact: run a short mixed workload
    // through a CertainService and emit its latency grid + gauges as one
    // JSON line, so CI archives real quantiles alongside the bench numbers.
    let db = orders_database(&OrdersConfig {
        orders: largest,
        payments: largest,
        null_rate: 0.1,
        ..OrdersConfig::default()
    });
    let service = serve::CertainService::with_options(
        db,
        serve::ServeOptions {
            slow_query_threshold: Some(Duration::from_millis(250)),
            ..serve::ServeOptions::default()
        },
    );
    let text = "project[#1](select[#0 = #4](product(Order, Pay)))";
    for _ in 0..20 {
        service.submit(text).expect("workload query succeeds");
        service.submit("Order").expect("workload query succeeds");
    }
    println!("\n## serve_metrics");
    print!("{}", service.metrics_text());
    println!(
        "BENCH {{\"bench\":\"serve_metrics\",\"metrics\":{}}}",
        service.metrics_json()
    );
}
