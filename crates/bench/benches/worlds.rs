//! Streaming vs materializing possible-world ground truth (`cargo bench`).
//!
//! The certain-answer oracle used to materialize every possible world into a
//! `Vec<Database>` before evaluating anything: memory = worlds × database
//! size, wall-clock = the full `|domain|^|nulls|` enumeration every time.
//! The streaming engine folds the intersection world-by-world, shards the
//! valuation space across threads, and exits early the moment the running
//! intersection empties. This bench quantifies all three effects on a
//! multi-null workload:
//!
//! * `materializing` — the old path, reconstructed from the (retained)
//!   enumeration API: collect all worlds, then evaluate and intersect;
//! * `streaming/T` — the streaming fold at T worker threads, on a query
//!   whose certain answer stays non-empty (no early exit: the comparison is
//!   enumeration against enumeration);
//! * `early-exit` — a query with an empty certain answer, where streaming
//!   stops after a handful of worlds and materializing cannot stop at all.
//!
//! Each measurement is also emitted as a machine-readable `BENCH {…}` json
//! line so CI can scrape results. `BENCH_SMOKE=1` shrinks the workload and
//! the per-bench time budget so the whole binary finishes in seconds — that
//! mode exists purely to keep the harness from bit-rotting.

use std::time::Duration;

use bench::harness::{fmt_duration, measure, Measurement};
use datagen::{random_database, RandomDbConfig};
use relalgebra::ast::RaExpr;
use relalgebra::plan::PlannedQuery;
use releval::complete::eval_complete;
use releval::worlds::{
    enumerate_worlds, stream_certain_answer, stream_certain_answer_rows, WorldOptions,
};
use relmodel::{Database, Relation, Schema, Semantics, Tuple, Value};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn opts_with_threads(threads: usize) -> WorldOptions {
    WorldOptions {
        // One fresh constant keeps the valuation domain (and so the world
        // count) at a size both paths can enumerate exhaustively.
        extra_fresh: Some(1),
        threads: Some(threads),
        ..WorldOptions::default()
    }
}

fn emit(experiment: &str, mode: &str, threads: usize, worlds: u128, m: &Measurement) {
    println!(
        "BENCH {{\"bench\":\"worlds\",\"experiment\":\"{experiment}\",\"mode\":\"{mode}\",\
         \"threads\":{threads},\"worlds\":{worlds},\"median_ns\":{},\"min_ns\":{},\"iters\":{}}}",
        m.median.as_nanos(),
        m.min.as_nanos(),
        m.iters
    );
}

/// The old materializing oracle, reconstructed: collect every world, then
/// evaluate the query in each and intersect.
fn materializing_certain(q: &RaExpr, db: &Database, opts: &WorldOptions) -> Relation {
    let worlds = enumerate_worlds(q, db, Semantics::Cwa, opts).expect("within budget");
    worlds
        .iter()
        .map(|w| eval_complete(q, w).expect("worlds are complete"))
        .reduce(|a, b| a.intersection(&b))
        .expect("at least one world")
}

fn main() {
    let smoke = smoke();
    let budget = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(300)
    };
    let db = random_database(&RandomDbConfig {
        tuples_per_relation: 8,
        domain_size: 4,
        distinct_nulls: if smoke { 4 } else { 6 },
        null_rate_percent: 30,
        seed: 42,
    });

    // A query whose certain answer is pinned non-empty by a literal tuple
    // over an existing constant: the intersection never empties, so early
    // exit never fires and both paths enumerate the same world space.
    let pinned = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[0])]))
        .union(RaExpr::relation("R").project(vec![0]));
    let plan = PlannedQuery::new(pinned.clone(), db.schema()).expect("query typechecks");
    let opts = opts_with_threads(1);
    let worlds = enumerate_worlds(&pinned, &db, Semantics::Cwa, &opts)
        .expect("within budget")
        .len() as u128;
    let exec = stream_certain_answer(&plan, &db, Semantics::Cwa, &opts).expect("streams");
    assert!(!exec.early_exit, "the pinned query must not early-exit");
    assert_eq!(
        exec.answers,
        materializing_certain(&pinned, &db, &opts),
        "streaming and materializing must agree before being compared"
    );
    let full_space = exec.worlds_visited;

    println!("## worlds_streaming_vs_materializing");
    println!(
        "workload: {} nulls, {full_space} valuations, {worlds} distinct worlds",
        db.null_ids().len()
    );
    println!(
        "{:<16}  {:>12}  {:>12}  {:>9}",
        "bench", "median", "min", "iters"
    );

    let mat = measure("materializing", budget, || {
        materializing_certain(&pinned, &db, &opts)
    });
    emit(
        "streaming_vs_materializing",
        "materializing",
        1,
        full_space,
        &mat,
    );
    println!(
        "{:<16}  {:>12}  {:>12}  {:>9}",
        "materializing",
        fmt_duration(mat.median),
        fmt_duration(mat.min),
        mat.iters
    );

    let mut best_stream = None;
    for threads in [1usize, 2, 4, 8] {
        let opts = opts_with_threads(threads);
        let m = measure(format!("streaming/{threads}"), budget, || {
            stream_certain_answer(&plan, &db, Semantics::Cwa, &opts).expect("streams")
        });
        emit("thread_scaling", "streaming", threads, full_space, &m);
        println!(
            "{:<16}  {:>12}  {:>12}  {:>9}",
            format!("streaming/{threads}"),
            fmt_duration(m.median),
            fmt_duration(m.min),
            m.iters
        );
        let ns = m.median.as_nanos();
        if best_stream.is_none_or(|(_, b)| ns < b) {
            best_stream = Some((threads, ns));
        }
    }
    let (best_threads, best_ns) = best_stream.expect("at least one streaming config");
    let speedup = mat.median.as_nanos() as f64 / best_ns.max(1) as f64;
    println!(
        "\nstreaming/{best_threads} vs materializing: {speedup:.2}x \
         (target: streaming+parallel beats materializing on this multi-null workload)"
    );
    println!(
        "BENCH {{\"bench\":\"worlds\",\"experiment\":\"summary\",\"best_threads\":{best_threads},\
         \"speedup_vs_materializing\":{speedup:.3}}}"
    );

    // Early exit: a certainly-empty difference stops streaming after a
    // handful of worlds; materializing has no way to stop.
    let empty_q = RaExpr::relation("R")
        .project(vec![0])
        .difference(RaExpr::relation("R").project(vec![0]));
    let empty_plan = PlannedQuery::new(empty_q.clone(), db.schema()).expect("typechecks");
    let opts = opts_with_threads(1);
    let exec = stream_certain_answer(&empty_plan, &db, Semantics::Cwa, &opts).expect("streams");
    assert!(exec.early_exit && exec.answers.is_empty());
    let mat_empty = measure("early/materializing", budget, || {
        materializing_certain(&empty_q, &db, &opts)
    });
    let stream_empty = measure("early/streaming", budget, || {
        stream_certain_answer(&empty_plan, &db, Semantics::Cwa, &opts).expect("streams")
    });
    emit("early_exit", "materializing", 1, full_space, &mat_empty);
    emit(
        "early_exit",
        "streaming",
        1,
        exec.worlds_visited,
        &stream_empty,
    );
    println!(
        "\n## early_exit (certain answer = ∅)\nmaterializing visits {full_space} worlds in {}, \
         streaming visits {} in {}",
        fmt_duration(mat_empty.median),
        exec.worlds_visited,
        fmt_duration(stream_empty.median)
    );

    batched_vs_rows(smoke, budget);
}

/// `R(a,b) ⋈ S(b,c)` with `n` ground rows per side and a single marked null
/// in `R`: the world space is `|domain|` valuations of that one null, and
/// every world shares the all-ground join. The row fold re-clones and
/// re-joins everything per world; the batched fold joins the ground run
/// once per shard and re-probes only the overlay row.
fn join_with_one_null(n: usize) -> Database {
    let schema = Schema::builder()
        .relation("R", &["a", "b"])
        .relation("S", &["b", "c"])
        .build();
    let mut db = Database::new(schema);
    for i in 0..n as i64 {
        db.insert("R", Tuple::ints(&[i, i])).expect("fits schema");
        db.insert("S", Tuple::ints(&[i, 2 * i]))
            .expect("fits schema");
    }
    db.insert("R", Tuple::new(vec![Value::null(0), Value::int(0)]))
        .expect("fits schema");
    db
}

/// The tentpole acceptance sweep: the batched overlay fold against the
/// row-instantiating reference on a no-early-exit workload, gated at ≥10x.
/// Also emits the shard-level hash-table reuse rate, which is what buys the
/// speedup: build-side tables over all-ground runs are built once per shard.
fn batched_vs_rows(smoke: bool, budget: Duration) {
    let n = if smoke { 80 } else { 400 };
    let db = join_with_one_null(n);
    // Pinned non-empty by a literal over an existing constant, so neither
    // path can early-exit: the comparison is full enumeration against full
    // enumeration over the identical world space.
    let q = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[0])])).union(
        RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(relalgebra::predicate::Predicate::eq(
                relalgebra::predicate::Operand::col(1),
                relalgebra::predicate::Operand::col(2),
            ))
            .project(vec![0]),
    );
    let plan = PlannedQuery::new(q, db.schema()).expect("query typechecks");
    let opts = opts_with_threads(1);

    let batched = stream_certain_answer(&plan, &db, Semantics::Cwa, &opts).expect("streams");
    let rows = stream_certain_answer_rows(&plan, &db, Semantics::Cwa, &opts).expect("streams");
    assert!(!batched.early_exit, "the pinned query must not early-exit");
    assert_eq!(batched.answers, rows.answers, "the two folds must agree");
    assert_eq!(batched.worlds_visited, rows.worlds_visited);
    assert_eq!(batched.worlds_batched, batched.worlds_visited);
    let worlds = batched.worlds_visited;
    let built = batched.op_stats.tables_built;
    let reused = batched.op_stats.tables_reused;
    let reuse_rate = reused as f64 / (built + reused).max(1) as f64;

    println!("\n## worlds_batched_vs_rows (n={n} rows per side, {worlds} worlds, no early exit)");
    println!(
        "{:<16}  {:>12}  {:>12}  {:>9}",
        "bench", "median", "min", "iters"
    );
    let row_m = measure("rows/1", budget, || {
        stream_certain_answer_rows(&plan, &db, Semantics::Cwa, &opts).expect("streams")
    });
    emit("batched_vs_rows", "rows", 1, worlds, &row_m);
    println!(
        "{:<16}  {:>12}  {:>12}  {:>9}",
        "rows/1",
        fmt_duration(row_m.median),
        fmt_duration(row_m.min),
        row_m.iters
    );
    let mut batched_1 = None;
    for threads in [1usize, 4] {
        let opts = opts_with_threads(threads);
        let m = measure(format!("batched/{threads}"), budget, || {
            stream_certain_answer(&plan, &db, Semantics::Cwa, &opts).expect("streams")
        });
        emit("batched_vs_rows", "batched", threads, worlds, &m);
        println!(
            "{:<16}  {:>12}  {:>12}  {:>9}",
            format!("batched/{threads}"),
            fmt_duration(m.median),
            fmt_duration(m.min),
            m.iters
        );
        if threads == 1 {
            batched_1 = Some(m.median.as_nanos());
        }
    }
    let batched_ns = batched_1.expect("threads=1 was measured");
    let speedup = row_m.median.as_nanos() as f64 / batched_ns.max(1) as f64;
    println!(
        "\nbatched/1 vs rows/1: {speedup:.1}x; hash-table reuse rate {:.3} \
         ({reused} reused / {built} built)",
        reuse_rate
    );
    println!(
        "BENCH {{\"bench\":\"worlds\",\"experiment\":\"batched_vs_rows_summary\",\"n\":{n},\
         \"worlds\":{worlds},\"speedup_batched_vs_rows\":{speedup:.3},\
         \"tables_built\":{built},\"tables_reused\":{reused},\"reuse_rate\":{reuse_rate:.4}}}"
    );
    assert!(reused > 0, "the shard must reuse build-side tables");
    assert!(
        speedup >= 10.0,
        "acceptance: the batched overlay fold must beat the row-instantiating \
         fold ≥10x on the no-early-exit workload (got {speedup:.1}x)"
    );
}
