//! Repair enumeration vs the conflict-free-core approximation
//! (`cargo bench`).
//!
//! The CQA twin of `benches/symbolic.rs`: on the same inconsistent
//! workload, the exact consistent answer by streaming repair enumeration
//! (exponential in the number of conflict tuples) against the polynomial
//! core approximation (one certain⁺ pass over the repair interval). The
//! sweep crosses violation rate × relation size, because the violation
//! rate is to repairs what the null count is to worlds: the exponent.
//!
//! Per workload: wall-clock medians for both strategies and **units
//! evaluated** (repairs visited vs 1 pass). After asserting the core answer
//! is a subset of the exact one, the bench asserts the core beats full
//! enumeration by ≥10× wall-clock on the high-violation workload — the
//! acceptance bar for keeping the approximation honest.
//!
//! Every measurement is emitted as a machine-readable `BENCH {…}` json
//! line; `BENCH_SMOKE=1` shrinks the workload so CI can keep the harness
//! honest in seconds.

use std::time::Duration;

use bench::harness::{fmt_duration, measure};
use datagen::{random_inconsistent_database, InconsistentDbConfig};
use relalgebra::ast::RaExpr;
use relalgebra::plan::PlannedQuery;
use repairs::{core_consistent_answer, stream_consistent_answer, ConflictGraph, RepairOptions};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn main() {
    let smoke = smoke();
    let budget = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(300)
    };
    // (relation size, violation rate %): the rate axis stops where full
    // enumeration stops being benchmarkable at all — which is the point
    // the core approximation exists to make.
    let workloads: &[(usize, u32)] = if smoke {
        &[(16, 15), (16, 35)]
    } else {
        &[(24, 10), (24, 25), (24, 40), (48, 10), (48, 25)]
    };

    // The consistent values of R: every repair keeps a maximal
    // conflict-free subset of R, and only values in all of them survive.
    let q = RaExpr::relation("R").project(vec![1]);

    println!("## repairs_vs_core (violation rate × relation size)");
    println!(
        "{:<14}  {:>9} {:>8}  {:>14} {:>12}  {:>12}  {:>9}",
        "workload", "conflict", "repairs", "enum median", "core median", "units×", "time×"
    );

    // (repairs visited, time ratio) of the most conflicted workload — the
    // one the acceptance assertion reads.
    let mut high_violation: Option<(u128, f64)> = None;
    {
        for &(size, rate) in workloads {
            let db = random_inconsistent_database(&InconsistentDbConfig {
                tuples_per_relation: size,
                domain_size: size,
                violation_rate_percent: rate,
                null_rate_percent: 0,
                distinct_nulls: 0,
                seed: 42,
            });
            let graph = ConflictGraph::build(&db);
            let plan = PlannedQuery::new(q.clone(), db.schema()).expect("typechecks");
            // Single-threaded and un-budgeted within reason: the bench
            // measures the algorithmic gap, not the scheduler.
            let opts = RepairOptions::default()
                .with_threads(1)
                .with_max_repairs(1 << 22);

            // Correctness gate before any timing: the core is sound.
            let exact = stream_consistent_answer(&plan, &db, &graph, &opts).expect("fits budget");
            let core = core_consistent_answer(&plan, &db, &graph);
            assert!(
                core.answers.is_subset(&exact.answers),
                "core must be sound on size {size} rate {rate}"
            );

            let name = format!("{size}x{rate}%");
            let m_enum = measure(format!("enum/{name}"), budget, || {
                stream_consistent_answer(&plan, &db, &graph, &opts).expect("fits budget")
            });
            let m_core = measure(format!("core/{name}"), budget, || {
                core_consistent_answer(&plan, &db, &graph)
            });

            let units_ratio = exact.repairs_visited as f64;
            let time_ratio =
                m_enum.median.as_nanos() as f64 / m_core.median.as_nanos().max(1) as f64;
            println!(
                "{:<14}  {:>9} {:>8}  {:>14} {:>12}  {:>11.0}x  {:>8.1}x",
                name,
                graph.conflict_tuples(),
                exact.repairs_visited,
                fmt_duration(m_enum.median),
                fmt_duration(m_core.median),
                units_ratio,
                time_ratio
            );
            println!(
                "BENCH {{\"bench\":\"repairs\",\"size\":{size},\"violation_rate\":{rate},\
                 \"conflict_tuples\":{},\"edges\":{},\"repairs_visited\":{},\
                 \"repair_early_exit\":{},\"core_tuples\":{},\
                 \"enum_median_ns\":{},\"core_median_ns\":{},\
                 \"units_ratio\":{units_ratio:.3},\"time_ratio\":{time_ratio:.3}}}",
                graph.conflict_tuples(),
                graph.edge_count(),
                exact.repairs_visited,
                exact.early_exit,
                core.core_tuples,
                m_enum.median.as_nanos(),
                m_core.median.as_nanos(),
            );
            if high_violation.is_none_or(|(r, _)| exact.repairs_visited > r) {
                high_violation = Some((exact.repairs_visited, time_ratio));
            }
        }
    }

    // The acceptance bar: on the high-violation workload (the one with the
    // largest repair space) the polynomial core must beat exponential
    // enumeration by at least an order of magnitude.
    let (repairs, ratio) = high_violation.expect("high-violation workload measured");
    assert!(
        ratio >= 10.0,
        "core approximation must beat repair enumeration by ≥10x wall-clock \
         on the high-violation workload ({repairs} repairs), got {ratio:.1}x"
    );
}
