//! Timing benches backing the experiment harness (run with `cargo bench`):
//!
//! * `naive_vs_worlds` (E4/E7) — naïve evaluation vs possible-world ground
//!   truth on the same query, as the number of nulls grows;
//! * `worlds_scaling` (E7) — ground-truth cost alone, exhibiting the
//!   exponential blow-up;
//! * `three_valued_vs_naive` (E1/E2) — SQL 3VL evaluation vs naïve evaluation
//!   on the orders/payments workload at increasing scale;
//! * `homomorphism` (E9) — homomorphism / strong-onto-homomorphism checks used
//!   by the information orderings;
//! * `racwa_naive` (E11) — division queries evaluated naïvely vs their CWA
//!   ground truth;
//! * `ctable_algebra` (E6) — the Imieliński–Lipski algebra vs naïve
//!   evaluation for the difference query.
//!
//! All query evaluation goes through the [`engine::Engine`] front door; the
//! harness is the `std`-only one in [`bench::harness`] (criterion is not
//! available offline).

use bench::harness::Group;
use certain_core::homomorphism::{find_homomorphism, HomKind};
use ctables::algebra::eval_ctable;
use ctables::ctable::ConditionalDatabase;
use datagen::{
    orders_database, random_database, random_division_query, OrdersConfig, QueryGenConfig,
    RandomDbConfig,
};
use engine::{Engine, EngineOptions, StrategyKind};
use qparser::parse;
use relmodel::{DatabaseBuilder, Value};

/// Database with `n` nulls in S, used by the scaling benches.
fn scaling_db(nulls: usize) -> relmodel::Database {
    let mut b = DatabaseBuilder::new()
        .relation("R", &["a", "b"])
        .relation("S", &["b"]);
    for i in 0..6i64 {
        b = b.ints("R", &[i, i + 10]);
    }
    b = b.ints("S", &[10]).ints("S", &[11]);
    for i in 0..nulls {
        b = b.tuple("S", vec![Value::null(i as u64)]);
    }
    b.build()
}

fn bench_naive_vs_worlds() -> Group {
    let q = parse("project[#0](select[#1 = #2](product(R, S)))").expect("query parses");
    let mut group = Group::new("naive_vs_worlds");
    for nulls in [1usize, 2, 3, 4] {
        let db = scaling_db(nulls);
        let engine = Engine::new(&db).options(EngineOptions::exhaustive());
        group.bench(format!("naive/{nulls}"), || {
            engine
                .plan_with(StrategyKind::NaiveExact, &q)
                .expect("evaluation succeeds")
        });
        group.bench(format!("worlds/{nulls}"), || {
            engine.ground_truth(&q).expect("within budget")
        });
    }
    group
}

fn bench_worlds_scaling() -> Group {
    let q = parse("project[#1](R)").expect("query parses");
    let mut group = Group::new("worlds_scaling");
    for nulls in [1usize, 3, 5] {
        let db = scaling_db(nulls);
        let engine = Engine::new(&db).options(EngineOptions::exhaustive());
        group.bench(format!("{nulls}"), || {
            engine.ground_truth(&q).expect("within budget")
        });
    }
    group
}

fn bench_three_valued_vs_naive() -> Group {
    let unpaid = parse("project[#0](Order) minus project[#1](Pay)").expect("query parses");
    let mut group = Group::new("three_valued_vs_naive");
    for orders in [50usize, 200, 800] {
        let db = orders_database(&OrdersConfig {
            orders,
            payments: orders,
            null_rate: 0.1,
            ..OrdersConfig::default()
        });
        let engine = Engine::new(&db);
        group.bench(format!("sql_3vl/{orders}"), || {
            engine.baseline_3vl(&unpaid).expect("evaluation succeeds")
        });
        group.bench(format!("naive/{orders}"), || {
            engine
                .plan_with(StrategyKind::NaiveExact, &unpaid)
                .expect("evaluation succeeds")
        });
    }
    group
}

fn bench_homomorphism() -> Group {
    let mut group = Group::new("homomorphism");
    for tuples in [4usize, 8, 12] {
        let db = random_database(&RandomDbConfig {
            tuples_per_relation: tuples,
            distinct_nulls: 3,
            seed: 7,
            ..Default::default()
        });
        let domain = relmodel::semantics::adequate_domain(&db, &Default::default(), 3);
        let world = relmodel::semantics::enumerate_cwa_worlds(&db, &domain)
            .into_iter()
            .next()
            .expect("at least one world");
        group.bench(format!("plain/{tuples}"), || {
            find_homomorphism(&db, &world, HomKind::Any).is_some()
        });
        group.bench(format!("strong_onto/{tuples}"), || {
            find_homomorphism(&db, &world, HomKind::StrongOnto).is_some()
        });
    }
    group
}

fn bench_racwa_naive() -> Group {
    let schema = datagen::random::random_schema();
    let mut group = Group::new("racwa_naive");
    for seed in [0u64, 1, 2] {
        let db = random_database(&RandomDbConfig {
            tuples_per_relation: 4,
            distinct_nulls: 2,
            seed,
            ..Default::default()
        });
        let q = random_division_query(
            &schema,
            &QueryGenConfig {
                seed,
                ..Default::default()
            },
        );
        let engine = Engine::new(&db).options(EngineOptions::exhaustive());
        group.bench(format!("naive/{seed}"), || {
            engine
                .plan_with(StrategyKind::NaiveExact, &q)
                .expect("evaluation succeeds")
        });
        group.bench(format!("worlds/{seed}"), || {
            engine.ground_truth(&q).expect("within budget")
        });
    }
    group
}

fn bench_ctable_algebra() -> Group {
    let q = parse("R minus S").expect("query parses");
    let mut group = Group::new("ctable_algebra");
    for tuples in [4usize, 8, 16] {
        let mut b = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"]);
        for i in 0..tuples as i64 {
            b = b.ints("R", &[i]);
        }
        b = b
            .tuple("S", vec![Value::null(0)])
            .tuple("S", vec![Value::null(1)]);
        let db = b.build();
        let cdb = ConditionalDatabase::from_database(&db);
        group.bench(format!("ctable/{tuples}"), || {
            eval_ctable(&q, &cdb).expect("c-table evaluation succeeds")
        });
        let engine = Engine::new(&db);
        group.bench(format!("naive/{tuples}"), || {
            engine
                .plan_with(StrategyKind::NaiveExact, &q)
                .expect("evaluation succeeds")
        });
    }
    group
}

fn main() {
    let groups = [
        bench_naive_vs_worlds(),
        bench_worlds_scaling(),
        bench_three_valued_vs_naive(),
        bench_homomorphism(),
        bench_racwa_naive(),
        bench_ctable_algebra(),
    ];
    for group in groups {
        println!("{}", group.render());
    }
}
