//! Criterion timing benches backing the experiment harness:
//!
//! * `naive_vs_worlds` (E4/E7) — naïve evaluation vs possible-world ground
//!   truth on the same query, as the number of nulls grows;
//! * `worlds_scaling` (E7) — ground-truth cost alone, exhibiting the
//!   exponential blow-up;
//! * `three_valued_vs_naive` (E1/E2) — SQL 3VL evaluation vs naïve evaluation
//!   on the orders/payments workload at increasing scale;
//! * `homomorphism` (E9) — homomorphism / strong-onto-homomorphism checks used
//!   by the information orderings;
//! * `racwa_naive` (E11) — division queries evaluated naïvely vs their CWA
//!   ground truth;
//! * `ctable_algebra` (E6) — the Imieliński–Lipski algebra vs naïve
//!   evaluation for the difference query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use certain_core::homomorphism::{find_homomorphism, HomKind};
use ctables::algebra::eval_ctable;
use ctables::ctable::ConditionalDatabase;
use datagen::{orders_database, random_database, random_division_query, OrdersConfig, QueryGenConfig, RandomDbConfig};
use qparser::parse;
use relmodel::{DatabaseBuilder, Semantics, Value};
use releval::naive::{certain_answer_naive, eval_naive};
use releval::three_valued::eval_3vl;
use releval::worlds::{certain_answer_worlds, WorldOptions};

/// Database with `n` nulls in S, used by the scaling benches.
fn scaling_db(nulls: usize) -> relmodel::Database {
    let mut b = DatabaseBuilder::new().relation("R", &["a", "b"]).relation("S", &["b"]);
    for i in 0..6i64 {
        b = b.ints("R", &[i, i + 10]);
    }
    b = b.ints("S", &[10]).ints("S", &[11]);
    for i in 0..nulls {
        b = b.tuple("S", vec![Value::null(i as u64)]);
    }
    b.build()
}

fn bench_naive_vs_worlds(c: &mut Criterion) {
    let q = parse("project[#0](select[#1 = #2](product(R, S)))").expect("query parses");
    let mut group = c.benchmark_group("naive_vs_worlds");
    for nulls in [1usize, 2, 3, 4] {
        let db = scaling_db(nulls);
        group.bench_with_input(BenchmarkId::new("naive", nulls), &db, |b, db| {
            b.iter(|| certain_answer_naive(&q, db).expect("evaluation succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("worlds", nulls), &db, |b, db| {
            b.iter(|| {
                certain_answer_worlds(&q, db, Semantics::Cwa, &WorldOptions::default())
                    .expect("within budget")
            })
        });
    }
    group.finish();
}

fn bench_worlds_scaling(c: &mut Criterion) {
    let q = parse("project[#1](R)").expect("query parses");
    let mut group = c.benchmark_group("worlds_scaling");
    for nulls in [1usize, 3, 5] {
        let db = scaling_db(nulls);
        group.bench_with_input(BenchmarkId::from_parameter(nulls), &db, |b, db| {
            b.iter(|| {
                certain_answer_worlds(&q, db, Semantics::Cwa, &WorldOptions::default())
                    .expect("within budget")
            })
        });
    }
    group.finish();
}

fn bench_three_valued_vs_naive(c: &mut Criterion) {
    let unpaid = parse("project[#0](Order) minus project[#1](Pay)").expect("query parses");
    let mut group = c.benchmark_group("three_valued_vs_naive");
    for orders in [50usize, 200, 800] {
        let db = orders_database(&OrdersConfig {
            orders,
            payments: orders,
            null_rate: 0.1,
            ..OrdersConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("sql_3vl", orders), &db, |b, db| {
            b.iter(|| eval_3vl(&unpaid, db).expect("evaluation succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("naive", orders), &db, |b, db| {
            b.iter(|| eval_naive(&unpaid, db).expect("evaluation succeeds"))
        });
    }
    group.finish();
}

fn bench_homomorphism(c: &mut Criterion) {
    let mut group = c.benchmark_group("homomorphism");
    for tuples in [4usize, 8, 12] {
        let db = random_database(&RandomDbConfig {
            tuples_per_relation: tuples,
            distinct_nulls: 3,
            seed: 7,
            ..Default::default()
        });
        let domain = relmodel::semantics::adequate_domain(&db, &Default::default(), 3);
        let world = relmodel::semantics::enumerate_cwa_worlds(&db, &domain)
            .into_iter()
            .next()
            .expect("at least one world");
        group.bench_with_input(BenchmarkId::new("plain", tuples), &(&db, &world), |b, (db, world)| {
            b.iter(|| find_homomorphism(db, world, HomKind::Any).is_some())
        });
        group.bench_with_input(
            BenchmarkId::new("strong_onto", tuples),
            &(&db, &world),
            |b, (db, world)| b.iter(|| find_homomorphism(db, world, HomKind::StrongOnto).is_some()),
        );
    }
    group.finish();
}

fn bench_racwa_naive(c: &mut Criterion) {
    let schema = datagen::random::random_schema();
    let mut group = c.benchmark_group("racwa_naive");
    for seed in [0u64, 1, 2] {
        let db = random_database(&RandomDbConfig {
            tuples_per_relation: 4,
            distinct_nulls: 2,
            seed,
            ..Default::default()
        });
        let q = random_division_query(&schema, &QueryGenConfig { seed, ..Default::default() });
        group.bench_with_input(BenchmarkId::new("naive", seed), &db, |b, db| {
            b.iter(|| certain_answer_naive(&q, db).expect("evaluation succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("worlds", seed), &db, |b, db| {
            b.iter(|| {
                certain_answer_worlds(&q, db, Semantics::Cwa, &WorldOptions::default())
                    .expect("within budget")
            })
        });
    }
    group.finish();
}

fn bench_ctable_algebra(c: &mut Criterion) {
    let q = parse("R minus S").expect("query parses");
    let mut group = c.benchmark_group("ctable_algebra");
    for tuples in [4usize, 8, 16] {
        let mut b = DatabaseBuilder::new().relation("R", &["a"]).relation("S", &["a"]);
        for i in 0..tuples as i64 {
            b = b.ints("R", &[i]);
        }
        b = b.tuple("S", vec![Value::null(0)]).tuple("S", vec![Value::null(1)]);
        let db = b.build();
        let cdb = ConditionalDatabase::from_database(&db);
        group.bench_with_input(BenchmarkId::new("ctable", tuples), &cdb, |bch, cdb| {
            bch.iter(|| eval_ctable(&q, cdb).expect("c-table evaluation succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("naive", tuples), &db, |bch, db| {
            bch.iter(|| eval_naive(&q, db).expect("evaluation succeeds"))
        });
    }
    group.finish();
}

/// Keep per-benchmark time modest: the interesting comparisons are orders of
/// magnitude (naïve vs exponential world enumeration), not single-digit
/// percentages, so 10 samples over ~1.5s of measurement suffice.
fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets =
        bench_naive_vs_worlds,
        bench_worlds_scaling,
        bench_three_valued_vs_naive,
        bench_homomorphism,
        bench_racwa_naive,
        bench_ctable_algebra
}
criterion_main!(benches);
