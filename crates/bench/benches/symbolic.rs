//! Symbolic c-tables vs possible-world enumeration (`cargo bench`).
//!
//! The worlds bench (`worlds.rs`) measures the streaming oracle against its
//! materializing ancestor; this bench measures the thing that makes the
//! oracle a *validator* rather than the production path: on the same
//! multi-null workload, full-RA queries answered by the symbolic strategy
//! (c-table algebra + certainty solver — polynomial per output tuple)
//! against the streaming world fold (exponential in the number of nulls).
//!
//! Two figures per workload:
//!
//! * wall-clock medians for both strategies, and
//! * **units evaluated** — solver calls vs worlds visited — the
//!   machine-independent face of the exponential-to-polynomial gap. On the
//!   non-early-exit workloads the bench asserts the symbolic side needs at
//!   least 10× fewer units (it is typically hundreds to thousands of times
//!   fewer), after asserting both sides return *identical* certain answers.
//!
//! Every measurement is emitted as a machine-readable `BENCH {…}` json line;
//! `BENCH_SMOKE=1` shrinks the workload so CI can keep the harness honest in
//! seconds.

use std::time::Duration;

use bench::harness::{fmt_duration, measure};
use datagen::{random_database, RandomDbConfig};
use relalgebra::ast::RaExpr;
use relalgebra::classify::{classify, QueryClass};
use relalgebra::plan::PlannedQuery;
use relalgebra::predicate::{Operand, Predicate};
use releval::symbolic::{
    symbolic_certain_answer, SymbolicExecution, SymbolicOptions, SymbolicOutcome,
};
use releval::worlds::{stream_certain_answer, WorldOptions};
use relmodel::Semantics;

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn symbolic(plan: &PlannedQuery, db: &relmodel::Database) -> SymbolicExecution {
    match symbolic_certain_answer(plan, db, &SymbolicOptions::default()) {
        SymbolicOutcome::Answered(exec) => exec,
        SymbolicOutcome::Punted(reason) => panic!("symbolic punted on a bench workload: {reason}"),
    }
}

fn main() {
    let smoke = smoke();
    let budget = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(300)
    };
    // The same workload shape as benches/worlds.rs: the null count is the
    // exponent of the world space and leaves the symbolic side untouched.
    let db = random_database(&RandomDbConfig {
        tuples_per_relation: 8,
        domain_size: 4,
        distinct_nulls: if smoke { 4 } else { 6 },
        null_rate_percent: 30,
        seed: 42,
    });
    let world_opts = WorldOptions {
        extra_fresh: Some(1),
        threads: Some(1),
        ..WorldOptions::default()
    };

    // Full-RA workloads (every one classified FullRa — the class the
    // dispatcher hands to the symbolic strategy):
    // * difference      — certain answer may be nonempty; no early exit, so
    //                     the world fold pays for the entire space;
    // * tautology       — σ(c ∨ ¬c) over S: nonempty certain answer, full
    //                     enumeration again;
    // * empty-difference— Q − Q: the world fold's best case (early exit on
    //                     the first world), included so the comparison also
    //                     shows the oracle at its fastest.
    let workloads: Vec<(&str, RaExpr)> = vec![
        (
            "difference",
            RaExpr::relation("R")
                .project(vec![0])
                .difference(RaExpr::relation("S")),
        ),
        (
            "tautology",
            RaExpr::relation("S")
                .select(
                    Predicate::eq(Operand::col(0), Operand::int(0))
                        .or(Predicate::neq(Operand::col(0), Operand::int(0))),
                )
                .project(vec![0]),
        ),
        (
            "empty-difference",
            RaExpr::relation("R")
                .project(vec![0])
                .difference(RaExpr::relation("R").project(vec![0])),
        ),
    ];

    println!("## symbolic_vs_worlds ({} nulls)", db.null_ids().len());
    println!(
        "{:<18}  {:>14} {:>12}  {:>14} {:>12}  {:>9}",
        "workload", "worlds", "median", "solver calls", "median", "units×"
    );

    for (name, q) in workloads {
        assert_eq!(classify(&q), QueryClass::FullRa, "workload {name}");
        let plan = PlannedQuery::new(q.clone(), db.schema()).expect("typechecks");

        // Correctness gate before any timing: identical certain answers.
        let sym = symbolic(&plan, &db);
        let worlds =
            stream_certain_answer(&plan, &db, Semantics::Cwa, &world_opts).expect("streams");
        assert_eq!(
            sym.answers, worlds.answers,
            "symbolic and worlds disagree on {name}"
        );

        let m_worlds = measure(format!("worlds/{name}"), budget, || {
            stream_certain_answer(&plan, &db, Semantics::Cwa, &world_opts).expect("streams")
        });
        let m_sym = measure(format!("symbolic/{name}"), budget, || symbolic(&plan, &db));

        let units_ratio = worlds.worlds_visited as f64 / sym.solver_calls.max(1) as f64;
        let time_ratio = m_worlds.median.as_nanos() as f64 / m_sym.median.as_nanos().max(1) as f64;
        println!(
            "{:<18}  {:>14} {:>12}  {:>14} {:>12}  {:>8.1}x",
            name,
            worlds.worlds_visited,
            fmt_duration(m_worlds.median),
            sym.solver_calls,
            fmt_duration(m_sym.median),
            units_ratio
        );
        println!(
            "BENCH {{\"bench\":\"symbolic\",\"workload\":\"{name}\",\
             \"worlds_visited\":{},\"world_early_exit\":{},\"solver_calls\":{},\
             \"simplification_wins\":{},\"condition_atoms\":{},\"answer_rows\":{},\
             \"worlds_median_ns\":{},\"symbolic_median_ns\":{},\
             \"units_ratio\":{units_ratio:.3},\"time_ratio\":{time_ratio:.3}}}",
            worlds.worlds_visited,
            worlds.early_exit,
            sym.solver_calls,
            sym.simplification_wins,
            sym.condition_atoms,
            sym.rows,
            m_worlds.median.as_nanos(),
            m_sym.median.as_nanos(),
        );
        if !worlds.early_exit {
            // The acceptance bar: on workloads the world fold cannot
            // shortcut, symbolic must need at least 10× fewer units.
            assert!(
                units_ratio >= 10.0,
                "symbolic must beat worlds by ≥10x units on {name}: \
                 {} worlds vs {} solver calls",
                worlds.worlds_visited,
                sym.solver_calls
            );
        }
    }
}
