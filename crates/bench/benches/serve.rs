//! Serving-layer throughput (`cargo bench -p bench --bench serve`).
//!
//! Three dispatch paths for the same query, same database, same answer:
//!
//! * `uncached` — a fresh [`Engine::new`] + `plan_text` per request: the
//!   one-shot front door, paying census measurement, parse, typecheck,
//!   lowering, and execution every time;
//! * `service-cold` — a fresh [`CertainService`] per request: the same work
//!   plus snapshot construction, bounding what a cache miss costs;
//! * `service-hot` — one long-lived service, repeated submits: the plan and
//!   result caches absorb everything after the first request.
//!
//! The acceptance bar is `service-hot` ≥10× faster than `uncached`. A client
//! sweep then drives the hot path from 1/2/4/8 threads sharing one service
//! to show the read path scales (the result cache is hash-sharded across
//! [`serve::RESULT_SHARDS`] locks, so hits on distinct queries rarely
//! contend; each critical section is a hash lookup + clone).
//!
//! Each measurement is emitted as a machine-readable `BENCH {…}` json line;
//! `BENCH_SMOKE=1` shrinks the workload so CI can keep the harness alive.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bench::harness::{fmt_duration, measure, Measurement};
use engine::Engine;
use relmodel::{Database, Schema, Tuple};
use serve::CertainService;

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn emit(experiment: &str, mode: &str, n: usize, m: &Measurement) {
    println!(
        "BENCH {{\"bench\":\"serve\",\"experiment\":\"{experiment}\",\"mode\":\"{mode}\",\
         \"n\":{n},\"median_ns\":{},\"min_ns\":{},\"iters\":{}}}",
        m.median.as_nanos(),
        m.min.as_nanos(),
        m.iters
    );
}

fn print_row(m: &Measurement) {
    println!(
        "{:<22}  {:>12}  {:>12}  {:>9}",
        m.label,
        fmt_duration(m.median),
        fmt_duration(m.min),
        m.iters
    );
}

/// `R(a,b) ⋈ S(b,c)` with `n` rows per side; the bench query picks one key
/// out of the join, so answers are tiny but dispatch must still plan and
/// execute a real join.
fn serve_db(n: usize) -> Database {
    let schema = Schema::builder()
        .relation("R", &["a", "b"])
        .relation("S", &["b", "c"])
        .build();
    let mut db = Database::new(schema);
    for i in 0..n as i64 {
        db.insert("R", Tuple::ints(&[i, i])).expect("fits schema");
        db.insert("S", Tuple::ints(&[i, 2 * i]))
            .expect("fits schema");
    }
    db
}

const QUERY: &str = "project[#0](select[#1 = #2 and #0 = 7](product(R, S)))";

fn main() {
    let smoke = smoke();
    let budget = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(300)
    };
    let n = if smoke { 120 } else { 1000 };
    let db = serve_db(n);

    // Correctness before speed: all three paths answer identically.
    let service = CertainService::new(db.clone());
    let expected = Engine::new(&db).plan_text(QUERY).expect("query typechecks");
    let served = service.submit(QUERY).expect("query typechecks");
    assert_eq!(served.answers, expected.answers);
    assert_eq!(served.guarantee, expected.guarantee);
    assert_eq!(served.answers.len(), 1, "the key picks one row");

    println!("## serve_dispatch (hot cache vs cold vs uncached engine, n rows per side)");
    println!(
        "{:<22}  {:>12}  {:>12}  {:>9}",
        "bench", "median", "min", "iters"
    );
    let uncached = measure(format!("uncached/{n}"), budget, || {
        Engine::new(&db).plan_text(QUERY).expect("typechecks")
    });
    emit("dispatch", "uncached", n, &uncached);
    print_row(&uncached);

    let cold = measure(format!("service-cold/{n}"), budget, || {
        CertainService::new(db.clone())
            .submit(QUERY)
            .expect("typechecks")
    });
    emit("dispatch", "service-cold", n, &cold);
    print_row(&cold);

    // One submit already warmed both caches above; every measured iteration
    // is a result-cache hit.
    let hot = measure(format!("service-hot/{n}"), budget, || {
        service.submit(QUERY).expect("typechecks")
    });
    emit("dispatch", "service-hot", n, &hot);
    print_row(&hot);
    assert!(
        service.telemetry().result_hits > 0,
        "the hot loop must actually hit the cache"
    );

    let speedup = uncached.median.as_nanos() as f64 / hot.median.as_nanos().max(1) as f64;
    println!("hot cache vs uncached dispatch at n={n}: {speedup:.1}x");
    println!(
        "BENCH {{\"bench\":\"serve\",\"experiment\":\"summary\",\"n\":{n},\
         \"speedup_hot_vs_uncached\":{speedup:.3}}}"
    );
    if !smoke {
        assert!(
            speedup >= 10.0,
            "acceptance: the hot result cache must beat uncached dispatch ≥10x \
             (got {speedup:.1}x)"
        );
    }

    // Client sweep: T threads share one service, each submitting a round of
    // hot queries; the label's time is one whole round across all clients.
    println!("\n## serve_clients (T threads sharing one hot service)");
    println!(
        "{:<22}  {:>12}  {:>12}  {:>9}",
        "bench", "median", "min", "iters"
    );
    let per_client = if smoke { 50 } else { 200 };
    let shared = Arc::new(CertainService::new(db.clone()));
    shared.submit(QUERY).expect("warm the caches");
    for threads in [1usize, 2, 4, 8] {
        let m = measure(format!("clients/{threads}"), budget, || {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let service = Arc::clone(&shared);
                    thread::spawn(move || {
                        for _ in 0..per_client {
                            let report = service.submit(QUERY).expect("typechecks");
                            assert_eq!(report.answers.len(), 1);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread panicked");
            }
        });
        emit(
            "clients",
            &format!("{threads}-threads"),
            per_client * threads,
            &m,
        );
        print_row(&m);
    }
}
