//! Nested-loop vs hash equi-join (`cargo bench -p bench --bench join`).
//!
//! The seed evaluated `σ_{b=b'}(R × S)` by materializing the full Cartesian
//! product and filtering — `O(|R|·|S|)` pairs however selective the join.
//! The physical plan fuses the selection into a hash equi-join: build a hash
//! table on one side's key, probe with the other, `O(|R| + |S| + matches)`.
//! This bench quantifies the gap on a selective join at increasing scale
//! (the acceptance bar is ≥10× at 1k×1k), and also measures the bulk
//! `Relation::from_tuples` constructor whose per-tuple arity `assert!` was
//! downgraded to a `debug_assert!` — the constructor every operator's output
//! lands in.
//!
//! Each measurement is emitted as a machine-readable `BENCH {…}` json line;
//! `BENCH_SMOKE=1` shrinks the workload so CI can keep the harness alive.

use std::time::Duration;

use bench::harness::{fmt_duration, measure, Measurement};
use datagen::random_database_with_null_rate;
use relalgebra::ast::RaExpr;
use relalgebra::plan::PlannedQuery;
use relalgebra::predicate::{Operand, Predicate};
use releval::exec;
use relmodel::{Database, Schema, Tuple};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn emit(experiment: &str, mode: &str, n: usize, m: &Measurement) {
    println!(
        "BENCH {{\"bench\":\"join\",\"experiment\":\"{experiment}\",\"mode\":\"{mode}\",\
         \"n\":{n},\"median_ns\":{},\"min_ns\":{},\"iters\":{}}}",
        m.median.as_nanos(),
        m.min.as_nanos(),
        m.iters
    );
}

/// `R(a,b)` and `S(b,c)` with `n` rows each and a selective equi-join on
/// `b`: every `R` row matches exactly one `S` row, so the join yields `n`
/// rows out of `n²` candidate pairs.
fn join_db(n: usize) -> Database {
    let schema = Schema::builder()
        .relation("R", &["a", "b"])
        .relation("S", &["b", "c"])
        .build();
    let mut db = Database::new(schema);
    for i in 0..n as i64 {
        db.insert("R", Tuple::ints(&[i, i])).expect("fits schema");
        db.insert("S", Tuple::ints(&[i, 2 * i]))
            .expect("fits schema");
    }
    db
}

fn join_query() -> RaExpr {
    RaExpr::relation("R")
        .product(RaExpr::relation("S"))
        .select(Predicate::eq(Operand::col(1), Operand::col(2)))
}

fn main() {
    let smoke = smoke();
    let budget = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(300)
    };
    let sizes: &[usize] = if smoke { &[60, 120] } else { &[100, 300, 1000] };
    let q = join_query();

    println!("## join_nested_loop_vs_hash (selective equi-join, n rows per side)");
    println!(
        "{:<22}  {:>12}  {:>12}  {:>9}",
        "bench", "median", "min", "iters"
    );
    let mut last_speedup = 0.0f64;
    for &n in sizes {
        let db = join_db(n);
        let plan = PlannedQuery::new(q.clone(), db.schema()).expect("query typechecks");
        assert!(plan.physical().has_hash_join(), "fusion must fire");
        // Correctness before speed: both paths must agree.
        let hash_out = exec::execute(plan.physical(), &db);
        let loop_out = releval::engine::eval_unchecked(&q, &db).into_owned();
        assert_eq!(hash_out, loop_out, "hash join != nested loop at n={n}");
        assert_eq!(hash_out.len(), n, "selective join yields n rows");

        let nested = measure(format!("nested-loop/{n}"), budget, || {
            releval::engine::eval_unchecked(&q, &db).into_owned()
        });
        emit("scaling", "nested-loop", n, &nested);
        println!(
            "{:<22}  {:>12}  {:>12}  {:>9}",
            nested.label,
            fmt_duration(nested.median),
            fmt_duration(nested.min),
            nested.iters
        );
        let hash = measure(format!("hash-join/{n}"), budget, || {
            exec::execute(plan.physical(), &db)
        });
        emit("scaling", "hash", n, &hash);
        println!(
            "{:<22}  {:>12}  {:>12}  {:>9}",
            hash.label,
            fmt_duration(hash.median),
            fmt_duration(hash.min),
            hash.iters
        );
        last_speedup = nested.median.as_nanos() as f64 / hash.median.as_nanos().max(1) as f64;
        println!("hash vs nested-loop at {n}: {last_speedup:.1}x");
    }
    println!(
        "BENCH {{\"bench\":\"join\",\"experiment\":\"summary\",\"n\":{},\
         \"speedup_hash_vs_nested\":{last_speedup:.3}}}",
        sizes.last().expect("at least one size")
    );
    if !smoke {
        assert!(
            last_speedup >= 10.0,
            "acceptance: hash join must beat the nested loop ≥10x at 1k×1k \
             (got {last_speedup:.1}x)"
        );
    }

    // The morsel-driven columnar core against the row-at-a-time executors,
    // swept across null rates on the mostly-ground join workload. The pair
    // (certain⁺/possible?) executor is where the batch-granular
    // ground/symbolic run split pays: the row path allocates a key vector
    // per probe, a concat per candidate, and a set insert per output row,
    // while the columnar path hashes raw u64s over cache-resident columns
    // and falls back per-row only for the symbolic remainder.
    println!("\n## columnar_vs_row (null-rate sweep, n rows per side)");
    println!(
        "{:<22}  {:>12}  {:>12}  {:>9}",
        "bench", "median", "min", "iters"
    );
    let n = if smoke { 200 } else { 1000 };
    let rates: &[u32] = if smoke { &[1] } else { &[0, 1, 10, 50] };
    // The swept query projects the join down to the matched `a`s: the row
    // executors materialize a `BTreeSet` relation per operator (the 1%-null
    // possible side of the join alone is ~20·n rows), while the columnar
    // core carries batches end to end, dedups the projection in its hash
    // kernel, and converts to a relation once, at the root.
    let q_sweep = join_query().project(vec![0]);
    let mut pair_speedup_at_1pct = 0.0f64;
    for &rate in rates {
        let db = random_database_with_null_rate(n, rate, 42);
        let plan = PlannedQuery::new(q_sweep.clone(), db.schema()).expect("query typechecks");
        // Correctness before speed, on both executors.
        let (col_plain, _) = exec::columnar::execute_counted(plan.physical(), &db);
        assert_eq!(
            col_plain,
            exec::execute(plan.physical(), &db),
            "columnar != row (plain) at {rate}% nulls"
        );
        let col_pair = exec::columnar::approx::execute_approx(plan.physical(), &db);
        let row_pair = exec::approx::execute_approx(plan.physical(), &db);
        assert_eq!(
            col_pair.certain, row_pair.certain,
            "columnar != row (pair, certain) at {rate}% nulls"
        );
        assert_eq!(
            col_pair.possible, row_pair.possible,
            "columnar != row (pair, possible) at {rate}% nulls"
        );

        for (mode, m) in [
            (
                "row-plain",
                measure(format!("row-plain/{rate}%"), budget, || {
                    exec::execute(plan.physical(), &db)
                }),
            ),
            (
                "columnar-plain",
                measure(format!("columnar-plain/{rate}%"), budget, || {
                    exec::columnar::execute(plan.physical(), &db)
                }),
            ),
        ] {
            emit(&format!("null_rate_plain_{rate}pct"), mode, n, &m);
            println!(
                "{:<22}  {:>12}  {:>12}  {:>9}",
                m.label,
                fmt_duration(m.median),
                fmt_duration(m.min),
                m.iters
            );
        }
        let row = measure(format!("row-pair/{rate}%"), budget, || {
            exec::approx::execute_approx(plan.physical(), &db)
        });
        emit(&format!("null_rate_pair_{rate}pct"), "row", n, &row);
        println!(
            "{:<22}  {:>12}  {:>12}  {:>9}",
            row.label,
            fmt_duration(row.median),
            fmt_duration(row.min),
            row.iters
        );
        let col = measure(format!("columnar-pair/{rate}%"), budget, || {
            exec::columnar::approx::execute_approx(plan.physical(), &db)
        });
        emit(&format!("null_rate_pair_{rate}pct"), "columnar", n, &col);
        println!(
            "{:<22}  {:>12}  {:>12}  {:>9}",
            col.label,
            fmt_duration(col.median),
            fmt_duration(col.min),
            col.iters
        );
        let speedup = row.median.as_nanos() as f64 / col.median.as_nanos().max(1) as f64;
        if rate == 1 {
            pair_speedup_at_1pct = speedup;
        }
        println!("columnar vs row pair at {rate}% nulls: {speedup:.1}x");
    }
    println!(
        "BENCH {{\"bench\":\"join\",\"experiment\":\"columnar_summary\",\"n\":{n},\
         \"speedup_columnar_vs_row_pair_1pct\":{pair_speedup_at_1pct:.3}}}"
    );
    if !smoke {
        assert!(
            pair_speedup_at_1pct >= 5.0,
            "acceptance: the columnar pair executor must beat the row pair executor \
             ≥5x at 1k rows / 1% nulls (got {pair_speedup_at_1pct:.1}x)"
        );
    }

    // Bulk relation construction: the operator-output hot path whose
    // per-tuple arity assert became debug-only.
    println!("\n## relation_from_tuples (bulk build, release-mode single arity check)");
    let build_sizes: &[usize] = if smoke { &[1_000] } else { &[10_000, 100_000] };
    for &n in build_sizes {
        let tuples: Vec<Tuple> = (0..n as i64).map(|i| Tuple::ints(&[i, i * 7])).collect();
        let m = measure(format!("from_tuples/{n}"), budget, || {
            relmodel::Relation::from_tuples(2, tuples.clone())
        });
        emit("relation_build", "from_tuples", n, &m);
        println!(
            "{:<22}  {:>12}  {:>12}  {:>9}",
            m.label,
            fmt_duration(m.median),
            fmt_duration(m.min),
            m.iters
        );
    }
}
