//! A minimal wall-clock benchmarking harness.
//!
//! The build environment has no network access, so `criterion` cannot be a
//! dependency; this module provides the few pieces the benches need — warmup,
//! repeated measurement, median/min statistics, and aligned table output —
//! with `std` only. Benches using it are ordinary `harness = false` targets
//! run by `cargo bench`.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's measurement: a label plus timing statistics over its runs.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// What was measured (e.g. `naive/800`).
    pub label: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest per-iteration time.
    pub min: Duration,
    /// Number of measured iterations.
    pub iters: usize,
}

impl Measurement {
    /// Median time in nanoseconds (saturating).
    pub fn median_ns(&self) -> u128 {
        self.median.as_nanos()
    }
}

/// Measures `f` by running it repeatedly: a short warmup, then timed
/// iterations until both `min_iters` iterations and `target` total measuring
/// time are reached. Returns median/min statistics.
///
/// The closure's result is passed through [`black_box`] so the optimiser
/// cannot delete the work.
pub fn measure<T>(
    label: impl Into<String>,
    target: Duration,
    mut f: impl FnMut() -> T,
) -> Measurement {
    const WARMUP: usize = 3;
    const MIN_ITERS: usize = 10;
    for _ in 0..WARMUP {
        black_box(f());
    }
    let mut samples: Vec<Duration> = Vec::new();
    let started = Instant::now();
    while samples.len() < MIN_ITERS || started.elapsed() < target {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed());
        if samples.len() >= 10_000 {
            break;
        }
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    Measurement {
        label: label.into(),
        median,
        min,
        iters: samples.len(),
    }
}

/// A named collection of measurements, printed as an aligned table.
#[derive(Debug, Default)]
pub struct Group {
    /// Group name, printed as a heading.
    pub name: String,
    /// The measurements taken so far.
    pub results: Vec<Measurement>,
}

impl Group {
    /// A new, empty group.
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            results: Vec::new(),
        }
    }

    /// Measures `f` under `label` with the default per-bench time budget and
    /// records the result.
    pub fn bench<T>(&mut self, label: impl Into<String>, f: impl FnMut() -> T) -> &Measurement {
        let m = measure(label, Duration::from_millis(300), f);
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// Renders the group as an aligned table.
    pub fn render(&self) -> String {
        let mut out = format!("## {}\n", self.name);
        let width = self
            .results
            .iter()
            .map(|m| m.label.len())
            .max()
            .unwrap_or(0)
            .max(5);
        let _ = writeln!(
            out,
            "{:width$}  {:>12}  {:>12}  {:>7}",
            "bench", "median", "min", "iters"
        );
        for m in &self.results {
            let _ = writeln!(
                out,
                "{:width$}  {:>12}  {:>12}  {:>7}",
                m.label,
                fmt_duration(m.median),
                fmt_duration(m.min),
                m.iters
            );
        }
        out
    }
}

/// Human-readable duration with three significant-ish digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_runs_and_reports() {
        let mut calls = 0usize;
        let m = measure("noop", Duration::from_millis(1), || {
            calls += 1;
            calls
        });
        assert!(m.iters >= 10);
        assert!(calls >= m.iters);
        assert!(m.min <= m.median);
    }

    #[test]
    fn group_renders_aligned_table() {
        let mut g = Group::new("demo");
        g.bench("a", || 1 + 1);
        g.bench("bb", || 2 + 2);
        let s = g.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("median"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(fmt_duration(Duration::from_nanos(5)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).contains("s"));
    }
}
