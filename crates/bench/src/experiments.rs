//! The twelve experiments (E1–E12) of DESIGN.md: one per worked example or
//! formal claim of the paper.

use std::fmt::Write as _;
use std::time::Instant;

use certain_core::certainty::{answer_database, is_lower_bound, CertainAnswers};
use certain_core::homomorphism::{is_homomorphic, HomKind};
use certain_core::knowledge::knowledge_holds_in_all_worlds;
use certain_core::naive_theorem::naive_evaluation_works;
use certain_core::ordering::{less_informative, InfoOrdering};
use ctables::prelude::*;
use datagen::{
    random_database, random_division_query, random_positive_query, QueryGenConfig, RandomDbConfig,
};
use engine::{Engine, EngineOptions, StrategyKind};
use exchange::prelude::*;
use exchange::solutions::exchange_and_answer;
use qparser::parse;
use relalgebra::ast::RaExpr;
use relalgebra::classify::{classify, QueryClass};
use relalgebra::cq::ConjunctiveQuery;
use releval::worlds::WorldOptions;
use relmodel::builder::{difference_example, orders_and_payments_example, tableau_example};
use relmodel::display::render_rows;
use relmodel::{DatabaseBuilder, Relation, Semantics, Tuple, Value};

/// Engine in exhaustive mode: ground truth within budget, CWA by default.
fn exhaustive(db: &relmodel::Database) -> Engine<&relmodel::Database> {
    Engine::new(db).options(EngineOptions::exhaustive())
}

fn fmt_rel(rel: &Relation) -> String {
    if rel.arity() == 0 {
        return if rel.is_empty() {
            "false".into()
        } else {
            "true".into()
        };
    }
    rel.to_string()
}

fn table(rows: Vec<Vec<String>>) -> String {
    render_rows(&rows)
}

/// E1 — §1 unpaid-orders example: SQL's `NOT IN` misses certainly-unpaid
/// orders.
pub fn e01_unpaid_orders() -> String {
    let db = orders_and_payments_example();
    let unpaid = parse("project[#0](Order) minus project[#1](Pay)").expect("query parses");
    let exists_unpaid = unpaid.clone().project(vec![]);
    let engine = exhaustive(&db);
    let sql = engine
        .baseline_3vl(&unpaid)
        .expect("evaluation succeeds")
        .object_answer
        .expect("the 3VL baseline reports its raw answer");
    let certain = engine.plan(&unpaid).expect("ground truth succeeds").answers;
    let certain_bool = engine
        .plan(&exists_unpaid)
        .expect("ground truth succeeds")
        .certain_true()
        == Some(true);
    let mut out = String::from("E1  Unpaid orders (paper §1)\n");
    out += &table(vec![
        vec!["evaluation".into(), "answer".into()],
        vec!["SQL 3VL (NOT IN)".into(), fmt_rel(&sql)],
        vec![
            "certain tuples (ground truth, CWA)".into(),
            fmt_rel(&certain),
        ],
        vec![
            "certainly ∃ an unpaid order?".into(),
            certain_bool.to_string(),
        ],
    ]);
    out += "paper claim: SQL returns the empty set although an unpaid order certainly exists.\n";
    out += &format!(
        "measured   : SQL answer empty = {}, certain-unpaid-exists = {certain_bool}.\n",
        sql.is_empty()
    );
    out
}

/// E2 — §1 `R − S` trap: 3VL empties the difference whenever S holds a null;
/// sweep over |R|.
pub fn e02_difference_trap() -> String {
    let mut out = String::from("E2  R − S with a null in S (paper §1)\n");
    let mut rows = vec![vec![
        "|R|".to_string(),
        "SQL 3VL |R−S|".to_string(),
        "certain |R−S| (CWA)".to_string(),
        "certainly nonempty?".to_string(),
    ]];
    for n in [1usize, 2, 4, 8] {
        let mut b = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"]);
        for i in 0..n {
            b = b.ints("R", &[i as i64]);
        }
        b = b.tuple("S", vec![Value::null(0)]);
        let db = b.build();
        let q = parse("R minus S").expect("query parses");
        let engine = exhaustive(&db);
        let sql = engine
            .baseline_3vl(&q)
            .expect("evaluation succeeds")
            .object_answer
            .expect("the 3VL baseline reports its raw answer");
        let certain = engine.plan(&q).expect("ground truth succeeds").answers;
        let nonempty = engine
            .plan(&q.clone().project(vec![]))
            .expect("ground truth succeeds")
            .certain_true()
            == Some(true);
        rows.push(vec![
            n.to_string(),
            sql.len().to_string(),
            certain.len().to_string(),
            nonempty.to_string(),
        ]);
    }
    out += &table(rows);
    out += "paper claim: SQL says R − S = ∅ for every |R| > |S| = 1, \"fundamentally at odds with the way the world behaves\".\n";
    out += "measured   : SQL column is 0 everywhere; for |R| ≥ 2 the difference is certainly nonempty.\n";
    out
}

/// E3 — §1 tautology example (Grant 1977): `order = 'oid1' OR order <> 'oid1'`.
pub fn e03_tautology() -> String {
    let db = orders_and_payments_example();
    let q = parse("project[#0](select[#1 = 'oid1' or #1 != 'oid1'](Pay))").expect("query parses");
    let engine = exhaustive(&db);
    let sql = engine
        .baseline_3vl(&q)
        .expect("evaluation succeeds")
        .object_answer
        .expect("the 3VL baseline reports its raw answer");
    let certain = engine.plan(&q).expect("ground truth succeeds").answers;
    let naive = engine
        .plan_with(StrategyKind::NaiveExact, &q)
        .expect("evaluation succeeds")
        .answers;
    let mut out = String::from("E3  Tautological selection (paper §1)\n");
    out += &table(vec![
        vec!["evaluation".into(), "answer".into()],
        vec!["SQL 3VL".into(), fmt_rel(&sql)],
        vec!["naïve evaluation, complete part".into(), fmt_rel(&naive)],
        vec![
            "certain tuples (ground truth, CWA)".into(),
            fmt_rel(&certain),
        ],
    ]);
    out += "paper claim: intuitively the answer is pid1, but 3VL returns the empty table.\n";
    out += &format!(
        "measured   : 3VL empty = {}, certain answer = {}.\n",
        sql.is_empty(),
        fmt_rel(&certain)
    );
    out
}

/// E4 — naïve evaluation computes certain answers for UCQs under OWA and CWA
/// (equation (4), Imieliński–Lipski), validated on random databases/queries.
pub fn e04_naive_ucq() -> String {
    let mut out = String::from("E4  Naïve evaluation is correct for UCQs (paper §2, eq. (4))\n");
    let mut rows = vec![vec![
        "semantics".to_string(),
        "random (db, query) pairs".to_string(),
        "agreements with ground truth".to_string(),
    ]];
    for semantics in [Semantics::Owa, Semantics::Cwa] {
        let mut agree = 0usize;
        let mut total = 0usize;
        for seed in 0..20u64 {
            let db = random_database(&RandomDbConfig {
                tuples_per_relation: 4,
                distinct_nulls: 2,
                seed,
                ..Default::default()
            });
            let q = random_positive_query(
                &datagen::random::random_schema(),
                &QueryGenConfig {
                    seed,
                    ..Default::default()
                },
            );
            let report = naive_evaluation_works(&q, &db, semantics, &WorldOptions::default())
                .expect("world enumeration within budget");
            assert_eq!(report.class, QueryClass::Positive);
            total += 1;
            if report.agrees {
                agree += 1;
            }
        }
        rows.push(vec![
            semantics.to_string(),
            total.to_string(),
            agree.to_string(),
        ]);
    }
    out += &table(rows);
    out += "paper claim: for unions of conjunctive queries, naïve evaluation yields certain answers under both OWA and CWA.\n";
    out += "measured   : agreement on every sampled instance.\n";
    out
}

/// E5 — naïve evaluation fails for non-positive queries: `π_A(R − S)`.
pub fn e05_naive_fails_nonpositive() -> String {
    let db = DatabaseBuilder::new()
        .relation("R", &["a", "b"])
        .relation("S", &["a", "b"])
        .tuple("R", vec![Value::int(1), Value::null(0)])
        .tuple("S", vec![Value::int(1), Value::null(1)])
        .build();
    let q = parse("project[#0](R minus S)").expect("query parses");
    let engine = exhaustive(&db);
    let naive = engine
        .plan_with(StrategyKind::NaiveExact, &q)
        .expect("evaluation succeeds")
        .answers;
    let certain = engine.plan(&q).expect("ground truth succeeds").answers;
    // The production-posture engine (no world enumeration allowed) must not
    // repeat the naïve over-report: its sound approximation returns ∅.
    let dispatched = Engine::new(&db).plan(&q).expect("dispatch succeeds");
    let mut out =
        String::from("E5  Naïve evaluation fails beyond the positive fragment (paper §2)\n");
    out += &table(vec![
        vec!["evaluation".into(), "answer".into()],
        vec!["naïve evaluation".into(), fmt_rel(&naive)],
        vec![
            "certain answer (ground truth, CWA)".into(),
            fmt_rel(&certain),
        ],
        vec!["query class".into(), classify(&q).to_string()],
        vec![
            format!(
                "engine default dispatch ({}, {})",
                dispatched.strategy, dispatched.guarantee
            ),
            fmt_rel(&dispatched.answers),
        ],
    ]);
    out += "paper claim: naïve evaluation computes {1} while the certain answer is ∅.\n";
    out += &format!(
        "measured   : naïve = {}, certain = {}; the engine's default dispatch stays sound ({}).\n",
        fmt_rel(&naive),
        fmt_rel(&certain),
        fmt_rel(&dispatched.answers)
    );
    out
}

/// E6 — conditional tables strongly represent `R − S` (paper §2 c-table
/// example), verified by world expansion.
pub fn e06_ctable_strong() -> String {
    let db = difference_example();
    let cdb = ConditionalDatabase::from_database(&db);
    let q = parse("R minus S").expect("query parses");
    let answer = eval_ctable(&q, &cdb).expect("c-table evaluation succeeds");
    let check =
        ctables::verify::check_strong_representation(&q, &cdb, 2).expect("expansion succeeds");
    let mut out =
        String::from("E6  Conditional tables as a strong representation system (paper §2)\n");
    out += "conditional answer table:\n";
    out += &answer.to_string();
    out += &table(vec![
        vec!["quantity".into(), "value".into()],
        vec![
            "possible answers Q([[D]]cwa)".into(),
            check.query_of_worlds.len().to_string(),
        ],
        vec![
            "worlds of the c-table answer".into(),
            check.answer_worlds.len().to_string(),
        ],
        vec![
            "strong representation holds".into(),
            check.holds().to_string(),
        ],
        vec![
            "condition atoms in the answer".into(),
            answer.condition_atoms().to_string(),
        ],
    ]);
    out += "paper claim: the possible answers are {1,2}, {1}, {2}, representable by a c-table whose conditions mention the null.\n";
    out += &format!(
        "measured   : {} distinct possible answers, equality of both sides = {}.\n",
        check.query_of_worlds.len(),
        check.holds()
    );
    out
}

/// E7 — the complexity gap: possible-world enumeration is exponential in the
/// number of nulls while naïve evaluation stays polynomial.
pub fn e07_complexity() -> String {
    let mut out =
        String::from("E7  Complexity: world enumeration vs naïve evaluation (paper §2/§6)\n");
    let mut rows = vec![vec![
        "#nulls".to_string(),
        "worlds enumerated".to_string(),
        "ground truth time (µs)".to_string(),
        "naïve eval time (µs)".to_string(),
        "answers agree".to_string(),
    ]];
    let q = parse("project[#0](select[#1 = #2](product(R, S)))").expect("query parses");
    for nulls in [1usize, 2, 3, 4] {
        let mut b = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b"]);
        for i in 0..4i64 {
            b = b.ints("R", &[i, i + 10]);
        }
        b = b.ints("S", &[10]).ints("S", &[11]);
        for i in 0..nulls {
            b = b.tuple("S", vec![Value::null(i as u64)]);
        }
        let db = b.build();
        let opts = WorldOptions::default();
        let domain = releval::worlds::valuation_domain(&q, &db, &opts);
        let worlds = (domain.len() as u128).pow(nulls as u32);

        let engine = Engine::new(&db).options(EngineOptions::exhaustive().with_world_options(opts));
        let t0 = Instant::now();
        let ground = engine
            .ground_truth(&q)
            .expect("within world budget")
            .answers;
        let t_ground = t0.elapsed().as_micros();

        let t1 = Instant::now();
        let naive = engine
            .plan_with(StrategyKind::NaiveExact, &q)
            .expect("evaluation succeeds")
            .answers;
        let t_naive = t1.elapsed().as_micros();

        rows.push(vec![
            nulls.to_string(),
            worlds.to_string(),
            t_ground.to_string(),
            t_naive.to_string(),
            (ground == naive).to_string(),
        ]);
    }
    out += &table(rows);
    out += "paper claim: certain answers are in AC0 via naïve evaluation for positive queries, while the generic possible-world definition explodes (coNP-hard in general under CWA).\n";
    out += "measured   : world count and ground-truth time grow exponentially with #nulls; naïve evaluation stays flat and agrees on every row.\n";
    out
}

/// E8 — §4 duality: OWA certain answers of Boolean CQs = naïve satisfaction =
/// query containment of the canonical query.
pub fn e08_duality() -> String {
    let db = tableau_example();
    // Q = ∃x,y,z R(x,y) ∧ R(y,z) — "there is a path of length 2". The Boolean
    // (arity-0) projection has no textual form, so build it with the API.
    let q = parse("select[#1 = #2](product(R, R))")
        .expect("query parses")
        .project(vec![]);
    let owa_engine = Engine::new(&db)
        .semantics(Semantics::Owa)
        .options(EngineOptions::exhaustive());
    let naive_sat = !owa_engine
        .plan_with(StrategyKind::NaiveExact, &q)
        .expect("evaluation succeeds")
        .object_answer
        .expect("naive evaluation reports its object answer")
        .is_empty();
    let certain = owa_engine
        .plan(&q)
        .expect("ground truth succeeds")
        .certain_true()
        == Some(true);
    // Containment view: Q_D ⊆ Q where Q_D is the canonical query of D.
    let q_d = ConjunctiveQuery::canonical_query_of(&db);
    let q_cq = relalgebra::ucq::UnionOfCq::from_positive_ra(&q, db.schema())
        .expect("the query is positive")
        .disjuncts
        .remove(0);
    let contained = q_d.contained_in(&q_cq);
    let mut out = String::from("E8  Duality: incomplete databases as queries (paper §4)\n");
    out += &table(vec![
        vec!["quantity".into(), "value".into()],
        vec!["D ⊨ Q (naïve satisfaction)".into(), naive_sat.to_string()],
        vec![
            "certain(Q, D) under OWA (ground truth)".into(),
            certain.to_string(),
        ],
        vec![
            "Q_D ⊆ Q (containment of canonical query)".into(),
            contained.to_string(),
        ],
    ]);
    out += "paper claim: for Boolean CQs under OWA, the three notions coincide.\n";
    out += &format!(
        "measured   : all three equal = {}.\n",
        naive_sat == certain && certain == contained
    );
    out
}

/// E9 — §5.2 orderings: ⪯_owa ⇔ homomorphism, ⪯_cwa ⇔ strong onto
/// homomorphism; worlds are always above their source.
pub fn e09_orderings() -> String {
    let mut out = String::from("E9  Information orderings via homomorphisms (paper §5.2)\n");
    let mut world_above = 0usize;
    let mut world_total = 0usize;
    let mut owa_not_cwa = 0usize;
    for seed in 0..15u64 {
        let db = random_database(&RandomDbConfig {
            tuples_per_relation: 3,
            distinct_nulls: 2,
            seed,
            ..Default::default()
        });
        let domain = relmodel::semantics::adequate_domain(&db, &Default::default(), 2);
        for world in relmodel::semantics::enumerate_cwa_worlds(&db, &domain)
            .into_iter()
            .take(4)
        {
            world_total += 1;
            if less_informative(&db, &world, InfoOrdering::Owa)
                && less_informative(&db, &world, InfoOrdering::Cwa)
            {
                world_above += 1;
            }
            // An OWA-extension of the world is above db for OWA but usually not CWA.
            let mut extended = world.clone();
            extended
                .insert("R", Tuple::ints(&[990, 991]))
                .expect("schema has R(a,b)");
            if is_homomorphic(&db, &extended, HomKind::Any)
                && !is_homomorphic(&db, &extended, HomKind::StrongOnto)
            {
                owa_not_cwa += 1;
            }
        }
    }
    out += &table(vec![
        vec!["check".into(), "count".into()],
        vec![
            "worlds ⪰ source under both orderings".into(),
            format!("{world_above}/{world_total}"),
        ],
        vec![
            "extended worlds above for ⪯_owa but not ⪯_cwa".into(),
            format!("{owa_not_cwa}/{world_total}"),
        ],
    ]);
    out += "paper claim: D ⪯_owa D' iff a homomorphism exists, D ⪯_cwa D' iff a strong onto homomorphism exists; every represented world is above its source.\n";
    out += &format!("measured   : {world_above}/{world_total} worlds above; adding tuples preserves only the OWA ordering in {owa_not_cwa}/{world_total} cases.\n");
    out
}

/// E10 — §6 critique of intersection: the intersection-based certain answer is
/// not a CWA lower bound of the possible answers, the naïve answer is the glb.
pub fn e10_intersection_critique() -> String {
    let db = DatabaseBuilder::new()
        .relation("R", &["a", "b"])
        .ints("R", &[1, 2])
        .tuple("R", vec![Value::int(2), Value::null(0)])
        .build();
    let q = RaExpr::relation("R");
    let ca_cwa = CertainAnswers::new(Semantics::Cwa);
    let answers = ca_cwa
        .answer_objects(&q, &db)
        .expect("world enumeration succeeds");
    let intersection =
        answer_database(&ca_cwa.ground_truth(&q, &db).expect("ground truth succeeds"));
    let naive = answer_database(&ca_cwa.certain_object(&q, &db).expect("evaluation succeeds"));
    let inter_lb_cwa = is_lower_bound(&intersection, &answers, InfoOrdering::Cwa);
    let naive_lb_cwa = is_lower_bound(&naive, &answers, InfoOrdering::Cwa);
    let naive_glb = ca_cwa
        .naive_answer_is_glb(&q, &db)
        .expect("glb check succeeds");
    let ca_owa = CertainAnswers::new(Semantics::Owa);
    let answers_owa = ca_owa
        .answer_objects(&q, &db)
        .expect("world enumeration succeeds");
    let inter_lb_owa = is_lower_bound(&intersection, &answers_owa, InfoOrdering::Owa);
    let knowledge_ok =
        knowledge_holds_in_all_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default())
            .expect("world enumeration succeeds");
    let mut out = String::from("E10  Are intersection-based certain answers certain? (paper §6)\n");
    out += &table(vec![
        vec![
            "candidate answer for Q = R on {(1,2),(2,⊥)}".into(),
            "lower bound?".into(),
        ],
        vec![
            "intersection {(1,2)} under ⪯_owa".into(),
            inter_lb_owa.to_string(),
        ],
        vec![
            "intersection {(1,2)} under ⪯_cwa".into(),
            inter_lb_cwa.to_string(),
        ],
        vec![
            "naïve answer R itself under ⪯_cwa".into(),
            naive_lb_cwa.to_string(),
        ],
        vec![
            "naïve answer is the glb (certainO)".into(),
            naive_glb.to_string(),
        ],
        vec![
            "certainK holds in every possible answer".into(),
            knowledge_ok.to_string(),
        ],
    ]);
    out += "paper claim: under CWA, {(1,2)} is not below any Q(R'), so calling it \"certain\" is mysterious; certainO(Q,R) = R.\n";
    out += &format!(
        "measured   : intersection lower bound under cwa = {inter_lb_cwa}, naïve answer is glb = {naive_glb}.\n"
    );
    out
}

/// E11 — §6.2: CWA-naïve evaluation works for `RA_cwa` (division by a base
/// relation), but not under OWA, and full RA still fails.
pub fn e11_division_cwa() -> String {
    let mut out = String::from("E11  CWA-naïve evaluation for RA_cwa / Pos∀G (paper §6.2)\n");
    let mut rows = vec![vec![
        "random division query seed".to_string(),
        "class".to_string(),
        "CWA agrees".to_string(),
        "OWA(+extra) agrees".to_string(),
    ]];
    let schema = datagen::random::random_schema();
    let mut cwa_all = true;
    for seed in 0..10u64 {
        let db = random_database(&RandomDbConfig {
            tuples_per_relation: 4,
            distinct_nulls: 2,
            seed,
            ..Default::default()
        });
        let q = random_division_query(
            &schema,
            &QueryGenConfig {
                seed,
                ..Default::default()
            },
        );
        let cwa = naive_evaluation_works(&q, &db, Semantics::Cwa, &WorldOptions::default())
            .expect("within budget");
        let owa = naive_evaluation_works(&q, &db, Semantics::Owa, &WorldOptions::with_owa_extra(1))
            .expect("within budget");
        cwa_all &= cwa.agrees;
        rows.push(vec![
            seed.to_string(),
            cwa.class.to_string(),
            cwa.agrees.to_string(),
            owa.agrees.to_string(),
        ]);
    }
    out += &table(rows);
    out += "paper claim: cwa-naïve evaluation works for RA_cwa = Pos∀G; the same queries have no OWA guarantee.\n";
    out += &format!("measured   : CWA agreement on all sampled instances = {cwa_all}; OWA column shows failures where adding tuples shrinks the division.\n");
    out
}

/// E12 — §1 schema-mapping example: the chase creates marked nulls and certain
/// answers over the exchanged data are computed naïvely.
pub fn e12_exchange() -> String {
    let mapping = SchemaMapping::order_to_customer_example();
    let source = DatabaseBuilder::new()
        .relation("Order", &["o_id", "product"])
        .strs("Order", &["oid1", "pr1"])
        .strs("Order", &["oid2", "pr2"])
        .build();
    let chased = chase(&source, &mapping);
    let products = exchange_and_answer(
        &source,
        &mapping,
        &parse("project[#1](Pref)").expect("parses"),
    )
    .expect("exchange succeeds");
    let customers = exchange_and_answer(&source, &mapping, &parse("Cust").expect("parses"))
        .expect("exchange succeeds");
    let mut out = String::from("E12  Incompleteness from data exchange (paper §1)\n");
    out += &format!("mapping: {}", mapping);
    out += "canonical target produced by the chase:\n";
    out += &relmodel::display::render_database(&chased.target);
    out += &table(vec![
        vec!["quantity".into(), "value".into()],
        vec!["triggers fired".into(), chased.triggers_fired.to_string()],
        vec![
            "fresh marked nulls".into(),
            chased.nulls_introduced.to_string(),
        ],
        vec![
            "certain preferred products".into(),
            fmt_rel(&products.certain),
        ],
        vec!["certain customers".into(), fmt_rel(&customers.certain)],
        vec![
            "naïve customer objects (with nulls)".into(),
            fmt_rel(&customers.naive_object),
        ],
    ]);
    out += "paper claim: the mapping generates Cust(⊥), Pref(⊥,pr1), Cust(⊥'), Pref(⊥',pr2) with two distinct marked nulls.\n";
    out += &format!(
        "measured   : {} fresh nulls, products certain = {}.\n",
        chased.nulls_introduced,
        fmt_rel(&products.certain)
    );
    out
}

/// Runs every experiment and concatenates the reports.
pub fn run_all() -> String {
    let experiments: Vec<fn() -> String> = vec![
        e01_unpaid_orders,
        e02_difference_trap,
        e03_tautology,
        e04_naive_ucq,
        e05_naive_fails_nonpositive,
        e06_ctable_strong,
        e07_complexity,
        e08_duality,
        e09_orderings,
        e10_intersection_critique,
        e11_division_cwa,
        e12_exchange,
    ];
    let mut out = String::new();
    for f in experiments {
        let _ = writeln!(out, "{}", f());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_to_e3_report_the_sql_failures() {
        assert!(e01_unpaid_orders().contains("certainly ∃ an unpaid order?"));
        assert!(e02_difference_trap().contains("|R|"));
        assert!(e03_tautology().contains("pid1"));
    }

    #[test]
    fn e4_and_e11_report_full_agreement() {
        let e4 = e04_naive_ucq();
        assert!(e4.contains("20"), "twenty sampled pairs per semantics");
        let e11 = e11_division_cwa();
        assert!(e11.contains("CWA agreement on all sampled instances = true"));
    }

    #[test]
    fn e5_e6_e10_match_paper_claims() {
        assert!(e05_naive_fails_nonpositive().contains("certain = {}"));
        assert!(e06_ctable_strong().contains("equality of both sides = true"));
        let e10 = e10_intersection_critique();
        assert!(e10.contains("naïve answer is glb = true"));
        assert!(e10.contains("intersection lower bound under cwa = false"));
    }

    #[test]
    fn e7_e8_e9_e12_produce_tables() {
        assert!(e07_complexity().contains("worlds enumerated"));
        assert!(e08_duality().contains("all three equal = true"));
        assert!(e09_orderings().contains("worlds ⪰ source"));
        assert!(e12_exchange().contains("fresh marked nulls"));
    }
}
