//! # bench — the experiment harness
//!
//! The paper is a theory keynote with no measured tables or figures; its
//! "results" are worked examples and formal claims. Each function in
//! [`experiments`] regenerates one of them (E1–E12 in DESIGN.md) and returns a
//! textual report stating the paper's claim and what this implementation
//! measures. The binaries in `src/bin/` print individual reports;
//! `all_experiments` prints the full set (EXPERIMENTS.md is its output).
//! Timing benches live in `benches/paper.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use experiments::*;
