//! Experiment E11: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e11_division_cwa());
}
