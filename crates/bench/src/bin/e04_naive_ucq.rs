//! Experiment E4: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e04_naive_ucq());
}
