//! Experiment E1: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e01_unpaid_orders());
}
