//! Experiment E2: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e02_difference_trap());
}
