//! Experiment E8: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e08_duality());
}
