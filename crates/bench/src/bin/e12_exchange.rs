//! Experiment E12: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e12_exchange());
}
