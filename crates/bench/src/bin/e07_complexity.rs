//! Experiment E7: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e07_complexity());
}
