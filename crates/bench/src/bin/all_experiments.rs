//! Runs every experiment (E1-E12) and prints the combined report; the output
//! is recorded in EXPERIMENTS.md.
fn main() {
    print!("{}", bench::run_all());
}
