//! Experiment E9: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e09_orderings());
}
