//! Experiment E6: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e06_ctable_strong());
}
