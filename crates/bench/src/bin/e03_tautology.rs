//! Experiment E3: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e03_tautology());
}
