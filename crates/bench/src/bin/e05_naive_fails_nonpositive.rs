//! Experiment E5: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e05_naive_fails_nonpositive());
}
