//! Experiment E10: see DESIGN.md and the report printed below.
fn main() {
    print!("{}", bench::e10_intersection_critique());
}
