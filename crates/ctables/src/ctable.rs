//! Conditional tuples, tables and databases, with their closed-world
//! possible-world semantics.

use std::collections::BTreeSet;
use std::fmt;

use relmodel::valuation::{domain_with_fresh, ValuationEnumerator};
use relmodel::value::{Constant, NullId};
use relmodel::{Database, Relation, Schema, Tuple};

use crate::condition::Condition;

/// A tuple together with the condition under which it is present.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConditionalTuple {
    /// The tuple (may contain nulls).
    pub tuple: Tuple,
    /// The local condition.
    pub condition: Condition,
}

impl ConditionalTuple {
    /// Creates a conditional tuple.
    pub fn new(tuple: Tuple, condition: Condition) -> Self {
        ConditionalTuple { tuple, condition }
    }

    /// A tuple present unconditionally.
    pub fn always(tuple: Tuple) -> Self {
        ConditionalTuple {
            tuple,
            condition: Condition::True,
        }
    }
}

impl fmt::Display for ConditionalTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}  if  {}", self.tuple, self.condition)
    }
}

/// A conditional table: a list of conditional tuples of the same arity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConditionalTable {
    arity: usize,
    rows: Vec<ConditionalTuple>,
}

impl ConditionalTable {
    /// Creates an empty conditional table of the given arity.
    pub fn new(arity: usize) -> Self {
        ConditionalTable {
            arity,
            rows: Vec::new(),
        }
    }

    /// Builds a conditional table from rows (arity checked).
    pub fn from_rows(arity: usize, rows: Vec<ConditionalTuple>) -> Self {
        for r in &rows {
            assert_eq!(r.tuple.arity(), arity, "conditional tuple arity mismatch");
        }
        ConditionalTable { arity, rows }
    }

    /// Lifts an ordinary (naïve) relation: every tuple gets condition `true`.
    pub fn from_relation(rel: &Relation) -> Self {
        ConditionalTable {
            arity: rel.arity(),
            rows: rel
                .iter()
                .map(|t| ConditionalTuple::always(t.clone()))
                .collect(),
        }
    }

    /// The arity of the table.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The rows of the table.
    pub fn rows(&self) -> &[ConditionalTuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty (no rows at all)?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds a row (arity checked).
    pub fn push(&mut self, row: ConditionalTuple) {
        assert_eq!(
            row.tuple.arity(),
            self.arity,
            "conditional tuple arity mismatch"
        );
        self.rows.push(row);
    }

    /// All nulls mentioned by tuples or conditions.
    pub fn null_ids(&self) -> BTreeSet<NullId> {
        let mut out = BTreeSet::new();
        for r in &self.rows {
            out.extend(r.tuple.null_ids());
            out.extend(r.condition.null_ids());
        }
        out
    }

    /// All constants mentioned by tuples.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.rows.iter().flat_map(|r| r.tuple.constants()).collect()
    }

    /// Simplifies every row condition and drops rows whose condition is
    /// definitely false.
    pub fn simplify(&self) -> ConditionalTable {
        ConditionalTable {
            arity: self.arity,
            rows: self
                .rows
                .iter()
                .filter_map(|r| {
                    let c = r.condition.simplify();
                    if c == Condition::False {
                        None
                    } else {
                        Some(ConditionalTuple::new(r.tuple.clone(), c))
                    }
                })
                .collect(),
        }
    }

    /// The table with `condition` conjoined to every row's local condition —
    /// how [`crate::algebra::eval_ctable`] propagates a database's global
    /// condition into the answer it returns. The common `true` case (every
    /// database lifted from a plain [`Database`]) is a no-op.
    pub fn and_condition(mut self, condition: &Condition) -> ConditionalTable {
        if *condition == Condition::True {
            return self;
        }
        for row in &mut self.rows {
            let local = std::mem::replace(&mut row.condition, Condition::True);
            row.condition = local.and(condition.clone());
        }
        self
    }

    /// The instance of the table in the world described by the valuation:
    /// tuples whose condition holds, with nulls replaced.
    pub fn instantiate(&self, v: &relmodel::Valuation) -> Relation {
        let mut out = Relation::new(self.arity);
        for r in &self.rows {
            if r.condition.eval(v) {
                out.insert(r.tuple.apply(v));
            }
        }
        out
    }

    /// Total number of condition atoms across all rows (a measure of how
    /// unwieldy the representation is).
    pub fn condition_atoms(&self) -> usize {
        self.rows.iter().map(|r| r.condition.atom_count()).sum()
    }
}

impl fmt::Display for ConditionalTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rows {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// A conditional database: one conditional table per relation of the schema,
/// plus a global condition (the paper's example uses a global condition to
/// encode a disjunction `⊥ = 0 ∨ ⊥ = 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionalDatabase {
    schema: Schema,
    tables: std::collections::BTreeMap<String, ConditionalTable>,
    /// Global condition: worlds are generated only by valuations satisfying it.
    pub global: Condition,
}

impl ConditionalDatabase {
    /// Creates an empty conditional database over a schema.
    pub fn new(schema: Schema) -> Self {
        let tables = schema
            .iter()
            .map(|rs| (rs.name.clone(), ConditionalTable::new(rs.arity())))
            .collect();
        ConditionalDatabase {
            schema,
            tables,
            global: Condition::True,
        }
    }

    /// Lifts an ordinary (naïve) database: every tuple gets condition `true`.
    pub fn from_database(db: &Database) -> Self {
        let mut out = ConditionalDatabase::new(db.schema().clone());
        for (name, rel) in db.iter() {
            out.tables
                .insert(name.to_owned(), ConditionalTable::from_relation(rel));
        }
        out
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Looks up a table by relation name.
    pub fn table(&self, name: &str) -> Option<&ConditionalTable> {
        self.tables.get(name)
    }

    /// Mutable access to a table by relation name.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut ConditionalTable> {
        self.tables.get_mut(name)
    }

    /// Replaces a table wholesale.
    pub fn set_table(&mut self, name: &str, table: ConditionalTable) {
        self.tables.insert(name.to_owned(), table);
    }

    /// Sets the global condition.
    pub fn with_global(mut self, condition: Condition) -> Self {
        self.global = condition;
        self
    }

    /// Iterates over `(name, table)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ConditionalTable)> {
        self.tables.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// All nulls mentioned anywhere (tuples, local conditions, global
    /// condition).
    pub fn null_ids(&self) -> BTreeSet<NullId> {
        let mut out: BTreeSet<NullId> = self
            .tables
            .values()
            .flat_map(ConditionalTable::null_ids)
            .collect();
        out.extend(self.global.null_ids());
        out
    }

    /// All constants mentioned by tuples.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.tables
            .values()
            .flat_map(ConditionalTable::constants)
            .collect()
    }

    /// The null census of the conditional database, feeding the static
    /// analyzer ([`relalgebra::analysis`]): a column is nullable when some
    /// row carries a null in it, and null occurrences in *row conditions*
    /// count toward the relation's uncertainty too — a table whose tuples
    /// are complete but whose membership depends on a null is not
    /// world-invariant.
    pub fn null_census(&self) -> relalgebra::analysis::NullCensus {
        let mut builder = relalgebra::analysis::NullCensus::builder();
        for (name, table) in &self.tables {
            let mut nullable = vec![false; table.arity()];
            let mut positions = 0usize;
            for row in table.rows() {
                for (i, v) in row.tuple.values().iter().enumerate() {
                    if v.is_null() {
                        nullable[i] = true;
                        positions += 1;
                    }
                }
                positions += row.condition.null_ids().len();
            }
            builder = builder.relation(
                name,
                nullable,
                table.null_ids().into_iter().map(|id| id.index()),
                positions,
            );
        }
        builder.build()
    }

    /// The world described by a valuation satisfying the global condition, or
    /// `None` if the valuation violates it.
    pub fn instantiate(&self, v: &relmodel::Valuation) -> Option<Database> {
        if !self.global.eval(v) {
            return None;
        }
        let mut db = Database::new(self.schema.clone());
        for (name, table) in &self.tables {
            db.set_relation(name, table.instantiate(v))
                .expect("table arities match the schema");
        }
        Some(db)
    }

    /// Enumerates the closed-world possible worlds over the given constant
    /// domain, deduplicated **structurally** (by `Ord`/`Eq`, never by display
    /// strings — `Constant::Str("1")` and `Constant::Int(1)` render
    /// identically, and a stringly key would silently merge distinct worlds,
    /// the same collision PR 2 fixed in `relmodel`'s world iterator).
    pub fn worlds(&self, domain: &[Constant]) -> Vec<Database> {
        let mut seen: BTreeSet<Database> = BTreeSet::new();
        for v in ValuationEnumerator::new(self.null_ids(), domain.to_vec()) {
            if let Some(world) = self.instantiate(&v) {
                seen.insert(world);
            }
        }
        seen.into_iter().collect()
    }

    /// A valuation domain adequate for comparing this conditional database
    /// with a query answer: its constants, the supplied extras, and `fresh`
    /// fresh constants.
    pub fn adequate_domain(&self, extra: &BTreeSet<Constant>, fresh: usize) -> Vec<Constant> {
        let mut base = self.constants();
        base.extend(extra.iter().cloned());
        domain_with_fresh(&base, fresh)
    }

    /// Simplifies all conditions.
    pub fn simplify(&self) -> ConditionalDatabase {
        ConditionalDatabase {
            schema: self.schema.clone(),
            tables: self
                .tables
                .iter()
                .map(|(n, t)| (n.clone(), t.simplify()))
                .collect(),
            global: self.global.simplify(),
        }
    }
}

impl fmt::Display for ConditionalDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, table) in self.iter() {
            writeln!(f, "{name}:")?;
            write!(f, "{table}")?;
        }
        if self.global != Condition::True {
            writeln!(f, "global: {}", self.global)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::value::Value;
    use relmodel::{DatabaseBuilder, Valuation};

    /// The paper's §2 example: a table that contains 1 if ⊥ = 1 and 0 if
    /// ⊥ = 0, under the global condition (⊥ = 0) ∨ (⊥ = 1). Its semantics is
    /// {{0}, {1}} — a disjunction encoded as a c-table.
    fn disjunction_ctable() -> ConditionalDatabase {
        let schema = Schema::builder().relation("C", &["a"]).build();
        let mut cdb = ConditionalDatabase::new(schema);
        let mut table = ConditionalTable::new(1);
        table.push(ConditionalTuple::new(
            Tuple::ints(&[1]),
            Condition::eq(Value::null(0), Value::int(1)),
        ));
        table.push(ConditionalTuple::new(
            Tuple::ints(&[0]),
            Condition::eq(Value::null(0), Value::int(0)),
        ));
        cdb.set_table("C", table);
        cdb.with_global(
            Condition::eq(Value::null(0), Value::int(0))
                .or(Condition::eq(Value::null(0), Value::int(1))),
        )
    }

    #[test]
    fn null_census_counts_values_and_conditions() {
        // The disjunction c-table has complete tuples, but membership
        // depends on ⊥0: the census must not call it null-free.
        let cdb = disjunction_ctable();
        let census = cdb.null_census();
        assert!(!census.relation_null_free("C"));
        assert!(!census.column_nullable("C", 0), "values are complete");
        assert_eq!(census.distinct_nulls(), 1);

        // A lifted complete database is null-free everywhere; a lifted
        // null-bearing one reports the right column.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[1, 2])
            .build();
        let census = ConditionalDatabase::from_database(&db).null_census();
        assert!(census.database_null_free());
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(3)])
            .build();
        let census = ConditionalDatabase::from_database(&db).null_census();
        assert!(!census.relation_null_free("R"));
        assert!(!census.column_nullable("R", 0));
        assert!(census.column_nullable("R", 1));
    }

    #[test]
    fn disjunction_example_has_two_worlds() {
        let cdb = disjunction_ctable();
        let domain = cdb.adequate_domain(&BTreeSet::new(), 2);
        let worlds = cdb.worlds(&domain);
        assert_eq!(worlds.len(), 2);
        let sizes: BTreeSet<Vec<String>> = worlds
            .iter()
            .map(|w| {
                w.relation("C")
                    .unwrap()
                    .iter()
                    .map(|t| t.to_string())
                    .collect()
            })
            .collect();
        assert!(sizes.contains(&vec!["(0)".to_string()]));
        assert!(sizes.contains(&vec!["(1)".to_string()]));
    }

    #[test]
    fn instantiate_respects_global_condition() {
        let cdb = disjunction_ctable();
        let bad = Valuation::from_pairs(vec![(NullId(0), Constant::Int(7))]);
        assert!(cdb.instantiate(&bad).is_none());
        let good = Valuation::from_pairs(vec![(NullId(0), Constant::Int(1))]);
        let world = cdb.instantiate(&good).unwrap();
        assert_eq!(world.relation("C").unwrap().len(), 1);
    }

    #[test]
    fn lifting_a_naive_database() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .ints("R", &[1])
            .tuple("R", vec![Value::null(0)])
            .build();
        let cdb = ConditionalDatabase::from_database(&db);
        assert_eq!(cdb.table("R").unwrap().len(), 2);
        assert!(cdb
            .table("R")
            .unwrap()
            .rows()
            .iter()
            .all(|r| r.condition == Condition::True));
        // Its worlds coincide with the naïve database's CWA worlds.
        let domain = cdb.adequate_domain(&BTreeSet::new(), 2);
        let worlds = cdb.worlds(&domain);
        let expected = relmodel::semantics::enumerate_cwa_worlds(&db, &domain);
        assert_eq!(worlds.len(), expected.len());
    }

    #[test]
    fn world_dedup_is_structural_not_stringly() {
        // ⊥0 valued to Int(1) and to Str("1") yields two *distinct* worlds
        // that display identically; a stringly dedup key merges them.
        let schema = Schema::builder().relation("R", &["a"]).build();
        let mut cdb = ConditionalDatabase::new(schema);
        let mut table = ConditionalTable::new(1);
        table.push(ConditionalTuple::always(Tuple::new(vec![Value::null(0)])));
        cdb.set_table("R", table);
        let domain = vec![Constant::Int(1), Constant::Str("1".into())];
        let worlds = cdb.worlds(&domain);
        assert_eq!(
            worlds.len(),
            2,
            "Int(1) and Str(\"1\") must stay distinct worlds"
        );
    }

    #[test]
    fn simplify_drops_false_rows() {
        let mut table = ConditionalTable::new(1);
        table.push(ConditionalTuple::new(
            Tuple::ints(&[1]),
            Condition::eq(Value::int(1), Value::int(2)),
        ));
        table.push(ConditionalTuple::always(Tuple::ints(&[2])));
        let simplified = table.simplify();
        assert_eq!(simplified.len(), 1);
        assert_eq!(simplified.rows()[0].tuple, Tuple::ints(&[2]));
    }

    #[test]
    fn null_and_constant_collection() {
        let cdb = disjunction_ctable();
        assert_eq!(cdb.null_ids().len(), 1);
        assert!(cdb.constants().contains(&Constant::Int(0)));
        assert!(cdb.constants().contains(&Constant::Int(1)));
        assert_eq!(cdb.table("C").unwrap().condition_atoms(), 2);
    }

    #[test]
    fn display_mentions_conditions() {
        let cdb = disjunction_ctable();
        let s = cdb.to_string();
        assert!(s.contains("if"));
        assert!(s.contains("global:"));
    }
}
