//! The certainty solver: validity, satisfiability and entailment of
//! [`Condition`]s, decided **without enumerating any valuation domain**.
//!
//! Conditions are Boolean combinations of (in)equalities between marked
//! nulls and constants, interpreted over the infinite domain of all
//! constants. For that theory the classical decision procedure is complete:
//! normalize to negation normal form, distribute to DNF (with an explicit
//! clause budget — the only way the solver ever punts), and check each
//! conjunctive clause for consistency by congruence closure (union–find).
//! A clause is satisfiable iff merging its equalities never merges two
//! distinct constants and no disequality connects two values of the same
//! class: over an infinite domain nothing else can go wrong, because every
//! free equivalence class can be assigned its own fresh constant.
//!
//! This is what makes symbolic c-table evaluation polynomial-per-tuple
//! where possible-world enumeration is exponential in the number of nulls:
//! [`crate::algebra`] produces the conditions, and a certainty question
//! ("is this tuple in the answer of *every* world?") becomes one validity
//! query instead of `|domain|^|nulls|` world evaluations.
//!
//! The possible-world oracle realizes the same infinite-domain semantics
//! with *adequate* finite domains (the mentioned constants plus enough
//! fresh ones), so solver verdicts must agree with brute-force valuation
//! enumeration — [`valid_by_enumeration`] and [`satisfiable_by_enumeration`]
//! are the expansion-based oracles the property tests check against, in the
//! same spirit as [`crate::verify`].

use std::collections::BTreeMap;
use std::fmt;

use relmodel::valuation::{domain_with_fresh, ValuationEnumerator};
use relmodel::value::Value;

use super::Condition;

/// Budgets governing how much work the solver may do before punting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverOptions {
    /// Maximum number of DNF clauses a single query may produce. DNF
    /// distribution is the one exponential step of the procedure (driven by
    /// query *size*, not by the number of nulls), so it carries the budget.
    pub max_dnf_clauses: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            max_dnf_clauses: 16_384,
        }
    }
}

/// Why the solver declined to answer. A punt is not a wrong answer — it is
/// the explicit signal for callers to fall back to world enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverPunt {
    /// DNF distribution exceeded [`SolverOptions::max_dnf_clauses`].
    ClauseBudgetExceeded {
        /// Clauses produced when the budget fired.
        clauses: usize,
        /// The configured maximum.
        budget: usize,
    },
}

impl fmt::Display for SolverPunt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverPunt::ClauseBudgetExceeded { clauses, budget } => write!(
                f,
                "DNF conversion produced {clauses} clauses, exceeding the budget of {budget}"
            ),
        }
    }
}

/// Work counters for one solver, reported by the symbolic strategy as the
/// honest "units evaluated" figure to compare against worlds visited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Validity / satisfiability / entailment questions asked.
    pub calls: usize,
    /// Questions the structural simplifier resolved outright (to a constant
    /// `true`/`false`), without building any DNF.
    pub simplification_wins: usize,
    /// Largest DNF (in clauses) any single question required.
    pub peak_dnf_clauses: usize,
}

/// A decision procedure for conditions, carrying its budget and counters.
#[derive(Debug, Clone, Default)]
pub struct CertaintySolver {
    options: SolverOptions,
    stats: SolverStats,
}

/// One DNF literal: an equality (`eq = true`) or disequality between two
/// values (each a constant or a null).
#[derive(Debug, Clone)]
struct Literal {
    eq: bool,
    lhs: Value,
    rhs: Value,
}

/// A conjunctive clause; the empty clause is `true`.
type Clause = Vec<Literal>;

impl CertaintySolver {
    /// A solver with the given budget.
    pub fn new(options: SolverOptions) -> Self {
        CertaintySolver {
            options,
            stats: SolverStats::default(),
        }
    }

    /// The work counters accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Is the condition true under **every** valuation of its nulls?
    pub fn is_valid(&mut self, condition: &Condition) -> Result<bool, SolverPunt> {
        self.stats.calls += 1;
        match condition.simplify() {
            Condition::True => {
                self.stats.simplification_wins += 1;
                Ok(true)
            }
            Condition::False => {
                self.stats.simplification_wins += 1;
                Ok(false)
            }
            other => Ok(!self.satisfiable_core(other.negate())?),
        }
    }

    /// Is the condition true under **some** valuation of its nulls?
    pub fn is_satisfiable(&mut self, condition: &Condition) -> Result<bool, SolverPunt> {
        self.stats.calls += 1;
        match condition.simplify() {
            Condition::True => {
                self.stats.simplification_wins += 1;
                Ok(true)
            }
            Condition::False => {
                self.stats.simplification_wins += 1;
                Ok(false)
            }
            other => self.satisfiable_core(other),
        }
    }

    /// Does every valuation satisfying `premise` satisfy `conclusion`?
    /// (With `premise = true` this is [`CertaintySolver::is_valid`] of the
    /// conclusion — the form certainty extraction needs when a conditional
    /// database carries a global condition.)
    pub fn entails(
        &mut self,
        premise: &Condition,
        conclusion: &Condition,
    ) -> Result<bool, SolverPunt> {
        self.stats.calls += 1;
        let question = premise.clone().and(conclusion.clone().negate());
        match question.simplify() {
            Condition::False => {
                self.stats.simplification_wins += 1;
                Ok(true)
            }
            Condition::True => {
                self.stats.simplification_wins += 1;
                Ok(false)
            }
            other => Ok(!self.satisfiable_core(other)?),
        }
    }

    /// Satisfiability of an already-simplified, non-constant condition.
    fn satisfiable_core(&mut self, condition: Condition) -> Result<bool, SolverPunt> {
        let clauses = self.dnf(&nnf(condition))?;
        Ok(clauses.iter().any(|c| clause_satisfiable(c)))
    }

    fn check_budget(&self, clauses: usize) -> Result<(), SolverPunt> {
        if clauses > self.options.max_dnf_clauses {
            return Err(SolverPunt::ClauseBudgetExceeded {
                clauses,
                budget: self.options.max_dnf_clauses,
            });
        }
        Ok(())
    }

    /// DNF of a negation-normal-form condition, under the clause budget.
    fn dnf(&mut self, condition: &Condition) -> Result<Vec<Clause>, SolverPunt> {
        let out = match condition {
            Condition::True => vec![Vec::new()],
            Condition::False => Vec::new(),
            Condition::Eq(a, b) => vec![vec![Literal {
                eq: true,
                lhs: a.clone(),
                rhs: b.clone(),
            }]],
            Condition::Neq(a, b) => vec![vec![Literal {
                eq: false,
                lhs: a.clone(),
                rhs: b.clone(),
            }]],
            Condition::Or(cs) => {
                let mut clauses = Vec::new();
                for c in cs {
                    clauses.extend(self.dnf(c)?);
                    self.check_budget(clauses.len())?;
                }
                clauses
            }
            Condition::And(cs) => {
                let mut acc: Vec<Clause> = vec![Vec::new()];
                for c in cs {
                    let sub = self.dnf(c)?;
                    let mut next = Vec::new();
                    for a in &acc {
                        for s in &sub {
                            let mut merged = a.clone();
                            merged.extend(s.iter().cloned());
                            next.push(merged);
                            self.check_budget(next.len())?;
                        }
                    }
                    acc = next;
                }
                acc
            }
            Condition::Not(_) => unreachable!("negation normal form has no Not nodes"),
        };
        self.stats.peak_dnf_clauses = self.stats.peak_dnf_clauses.max(out.len());
        Ok(out)
    }
}

/// Negation normal form: pushes every `Not` down to the atoms (where it
/// flips `Eq`/`Neq`), leaving only `And`/`Or` combinations of literals.
fn nnf(condition: Condition) -> Condition {
    match condition {
        Condition::Not(inner) => nnf_negated(*inner),
        Condition::And(cs) => Condition::And(cs.into_iter().map(nnf).collect()),
        Condition::Or(cs) => Condition::Or(cs.into_iter().map(nnf).collect()),
        atom => atom,
    }
}

fn nnf_negated(condition: Condition) -> Condition {
    match condition {
        Condition::True => Condition::False,
        Condition::False => Condition::True,
        Condition::Eq(a, b) => Condition::Neq(a, b),
        Condition::Neq(a, b) => Condition::Eq(a, b),
        Condition::And(cs) => Condition::Or(cs.into_iter().map(nnf_negated).collect()),
        Condition::Or(cs) => Condition::And(cs.into_iter().map(nnf_negated).collect()),
        Condition::Not(inner) => nnf(*inner),
    }
}

/// Congruence closure over one conjunctive clause: union the equalities,
/// then look for a clash — two **distinct constants** in one class (this is
/// where `Int(1)` and `Str("1")` must stay apart), or a disequality whose
/// two sides ended up in the same class. Consistent clauses are satisfiable
/// over the infinite domain: assign every constant-carrying class its
/// constant and every free class its own fresh constant.
fn clause_satisfiable(clause: &[Literal]) -> bool {
    let mut index: BTreeMap<&Value, usize> = BTreeMap::new();
    let mut parent: Vec<usize> = Vec::new();

    fn term_id<'a>(
        value: &'a Value,
        index: &mut BTreeMap<&'a Value, usize>,
        parent: &mut Vec<usize>,
    ) -> usize {
        if let Some(&i) = index.get(value) {
            return i;
        }
        let i = parent.len();
        parent.push(i);
        index.insert(value, i);
        i
    }

    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]]; // path halving
            i = parent[i];
        }
        i
    }

    // Union the equalities.
    for lit in clause.iter().filter(|l| l.eq) {
        let a = term_id(&lit.lhs, &mut index, &mut parent);
        let b = term_id(&lit.rhs, &mut index, &mut parent);
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    // Register the terms of disequalities too (they may be absent above).
    for lit in clause.iter().filter(|l| !l.eq) {
        term_id(&lit.lhs, &mut index, &mut parent);
        term_id(&lit.rhs, &mut index, &mut parent);
    }
    // Two distinct constants merged into one class?
    let mut class_constant: BTreeMap<usize, &Value> = BTreeMap::new();
    for (value, &i) in &index {
        if value.is_const() {
            let root = find(&mut parent, i);
            match class_constant.get(&root) {
                Some(&prev) if prev != *value => return false,
                _ => {
                    class_constant.insert(root, value);
                }
            }
        }
    }
    // A disequality inside one class?
    for lit in clause.iter().filter(|l| !l.eq) {
        let a = index[&lit.lhs];
        let b = index[&lit.rhs];
        if find(&mut parent, a) == find(&mut parent, b) {
            return false;
        }
    }
    true
}

/// Brute-force validity over the condition's *adequate* finite domain — its
/// constants plus one fresh constant per null plus one, the same domain
/// shape [`crate::verify`] and the possible-world oracle use. This is the
/// expansion-based test oracle for [`CertaintySolver::is_valid`]:
/// exponential in the number of nulls, which is exactly the cost the solver
/// exists to avoid.
pub fn valid_by_enumeration(condition: &Condition) -> bool {
    adequate_enumerator(condition).all(|v| condition.eval(&v))
}

/// Brute-force satisfiability over the adequate finite domain — the oracle
/// for [`CertaintySolver::is_satisfiable`].
pub fn satisfiable_by_enumeration(condition: &Condition) -> bool {
    adequate_enumerator(condition).any(|v| condition.eval(&v))
}

fn adequate_enumerator(condition: &Condition) -> ValuationEnumerator {
    let nulls = condition.null_ids();
    let domain = domain_with_fresh(&condition.constants(), nulls.len() + 1);
    ValuationEnumerator::new(nulls, domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::value::Value;

    fn solver() -> CertaintySolver {
        CertaintySolver::new(SolverOptions::default())
    }

    #[test]
    fn tautologies_and_contradictions() {
        let mut s = solver();
        // ⊥0 = 1 ∨ ⊥0 ≠ 1 is valid; ⊥0 = 1 ∧ ⊥0 ≠ 1 is unsatisfiable.
        let taut = Condition::eq(Value::null(0), Value::int(1))
            .or(Condition::neq(Value::null(0), Value::int(1)));
        assert!(s.is_valid(&taut).unwrap());
        let contra = Condition::eq(Value::null(0), Value::int(1))
            .and(Condition::neq(Value::null(0), Value::int(1)));
        assert!(!s.is_satisfiable(&contra).unwrap());
        // A lone atom is satisfiable but not valid.
        let atom = Condition::eq(Value::null(0), Value::int(1));
        assert!(s.is_satisfiable(&atom).unwrap());
        assert!(!s.is_valid(&atom).unwrap());
    }

    #[test]
    fn congruence_closure_is_transitive() {
        let mut s = solver();
        // ⊥0 = ⊥1 ∧ ⊥1 = ⊥2 ∧ ⊥0 ≠ ⊥2 is unsatisfiable only through
        // transitivity — no single atom is contradictory.
        let chain = Condition::eq(Value::null(0), Value::null(1))
            .and(Condition::eq(Value::null(1), Value::null(2)))
            .and(Condition::neq(Value::null(0), Value::null(2)));
        assert!(!s.is_satisfiable(&chain).unwrap());
        // ... and forcing two constants through a null chain clashes.
        let clash = Condition::eq(Value::null(0), Value::int(1))
            .and(Condition::eq(Value::null(0), Value::null(1)))
            .and(Condition::eq(Value::null(1), Value::int(2)));
        assert!(!s.is_satisfiable(&clash).unwrap());
    }

    #[test]
    fn int_and_str_constants_are_distinct() {
        // The PR 2 regression class: Int(1) and Str("1") display identically
        // but denote different constants.
        let mut s = solver();
        let cross = Condition::eq(Value::int(1), Value::str("1"));
        assert!(!s.is_satisfiable(&cross).unwrap());
        assert!(s.is_valid(&cross.clone().negate()).unwrap());
        let via_null = Condition::eq(Value::null(0), Value::int(1))
            .and(Condition::eq(Value::null(0), Value::str("1")));
        assert!(!s.is_satisfiable(&via_null).unwrap());
        assert!(!satisfiable_by_enumeration(&via_null));
    }

    #[test]
    fn infinite_domain_semantics() {
        let mut s = solver();
        // ⊥0 ≠ 1 ∧ ⊥0 ≠ 2 ∧ ⊥0 ≠ ⊥1: satisfiable, a fresh constant exists.
        let c = Condition::neq(Value::null(0), Value::int(1))
            .and(Condition::neq(Value::null(0), Value::int(2)))
            .and(Condition::neq(Value::null(0), Value::null(1)));
        assert!(s.is_satisfiable(&c).unwrap());
        assert!(satisfiable_by_enumeration(&c));
        // "⊥0 is 1 or 2" is NOT valid: the domain is not {1, 2}.
        let closed = Condition::eq(Value::null(0), Value::int(1))
            .or(Condition::eq(Value::null(0), Value::int(2)));
        assert!(!s.is_valid(&closed).unwrap());
        assert!(!valid_by_enumeration(&closed));
    }

    #[test]
    fn entailment() {
        let mut s = solver();
        let premise = Condition::eq(Value::null(0), Value::int(1));
        let conclusion = Condition::neq(Value::null(0), Value::int(2));
        assert!(s.entails(&premise, &conclusion).unwrap());
        assert!(!s.entails(&conclusion, &premise).unwrap());
        // true ⊨ c reduces to validity of c.
        let taut = premise
            .clone()
            .or(Condition::neq(Value::null(0), Value::int(1)));
        assert!(s.entails(&Condition::True, &taut).unwrap());
    }

    #[test]
    fn negation_of_nested_conditions() {
        let mut s = solver();
        // ¬(⊥0 = 1 ∧ (⊥1 = 2 ∨ ⊥0 ≠ ⊥1)) — De Morgan through NNF.
        let inner = Condition::eq(Value::null(0), Value::int(1)).and(
            Condition::eq(Value::null(1), Value::int(2))
                .or(Condition::neq(Value::null(0), Value::null(1))),
        );
        let neg = Condition::Not(Box::new(inner.clone()));
        // c ∨ ¬c valid, c ∧ ¬c unsat — for a non-trivial c.
        assert!(s.is_valid(&inner.clone().or(neg.clone())).unwrap());
        assert!(!s.is_satisfiable(&inner.and(neg)).unwrap());
    }

    #[test]
    fn budget_punts_are_explicit() {
        let mut s = CertaintySolver::new(SolverOptions { max_dnf_clauses: 4 });
        // (a₀ ∨ b₀) ∧ (a₁ ∨ b₁) ∧ (a₂ ∨ b₂) distributes to 8 > 4 clauses.
        let mut c = Condition::True;
        for i in 0..3u64 {
            c = c.and(
                Condition::eq(Value::null(i), Value::int(0))
                    .or(Condition::eq(Value::null(i), Value::int(1))),
            );
        }
        match s.is_satisfiable(&c) {
            Err(SolverPunt::ClauseBudgetExceeded { clauses, budget }) => {
                assert_eq!(budget, 4);
                assert!(clauses > 4);
            }
            other => panic!("expected a budget punt, got {other:?}"),
        }
        // A generous budget answers the same question.
        let mut s = solver();
        assert!(s.is_satisfiable(&c).unwrap());
        assert!(s.stats().peak_dnf_clauses >= 8);
    }

    #[test]
    fn stats_count_calls_and_wins() {
        let mut s = solver();
        assert!(s.is_valid(&Condition::True).unwrap());
        assert!(!s.is_satisfiable(&Condition::False).unwrap());
        // Ground atoms are simplification wins too.
        assert!(s
            .is_valid(&Condition::eq(Value::int(1), Value::int(1)))
            .unwrap());
        let real = Condition::eq(Value::null(0), Value::int(1));
        assert!(s.is_satisfiable(&real).unwrap());
        let stats = s.stats();
        assert_eq!(stats.calls, 4);
        assert_eq!(stats.simplification_wins, 3);
    }

    #[test]
    fn punt_displays() {
        let p = SolverPunt::ClauseBudgetExceeded {
            clauses: 10,
            budget: 4,
        };
        assert!(p.to_string().contains("budget"));
    }
}
