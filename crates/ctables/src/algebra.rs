//! The Imieliński–Lipski algebra: evaluating full relational algebra directly
//! on conditional databases, producing a conditional table that represents
//! *all* possible answers (the strong representation property).

use relalgebra::ast::RaExpr;
use relalgebra::predicate::{Operand, Predicate};
use relalgebra::typecheck::{output_arity, TypeError};
use relmodel::value::Value;
use relmodel::Tuple;

use crate::condition::Condition;
use crate::ctable::{ConditionalDatabase, ConditionalTable, ConditionalTuple};

/// Evaluates a relational algebra expression over a conditional database,
/// returning a conditional table `A` with `[[A]]_cwa = Q([[D]]_cwa)`.
///
/// The database's global condition is **propagated** into every answer
/// row's local condition, so the answer table is self-contained: rows never
/// survive instantiation under a valuation the database itself rules out.
pub fn eval_ctable(
    expr: &RaExpr,
    cdb: &ConditionalDatabase,
) -> Result<ConditionalTable, TypeError> {
    output_arity(expr, cdb.schema())?;
    Ok(eval_ctable_unchecked(expr, cdb))
}

/// [`eval_ctable`] for an expression that is already known to typecheck
/// against the database's schema (what `relalgebra::plan::PlannedQuery`
/// guarantees): skips the type checker, so a dispatching engine never pays
/// for it twice.
pub fn eval_ctable_unchecked(expr: &RaExpr, cdb: &ConditionalDatabase) -> ConditionalTable {
    eval_unchecked(expr, cdb)
        .and_condition(&cdb.global)
        .simplify()
}

fn eval_unchecked(expr: &RaExpr, cdb: &ConditionalDatabase) -> ConditionalTable {
    match expr {
        RaExpr::Relation(name) => cdb
            .table(name)
            .cloned()
            .expect("type checker guarantees the relation exists"),
        RaExpr::Values(rel) => ConditionalTable::from_relation(rel),
        RaExpr::Delta => {
            let mut out = ConditionalTable::new(2);
            let mut seen = std::collections::BTreeSet::new();
            for (_, table) in cdb.iter() {
                for row in table.rows() {
                    for v in row.tuple.values() {
                        let key = (v.clone(), row.condition.clone());
                        if seen.insert(key) {
                            out.push(ConditionalTuple::new(
                                Tuple::new(vec![v.clone(), v.clone()]),
                                row.condition.clone(),
                            ));
                        }
                    }
                }
            }
            out
        }
        RaExpr::Select(e, p) => {
            let input = eval_unchecked(e, cdb);
            let mut out = ConditionalTable::new(input.arity());
            for row in input.rows() {
                let cond = predicate_condition(p, &row.tuple);
                let combined = row.condition.clone().and(cond);
                if combined != Condition::False {
                    out.push(ConditionalTuple::new(row.tuple.clone(), combined));
                }
            }
            out
        }
        RaExpr::Project(e, cols) => {
            let input = eval_unchecked(e, cdb);
            let mut out = ConditionalTable::new(cols.len());
            for row in input.rows() {
                out.push(ConditionalTuple::new(
                    row.tuple.project(cols),
                    row.condition.clone(),
                ));
            }
            out
        }
        RaExpr::Product(a, b) => {
            let left = eval_unchecked(a, cdb);
            let right = eval_unchecked(b, cdb);
            let mut out = ConditionalTable::new(left.arity() + right.arity());
            for l in left.rows() {
                for r in right.rows() {
                    out.push(ConditionalTuple::new(
                        l.tuple.concat(&r.tuple),
                        l.condition.clone().and(r.condition.clone()),
                    ));
                }
            }
            out
        }
        RaExpr::Union(a, b) => {
            let left = eval_unchecked(a, cdb);
            let right = eval_unchecked(b, cdb);
            let mut out = ConditionalTable::new(left.arity());
            for r in left.rows().iter().chain(right.rows()) {
                out.push(r.clone());
            }
            out
        }
        RaExpr::Difference(a, b) => {
            let left = eval_unchecked(a, cdb);
            let right = eval_unchecked(b, cdb);
            let mut out = ConditionalTable::new(left.arity());
            for l in left.rows() {
                // l is in the answer iff it is present and no right-hand row is
                // present *and equal to it*.
                let mut cond = l.condition.clone();
                for r in right.rows() {
                    let clash = r
                        .condition
                        .clone()
                        .and(Condition::tuples_equal(&l.tuple, &r.tuple));
                    cond = cond.and(clash.negate());
                }
                out.push(ConditionalTuple::new(l.tuple.clone(), cond));
            }
            out
        }
        RaExpr::Intersection(a, b) => {
            let left = eval_unchecked(a, cdb);
            let right = eval_unchecked(b, cdb);
            let mut out = ConditionalTable::new(left.arity());
            for l in left.rows() {
                let mut membership = Condition::False;
                for r in right.rows() {
                    membership = membership.or(r
                        .condition
                        .clone()
                        .and(Condition::tuples_equal(&l.tuple, &r.tuple)));
                }
                out.push(ConditionalTuple::new(
                    l.tuple.clone(),
                    l.condition.clone().and(membership),
                ));
            }
            out
        }
        RaExpr::Divide(a, b) => {
            let dividend = eval_unchecked(a, cdb);
            let divisor = eval_unchecked(b, cdb);
            let prefix_arity = dividend.arity() - divisor.arity();
            let prefix_cols: Vec<usize> = (0..prefix_arity).collect();
            let mut out = ConditionalTable::new(prefix_arity);
            let mut seen_prefixes = std::collections::BTreeSet::new();
            for row in dividend.rows() {
                let prefix = row.tuple.project(&prefix_cols);
                if !seen_prefixes.insert(prefix.clone()) {
                    continue;
                }
                // The prefix is in the answer world iff (1) some dividend row
                // present in the world has this prefix, and (2) for every
                // divisor row present in the world, the combined tuple is
                // present in the dividend world.
                let mut presence = Condition::False;
                for u in dividend.rows() {
                    presence = presence.or(u.condition.clone().and(Condition::tuples_equal(
                        &u.tuple.project(&prefix_cols),
                        &prefix,
                    )));
                }
                let mut universal = Condition::True;
                for s in divisor.rows() {
                    let combined = prefix.concat(&s.tuple);
                    let mut exists = Condition::False;
                    for u in dividend.rows() {
                        exists = exists.or(u
                            .condition
                            .clone()
                            .and(Condition::tuples_equal(&u.tuple, &combined)));
                    }
                    universal = universal.and(s.condition.clone().negate().or(exists));
                }
                out.push(ConditionalTuple::new(prefix, presence.and(universal)));
            }
            out
        }
    }
}

/// Converts a selection predicate, applied to a concrete (possibly
/// null-carrying) tuple, into a condition on nulls. Shared with the
/// physical-plan c-table executor (`releval::exec`), which evaluates the
/// same algebra over hash-joined row streams.
pub fn predicate_condition(p: &Predicate, tuple: &Tuple) -> Condition {
    let resolve = |o: &Operand| -> Value {
        match o {
            Operand::Column(i) => tuple[*i].clone(),
            Operand::Const(c) => Value::Const(c.clone()),
        }
    };
    match p {
        Predicate::True => Condition::True,
        Predicate::False => Condition::False,
        Predicate::Eq(a, b) => Condition::eq(resolve(a), resolve(b)),
        Predicate::NotEq(a, b) => Condition::neq(resolve(a), resolve(b)),
        Predicate::And(a, b) => predicate_condition(a, tuple).and(predicate_condition(b, tuple)),
        Predicate::Or(a, b) => predicate_condition(a, tuple).or(predicate_condition(b, tuple)),
        Predicate::Not(inner) => predicate_condition(inner, tuple).negate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::builder::difference_example;
    use relmodel::value::Constant;
    use relmodel::{Valuation, Value};
    use std::collections::BTreeSet;

    /// The paper's §2 running example: R = {1,2}, S = {⊥}, query R − S.
    fn paper_setup() -> (ConditionalDatabase, RaExpr) {
        let cdb = ConditionalDatabase::from_database(&difference_example());
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        (cdb, q)
    }

    #[test]
    fn difference_produces_conditions_on_the_null() {
        let (cdb, q) = paper_setup();
        let answer = eval_ctable(&q, &cdb).unwrap();
        // Two rows: 1 with condition ⊥ ≠ 1, 2 with condition ⊥ ≠ 2 — exactly the
        // conditional table of the paper (up to the equivalent formulation
        // "1 if ⊥=1 ∨ ⊥=2 … " discussed there).
        assert_eq!(answer.len(), 2);
        for row in answer.rows() {
            assert_ne!(row.condition, Condition::True);
            assert_eq!(row.condition.atom_count(), 1);
        }
        // Instantiating at ⊥ = 1 keeps only the tuple (2).
        let v = Valuation::from_pairs(vec![(relmodel::value::NullId(0), Constant::Int(1))]);
        let world = answer.instantiate(&v);
        assert_eq!(world.len(), 1);
        assert!(world.contains(&Tuple::ints(&[2])));
        // Instantiating at ⊥ = 7 keeps both.
        let v = Valuation::from_pairs(vec![(relmodel::value::NullId(0), Constant::Int(7))]);
        assert_eq!(answer.instantiate(&v).len(), 2);
    }

    #[test]
    fn select_turns_predicates_into_conditions() {
        let cdb = ConditionalDatabase::from_database(&difference_example());
        let q = RaExpr::relation("S").select(Predicate::eq(Operand::col(0), Operand::int(5)));
        let answer = eval_ctable(&q, &cdb).unwrap();
        assert_eq!(answer.len(), 1);
        assert_eq!(
            answer.rows()[0].condition,
            Condition::eq(Value::null(0), Value::int(5))
        );
    }

    #[test]
    fn union_product_projection() {
        let cdb = ConditionalDatabase::from_database(&difference_example());
        let q = RaExpr::relation("R").union(RaExpr::relation("S"));
        assert_eq!(eval_ctable(&q, &cdb).unwrap().len(), 3);
        let q = RaExpr::relation("R").product(RaExpr::relation("S"));
        let prod = eval_ctable(&q, &cdb).unwrap();
        assert_eq!(prod.len(), 2);
        assert_eq!(prod.arity(), 2);
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .project(vec![1]);
        assert_eq!(eval_ctable(&q, &cdb).unwrap().arity(), 1);
    }

    #[test]
    fn intersection_membership_condition() {
        let cdb = ConditionalDatabase::from_database(&difference_example());
        let q = RaExpr::relation("R").intersection(RaExpr::relation("S"));
        let answer = eval_ctable(&q, &cdb).unwrap();
        // 1 is present iff ⊥ = 1; 2 iff ⊥ = 2.
        assert_eq!(answer.len(), 2);
        let v1 = Valuation::from_pairs(vec![(relmodel::value::NullId(0), Constant::Int(1))]);
        assert_eq!(answer.instantiate(&v1).len(), 1);
        let v7 = Valuation::from_pairs(vec![(relmodel::value::NullId(0), Constant::Int(7))]);
        assert!(answer.instantiate(&v7).is_empty());
    }

    #[test]
    fn division_on_ctables() {
        // R(a,b) = {(1,10), (1,⊥0), (2,10)}, S(b) = {10, 20}.
        // 1 ∈ R ÷ S iff ⊥0 = 20; 2 is never in the answer.
        let db = relmodel::DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .ints("R", &[1, 10])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .ints("R", &[2, 10])
            .ints("S", &[10])
            .ints("S", &[20])
            .build();
        let cdb = ConditionalDatabase::from_database(&db);
        let q = RaExpr::relation("R").divide(RaExpr::relation("S"));
        let answer = eval_ctable(&q, &cdb).unwrap();
        let with_20 = Valuation::from_pairs(vec![(relmodel::value::NullId(0), Constant::Int(20))]);
        let world = answer.instantiate(&with_20);
        assert_eq!(world.len(), 1);
        assert!(world.contains(&Tuple::ints(&[1])));
        let with_30 = Valuation::from_pairs(vec![(relmodel::value::NullId(0), Constant::Int(30))]);
        assert!(answer.instantiate(&with_30).is_empty());
    }

    #[test]
    fn delta_collects_adom_values() {
        let cdb = ConditionalDatabase::from_database(&difference_example());
        let answer = eval_ctable(&RaExpr::Delta, &cdb).unwrap();
        let values: BTreeSet<Value> = answer
            .rows()
            .iter()
            .map(|r| r.tuple.values()[0].clone())
            .collect();
        assert!(values.contains(&Value::int(1)));
        assert!(values.contains(&Value::int(2)));
        assert!(values.contains(&Value::null(0)));
    }

    #[test]
    fn type_errors_are_reported() {
        let cdb = ConditionalDatabase::from_database(&difference_example());
        assert!(eval_ctable(&RaExpr::relation("Missing"), &cdb).is_err());
    }

    #[test]
    fn global_condition_survives_the_round_trip() {
        // Regression: lifting a relation with `ConditionalTable::from_relation`
        // gives every row condition `true`; evaluating the identity query over
        // a database whose `with_global` condition constrains ⊥0 used to
        // return those unconditional rows verbatim — the answer table had
        // forgotten the global condition, so instantiating it at a valuation
        // the database rules out produced rows from a world that does not
        // exist. The fix propagates the global condition into every answer
        // row.
        let schema = relmodel::Schema::builder().relation("R", &["a"]).build();
        let rel = relmodel::Relation::from_tuples(1, vec![Tuple::ints(&[1])]);
        let mut cdb = ConditionalDatabase::new(schema);
        cdb.set_table("R", ConditionalTable::from_relation(&rel));
        let cdb = cdb.with_global(Condition::eq(Value::null(0), Value::int(0)));

        let answer = eval_ctable(&RaExpr::relation("R"), &cdb).unwrap();
        let violating = Valuation::from_pairs(vec![(relmodel::value::NullId(0), Constant::Int(7))]);
        assert!(
            answer.instantiate(&violating).is_empty(),
            "the global condition ⊥0 = 0 must gate the answer rows"
        );
        let admissible =
            Valuation::from_pairs(vec![(relmodel::value::NullId(0), Constant::Int(0))]);
        assert_eq!(answer.instantiate(&admissible).len(), 1);
        // ... and with the default global `true` nothing changes.
        let plain = ConditionalDatabase::from_database(&difference_example());
        let ans = eval_ctable(&RaExpr::relation("R"), &plain).unwrap();
        assert!(ans.rows().iter().all(|r| r.condition == Condition::True));
    }
}
