//! Expansion-based verification of the strong representation property:
//! `[[eval_ctable(Q, D)]]_cwa = Q([[D]]_cwa)` over a finite constant domain.
//!
//! This is the machinery behind experiment E6 and the property tests: it makes
//! the abstract claim "conditional tables are a strong representation system
//! for relational algebra under CWA" checkable on concrete inputs.

use std::collections::BTreeSet;

use relalgebra::ast::RaExpr;
use relalgebra::typecheck::TypeError;
use relmodel::value::Constant;
use relmodel::{Database, Relation, Valuation};

use crate::algebra::eval_ctable;
use crate::ctable::ConditionalDatabase;

/// Classical evaluation of `expr` over one **complete** world, through the
/// c-table algebra itself: lifting a complete database yields only ground
/// conditions, which the structural simplifier folds to `true`/`false`, so
/// the conditional answer *is* the classical answer. (Query `Values`
/// literals may still mention nulls; instantiating under the empty valuation
/// reproduces the syntactic semantics classical evaluators give them.)
fn eval_in_world(expr: &RaExpr, world: &Database) -> Result<Relation, TypeError> {
    let lifted = ConditionalDatabase::from_database(world);
    Ok(eval_ctable(expr, &lifted)?.instantiate(&Valuation::new()))
}

/// The two sides of the strong-representation equation, as sets of complete
/// relations (canonically ordered for comparison).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepresentationCheck {
    /// `[[A]]_cwa` where `A = eval_ctable(Q, D)`: the possible worlds of the
    /// conditional answer table.
    pub answer_worlds: BTreeSet<Relation>,
    /// `Q([[D]]_cwa)`: the query evaluated in every possible world of `D`.
    pub query_of_worlds: BTreeSet<Relation>,
}

impl RepresentationCheck {
    /// Does the strong representation property hold on this domain?
    pub fn holds(&self) -> bool {
        self.answer_worlds == self.query_of_worlds
    }
}

/// Performs the strong-representation check for a query over a conditional
/// database, using the database's constants, the query's constants, and
/// `fresh` additional fresh constants as the valuation domain.
pub fn check_strong_representation(
    expr: &RaExpr,
    cdb: &ConditionalDatabase,
    fresh: usize,
) -> Result<RepresentationCheck, TypeError> {
    let domain: Vec<Constant> = cdb.adequate_domain(&expr.constants(), fresh);

    // Left-hand side: worlds of the conditional answer. The answer table's
    // rows/conditions still refer to the *database's* nulls and are governed by
    // the same global condition, so we instantiate the answer under every
    // valuation admitted by the database.
    let answer = eval_ctable(expr, cdb)?;
    let mut answer_worlds = BTreeSet::new();
    for v in relmodel::valuation::ValuationEnumerator::new(
        cdb.null_ids().into_iter().chain(answer.null_ids()),
        domain.clone(),
    ) {
        if !cdb.global.eval(&v) {
            continue;
        }
        answer_worlds.insert(answer.instantiate(&v));
    }

    // Right-hand side: evaluate the query in every possible world of the
    // conditional database.
    let mut query_of_worlds = BTreeSet::new();
    for world in cdb.worlds(&domain) {
        query_of_worlds.insert(eval_in_world(expr, &world)?);
    }

    Ok(RepresentationCheck {
        answer_worlds,
        query_of_worlds,
    })
}

/// Convenience wrapper returning just the Boolean outcome.
pub fn strong_representation_holds(
    expr: &RaExpr,
    cdb: &ConditionalDatabase,
    fresh: usize,
) -> Result<bool, TypeError> {
    Ok(check_strong_representation(expr, cdb, fresh)?.holds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::builder::{difference_example, orders_and_payments_example, tableau_example};

    #[test]
    fn difference_example_is_strongly_represented() {
        let cdb = ConditionalDatabase::from_database(&difference_example());
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        let check = check_strong_representation(&q, &cdb, 2).unwrap();
        assert!(check.holds());
        // The paper lists exactly three possible answers: {1,2}, {1}, {2}.
        assert_eq!(check.query_of_worlds.len(), 3);
    }

    #[test]
    fn positive_and_nonpositive_queries_hold() {
        let cdb = ConditionalDatabase::from_database(&tableau_example());
        let queries = vec![
            RaExpr::relation("R"),
            RaExpr::relation("R").project(vec![0]),
            RaExpr::relation("R").select(Predicate::eq(Operand::col(0), Operand::int(1))),
            RaExpr::relation("R").difference(
                RaExpr::relation("R").select(Predicate::eq(Operand::col(1), Operand::int(2))),
            ),
            RaExpr::relation("R")
                .project(vec![0])
                .intersection(RaExpr::relation("R").project(vec![1])),
        ];
        for q in queries {
            assert!(
                strong_representation_holds(&q, &cdb, 2).unwrap(),
                "strong representation failed for {q}"
            );
        }
    }

    #[test]
    fn division_query_is_strongly_represented() {
        let cdb = ConditionalDatabase::from_database(&orders_and_payments_example());
        // Orders × paid-orders ÷ paid-orders — a contrived but type-correct division.
        let q = RaExpr::relation("Order")
            .project(vec![0])
            .product(RaExpr::relation("Pay").project(vec![1]))
            .divide(RaExpr::relation("Pay").project(vec![1]));
        assert!(strong_representation_holds(&q, &cdb, 2).unwrap());
    }

    #[test]
    fn unpaid_orders_query_is_strongly_represented() {
        let cdb = ConditionalDatabase::from_database(&orders_and_payments_example());
        let q = RaExpr::relation("Order")
            .project(vec![0])
            .difference(RaExpr::relation("Pay").project(vec![1]));
        let check = check_strong_representation(&q, &cdb, 2).unwrap();
        assert!(check.holds());
        // In every world at least one order is unpaid.
        assert!(check.query_of_worlds.iter().all(|r| !r.is_empty()));
        // But the intersection over worlds is empty — the classical certain
        // answer loses that information.
        let mut iter = check.query_of_worlds.iter();
        let first = iter.next().unwrap().clone();
        let intersection = iter.fold(first, |acc, r| acc.intersection(r));
        assert!(intersection.is_empty());
    }
}
