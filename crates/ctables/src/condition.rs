//! Conditions of conditional tables: Boolean combinations of equalities
//! between values (constants and nulls).

pub mod solver;

use std::collections::BTreeSet;
use std::fmt;

use relmodel::valuation::Valuation;
use relmodel::value::{Constant, NullId, Value};

/// A condition attached to a conditional tuple or table.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Condition {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Equality of two values (each a constant or a null).
    Eq(Value, Value),
    /// Inequality of two values.
    Neq(Value, Value),
    /// Conjunction (empty conjunction is `True`).
    And(Vec<Condition>),
    /// Disjunction (empty disjunction is `False`).
    Or(Vec<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// `a = b`.
    pub fn eq(a: Value, b: Value) -> Self {
        Condition::Eq(a, b)
    }

    /// `a ≠ b`.
    pub fn neq(a: Value, b: Value) -> Self {
        Condition::Neq(a, b)
    }

    /// Conjunction, flattening nested conjunctions and absorbing `True`.
    pub fn and(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::True, c) | (c, Condition::True) => c,
            (Condition::False, _) | (_, Condition::False) => Condition::False,
            (Condition::And(mut a), Condition::And(b)) => {
                a.extend(b);
                Condition::And(a)
            }
            (Condition::And(mut a), c) => {
                a.push(c);
                Condition::And(a)
            }
            (c, Condition::And(mut b)) => {
                b.insert(0, c);
                Condition::And(b)
            }
            (a, b) => Condition::And(vec![a, b]),
        }
    }

    /// Disjunction, flattening nested disjunctions and absorbing `False`.
    pub fn or(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::False, c) | (c, Condition::False) => c,
            (Condition::True, _) | (_, Condition::True) => Condition::True,
            (Condition::Or(mut a), Condition::Or(b)) => {
                a.extend(b);
                Condition::Or(a)
            }
            (Condition::Or(mut a), c) => {
                a.push(c);
                Condition::Or(a)
            }
            (c, Condition::Or(mut b)) => {
                b.insert(0, c);
                Condition::Or(b)
            }
            (a, b) => Condition::Or(vec![a, b]),
        }
    }

    /// Negation, with double-negation elimination and De Morgan on the
    /// constants.
    pub fn negate(self) -> Condition {
        match self {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Eq(a, b) => Condition::Neq(a, b),
            Condition::Neq(a, b) => Condition::Eq(a, b),
            Condition::Not(inner) => *inner,
            other => Condition::Not(Box::new(other)),
        }
    }

    /// The equality `t = s` of two tuples, component-wise.
    pub fn tuples_equal(t: &relmodel::Tuple, s: &relmodel::Tuple) -> Condition {
        assert_eq!(t.arity(), s.arity(), "tuple equality of different arities");
        t.values()
            .iter()
            .zip(s.values().iter())
            .fold(Condition::True, |acc, (a, b)| {
                acc.and(Condition::eq(a.clone(), b.clone()))
            })
    }

    /// Nulls mentioned anywhere in the condition.
    pub fn null_ids(&self) -> BTreeSet<NullId> {
        let mut out = BTreeSet::new();
        self.collect_nulls(&mut out);
        out
    }

    /// Constants mentioned anywhere in the condition (the base of the
    /// adequate valuation domain used by the enumeration oracles in
    /// [`solver`]).
    pub fn constants(&self) -> BTreeSet<Constant> {
        let mut out = BTreeSet::new();
        self.collect_constants(&mut out);
        out
    }

    fn collect_constants(&self, out: &mut BTreeSet<Constant>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Eq(a, b) | Condition::Neq(a, b) => {
                if let Value::Const(c) = a {
                    out.insert(c.clone());
                }
                if let Value::Const(c) = b {
                    out.insert(c.clone());
                }
            }
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_constants(out);
                }
            }
            Condition::Not(c) => c.collect_constants(out),
        }
    }

    fn collect_nulls(&self, out: &mut BTreeSet<NullId>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Eq(a, b) | Condition::Neq(a, b) => {
                if let Value::Null(n) = a {
                    out.insert(*n);
                }
                if let Value::Null(n) = b {
                    out.insert(*n);
                }
            }
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_nulls(out);
                }
            }
            Condition::Not(c) => c.collect_nulls(out),
        }
    }

    /// Evaluates the condition under a valuation. Nulls not covered by the
    /// valuation are compared syntactically (this matters only for partial
    /// valuations; the c-table semantics always applies total valuations).
    pub fn eval(&self, v: &Valuation) -> bool {
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::Eq(a, b) => v.apply_value(a) == v.apply_value(b),
            Condition::Neq(a, b) => v.apply_value(a) != v.apply_value(b),
            Condition::And(cs) => cs.iter().all(|c| c.eval(v)),
            Condition::Or(cs) => cs.iter().any(|c| c.eval(v)),
            Condition::Not(c) => !c.eval(v),
        }
    }

    /// Structural simplification: constant folding of ground (in)equalities,
    /// flattening, absorption of `True`/`False`, double-negation elimination.
    /// Does not attempt full satisfiability reasoning.
    pub fn simplify(&self) -> Condition {
        match self {
            Condition::True => Condition::True,
            Condition::False => Condition::False,
            Condition::Eq(a, b) => {
                if a == b {
                    Condition::True
                } else if a.is_const() && b.is_const() {
                    Condition::False
                } else {
                    Condition::Eq(a.clone(), b.clone())
                }
            }
            Condition::Neq(a, b) => {
                if a == b {
                    Condition::False
                } else if a.is_const() && b.is_const() {
                    Condition::True
                } else {
                    Condition::Neq(a.clone(), b.clone())
                }
            }
            Condition::And(cs) => {
                let mut parts = Vec::new();
                for c in cs {
                    match c.simplify() {
                        Condition::True => {}
                        Condition::False => return Condition::False,
                        Condition::And(inner) => parts.extend(inner),
                        other => parts.push(other),
                    }
                }
                parts.sort();
                parts.dedup();
                match parts.len() {
                    0 => Condition::True,
                    1 => parts.into_iter().next().expect("len checked"),
                    _ => Condition::And(parts),
                }
            }
            Condition::Or(cs) => {
                let mut parts = Vec::new();
                for c in cs {
                    match c.simplify() {
                        Condition::False => {}
                        Condition::True => return Condition::True,
                        Condition::Or(inner) => parts.extend(inner),
                        other => parts.push(other),
                    }
                }
                parts.sort();
                parts.dedup();
                match parts.len() {
                    0 => Condition::False,
                    1 => parts.into_iter().next().expect("len checked"),
                    _ => Condition::Or(parts),
                }
            }
            Condition::Not(c) => match c.simplify() {
                Condition::True => Condition::False,
                Condition::False => Condition::True,
                Condition::Eq(a, b) => Condition::Neq(a, b),
                Condition::Neq(a, b) => Condition::Eq(a, b),
                Condition::Not(inner) => *inner,
                other => Condition::Not(Box::new(other)),
            },
        }
    }

    /// A rough size measure (number of atoms), used to report how unwieldy
    /// c-table answers become (the paper's "hardly meaningful to humans").
    pub fn atom_count(&self) -> usize {
        match self {
            Condition::True | Condition::False | Condition::Eq(_, _) | Condition::Neq(_, _) => 1,
            Condition::And(cs) | Condition::Or(cs) => cs.iter().map(Condition::atom_count).sum(),
            Condition::Not(c) => c.atom_count(),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "true"),
            Condition::False => write!(f, "false"),
            Condition::Eq(a, b) => write!(f, "{a} = {b}"),
            Condition::Neq(a, b) => write!(f, "{a} ≠ {b}"),
            Condition::And(cs) => {
                if cs.is_empty() {
                    return write!(f, "true");
                }
                let parts: Vec<String> = cs.iter().map(|c| format!("({c})")).collect();
                write!(f, "{}", parts.join(" ∧ "))
            }
            Condition::Or(cs) => {
                if cs.is_empty() {
                    return write!(f, "false");
                }
                let parts: Vec<String> = cs.iter().map(|c| format!("({c})")).collect();
                write!(f, "{}", parts.join(" ∨ "))
            }
            Condition::Not(c) => write!(f, "¬({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::value::Constant;
    use relmodel::Tuple;

    #[test]
    fn building_and_absorption() {
        let c = Condition::True.and(Condition::eq(Value::null(0), Value::int(1)));
        assert_eq!(c, Condition::eq(Value::null(0), Value::int(1)));
        let c = Condition::False.and(Condition::eq(Value::null(0), Value::int(1)));
        assert_eq!(c, Condition::False);
        let c = Condition::True.or(Condition::eq(Value::null(0), Value::int(1)));
        assert_eq!(c, Condition::True);
        let c = Condition::False.or(Condition::eq(Value::null(0), Value::int(1)));
        assert_eq!(c, Condition::eq(Value::null(0), Value::int(1)));
    }

    #[test]
    fn negation() {
        assert_eq!(Condition::True.negate(), Condition::False);
        assert_eq!(
            Condition::eq(Value::null(0), Value::int(1)).negate(),
            Condition::neq(Value::null(0), Value::int(1))
        );
        let c = Condition::eq(Value::null(0), Value::int(1))
            .and(Condition::eq(Value::null(1), Value::int(2)));
        assert_eq!(c.clone().negate().negate(), c);
    }

    #[test]
    fn evaluation_under_valuations() {
        let c = Condition::eq(Value::null(0), Value::int(1))
            .or(Condition::eq(Value::null(0), Value::int(0)));
        let v1 = Valuation::from_pairs(vec![(NullId(0), Constant::Int(1))]);
        let v2 = Valuation::from_pairs(vec![(NullId(0), Constant::Int(5))]);
        assert!(c.eval(&v1));
        assert!(!c.eval(&v2));
        let neg = c.clone().negate();
        assert!(!neg.eval(&v1));
        assert!(neg.eval(&v2));
    }

    #[test]
    fn tuple_equality_condition() {
        let t = Tuple::new(vec![Value::int(1), Value::null(0)]);
        let s = Tuple::new(vec![Value::int(1), Value::int(2)]);
        let c = Condition::tuples_equal(&t, &s).simplify();
        assert_eq!(c, Condition::eq(Value::null(0), Value::int(2)));
        let v = Valuation::from_pairs(vec![(NullId(0), Constant::Int(2))]);
        assert!(c.eval(&v));
    }

    #[test]
    fn simplification_folds_ground_atoms() {
        let c = Condition::eq(Value::int(1), Value::int(1))
            .and(Condition::eq(Value::null(0), Value::int(2)));
        assert_eq!(c.simplify(), Condition::eq(Value::null(0), Value::int(2)));
        let c = Condition::eq(Value::int(1), Value::int(2))
            .or(Condition::neq(Value::int(1), Value::int(2)));
        assert_eq!(c.simplify(), Condition::True);
        let c = Condition::Not(Box::new(Condition::Not(Box::new(Condition::True))));
        assert_eq!(c.simplify(), Condition::True);
        // duplicate conjuncts are removed
        let atom = Condition::eq(Value::null(0), Value::int(1));
        let c = atom.clone().and(atom.clone()).simplify();
        assert_eq!(c, atom);
    }

    #[test]
    fn nulls_and_atom_count() {
        let c = Condition::eq(Value::null(0), Value::int(1))
            .and(Condition::neq(Value::null(3), Value::null(0)));
        assert_eq!(c.null_ids().len(), 2);
        assert_eq!(c.atom_count(), 2);
        assert_eq!(c.constants(), [Constant::Int(1)].into_iter().collect());
    }

    #[test]
    fn display() {
        let c = Condition::eq(Value::null(0), Value::int(1))
            .or(Condition::neq(Value::null(0), Value::int(2)));
        assert_eq!(c.to_string(), "(⊥0 = 1) ∨ (⊥0 ≠ 2)");
    }
}
