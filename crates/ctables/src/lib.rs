//! # ctables — conditional tables
//!
//! Conditional tables (c-tables) are the classical *strong representation
//! system*: for every relational algebra query `Q` and every c-table `D`
//! there is a c-table `A` with `[[A]]_cwa = Q([[D]]_cwa)` (Imieliński & Lipski
//! 1984, recalled in Section 2 of the paper). The paper uses them both as the
//! benchmark of what strong representation costs — the resulting conditions
//! are "hardly meaningful to humans" — and as evidence that query answers may
//! need representations richer than plain database objects.
//!
//! This crate provides:
//!
//! * [`condition`] — Boolean conditions over equalities between constants and
//!   nulls, with simplification and evaluation under valuations;
//! * [`condition::solver`] — the certainty solver: validity / satisfiability /
//!   entailment of conditions decided by DNF + congruence closure over the
//!   infinite constant domain, with **no** valuation enumeration — the
//!   decision procedure behind the engine's symbolic strategy;
//! * [`ctable`] — conditional tuples, tables, and databases, with their
//!   closed-world possible-world expansion;
//! * [`algebra`] — the Imieliński–Lipski algebra: evaluation of full
//!   relational algebra directly on conditional databases;
//! * [`verify`] — expansion-based checking of the strong representation
//!   property on finite domains (used by tests and experiment E6).
//!
//! This crate deliberately depends only on `relmodel` and `relalgebra`, so
//! the evaluator crate (`releval`) can build its symbolic strategy on top of
//! it; classical evaluation over the complete worlds [`verify`] expands is
//! recovered from the c-table algebra itself (ground conditions fold to
//! `true`/`false`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod condition;
pub mod ctable;
pub mod verify;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::algebra::{eval_ctable, eval_ctable_unchecked};
    pub use crate::condition::solver::{CertaintySolver, SolverOptions, SolverPunt};
    pub use crate::condition::Condition;
    pub use crate::ctable::{ConditionalDatabase, ConditionalTable, ConditionalTuple};
    pub use crate::verify::strong_representation_holds;
}

pub use condition::Condition;
pub use ctable::{ConditionalDatabase, ConditionalTable, ConditionalTuple};
