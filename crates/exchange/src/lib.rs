//! # exchange — schema mappings and data exchange
//!
//! The paper's introduction points out that incompleteness "inevitably arises
//! when we move data between applications": schema mappings generate target
//! instances with *marked nulls*. This crate provides that substrate:
//!
//! * [`tgd`] — source-to-target tuple-generating dependencies
//!   `∀x̄ (φ(x̄) → ∃ȳ ψ(x̄, ȳ))`, written with the conjunctive-query atoms of
//!   `relalgebra`;
//! * [`mapping`] — schema mappings (source schema, target schema, st-tgds);
//! * [`mod@chase`] — the naïve chase, producing the canonical target instance
//!   with fresh marked nulls for existential variables;
//! * [`solutions`] — solution and universal-solution checks, and certain
//!   answers to target queries via naïve evaluation over the chased instance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chase;
pub mod mapping;
pub mod solutions;
pub mod tgd;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::chase::{chase, ChaseResult};
    pub use crate::mapping::SchemaMapping;
    pub use crate::solutions::{certain_answer_exchange, is_solution, is_universal_for};
    pub use crate::tgd::Tgd;
}

pub use chase::{chase, ChaseResult};
pub use mapping::SchemaMapping;
pub use tgd::Tgd;
