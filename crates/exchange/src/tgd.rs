//! Tuple-generating dependencies (tgds).

use std::collections::BTreeSet;
use std::fmt;

use relalgebra::cq::{Atom, Term};

/// A source-to-target tuple-generating dependency
/// `∀x̄ (body(x̄) → ∃ȳ head(x̄, ȳ))`.
///
/// Variables occurring in the head but not in the body are existentially
/// quantified; the chase instantiates them with fresh marked nulls. The
/// paper's example `Order(i, p) → Cust(x), Pref(x, p)` has `i, p` universal
/// and `x` existential.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tgd {
    /// Body atoms, over the source schema.
    pub body: Vec<Atom>,
    /// Head atoms, over the target schema.
    pub head: Vec<Atom>,
}

impl Tgd {
    /// Creates a tgd. The body must be nonempty (a standard requirement that
    /// keeps the chase well-behaved).
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Self {
        assert!(!body.is_empty(), "tgd body must be nonempty");
        assert!(!head.is_empty(), "tgd head must be nonempty");
        Tgd { body, head }
    }

    /// Variables occurring in the body (the universally quantified ones).
    pub fn universal_vars(&self) -> BTreeSet<u64> {
        self.body.iter().flat_map(|a| a.variables()).collect()
    }

    /// Variables occurring only in the head (the existentially quantified
    /// ones, instantiated with fresh nulls by the chase).
    pub fn existential_vars(&self) -> BTreeSet<u64> {
        let universal = self.universal_vars();
        self.head
            .iter()
            .flat_map(|a| a.variables())
            .filter(|v| !universal.contains(v))
            .collect()
    }

    /// Is the tgd *full* (no existential variables)?
    pub fn is_full(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// Relation names used in the body.
    pub fn body_relations(&self) -> BTreeSet<String> {
        self.body.iter().map(|a| a.relation.clone()).collect()
    }

    /// Relation names used in the head.
    pub fn head_relations(&self) -> BTreeSet<String> {
        self.head.iter().map(|a| a.relation.clone()).collect()
    }

    /// The paper's running example mapping:
    /// `Order(i, p) → ∃x Cust(x) ∧ Pref(x, p)`.
    pub fn order_to_customer_example() -> Tgd {
        Tgd::new(
            vec![Atom::new("Order", vec![Term::var(0), Term::var(1)])],
            vec![
                Atom::new("Cust", vec![Term::var(2)]),
                Atom::new("Pref", vec![Term::var(2), Term::var(1)]),
            ],
        )
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body: Vec<String> = self.body.iter().map(|a| a.to_string()).collect();
        let head: Vec<String> = self.head.iter().map(|a| a.to_string()).collect();
        let existential: Vec<String> = self
            .existential_vars()
            .iter()
            .map(|v| format!("x{v}"))
            .collect();
        if existential.is_empty() {
            write!(f, "{} → {}", body.join(" ∧ "), head.join(" ∧ "))
        } else {
            write!(
                f,
                "{} → ∃{} {}",
                body.join(" ∧ "),
                existential.join(","),
                head.join(" ∧ ")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_classification() {
        let tgd = Tgd::order_to_customer_example();
        assert_eq!(tgd.universal_vars().len(), 2);
        assert_eq!(tgd.existential_vars(), vec![2u64].into_iter().collect());
        assert!(!tgd.is_full());
        assert_eq!(tgd.body_relations().len(), 1);
        assert_eq!(tgd.head_relations().len(), 2);
    }

    #[test]
    fn full_tgd() {
        let tgd = Tgd::new(
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("T", vec![Term::var(1), Term::var(0)])],
        );
        assert!(tgd.is_full());
        assert!(tgd.to_string().contains("→"));
        assert!(!tgd.to_string().contains("∃"));
    }

    #[test]
    fn display_shows_existentials() {
        let tgd = Tgd::order_to_customer_example();
        assert!(tgd.to_string().contains("∃x2"));
    }

    #[test]
    #[should_panic(expected = "body must be nonempty")]
    fn empty_body_rejected() {
        Tgd::new(vec![], vec![Atom::new("T", vec![Term::var(0)])]);
    }
}
