//! Schema mappings: a source schema, a target schema, and a set of
//! source-to-target tgds.

use std::fmt;

use relmodel::Schema;

use crate::tgd::Tgd;

/// A schema mapping `M = (σ_s, σ_t, Σ_st)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaMapping {
    /// The source schema.
    pub source: Schema,
    /// The target schema.
    pub target: Schema,
    /// The source-to-target dependencies.
    pub tgds: Vec<Tgd>,
}

/// Errors raised when validating a schema mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// A tgd body mentions a relation that is not in the source schema.
    BodyNotInSource(String),
    /// A tgd head mentions a relation that is not in the target schema.
    HeadNotInTarget(String),
    /// An atom's arity does not match the schema.
    ArityMismatch(String),
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::BodyNotInSource(r) => {
                write!(f, "tgd body uses relation `{r}` not in the source schema")
            }
            MappingError::HeadNotInTarget(r) => {
                write!(f, "tgd head uses relation `{r}` not in the target schema")
            }
            MappingError::ArityMismatch(r) => {
                write!(f, "atom over `{r}` has the wrong arity for its schema")
            }
        }
    }
}

impl std::error::Error for MappingError {}

impl SchemaMapping {
    /// Creates and validates a schema mapping.
    pub fn new(source: Schema, target: Schema, tgds: Vec<Tgd>) -> Result<Self, MappingError> {
        for tgd in &tgds {
            for atom in &tgd.body {
                let rs = source
                    .relation(&atom.relation)
                    .ok_or_else(|| MappingError::BodyNotInSource(atom.relation.clone()))?;
                if rs.arity() != atom.terms.len() {
                    return Err(MappingError::ArityMismatch(atom.relation.clone()));
                }
            }
            for atom in &tgd.head {
                let rs = target
                    .relation(&atom.relation)
                    .ok_or_else(|| MappingError::HeadNotInTarget(atom.relation.clone()))?;
                if rs.arity() != atom.terms.len() {
                    return Err(MappingError::ArityMismatch(atom.relation.clone()));
                }
            }
        }
        Ok(SchemaMapping {
            source,
            target,
            tgds,
        })
    }

    /// The paper's running example: copy the `Order` relation into a
    /// customers-and-preferences target via
    /// `Order(i, p) → ∃x Cust(x) ∧ Pref(x, p)`.
    pub fn order_to_customer_example() -> SchemaMapping {
        let source = Schema::builder()
            .relation("Order", &["o_id", "product"])
            .build();
        let target = Schema::builder()
            .relation("Cust", &["cust"])
            .relation("Pref", &["cust", "product"])
            .build();
        SchemaMapping::new(source, target, vec![Tgd::order_to_customer_example()])
            .expect("the canned example is valid")
    }
}

impl fmt::Display for SchemaMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for tgd in &self.tgds {
            writeln!(f, "{tgd}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::cq::{Atom, Term};

    #[test]
    fn example_mapping_validates() {
        let m = SchemaMapping::order_to_customer_example();
        assert_eq!(m.tgds.len(), 1);
        assert!(m.to_string().contains("Order(x0, x1)"));
    }

    #[test]
    fn validation_errors() {
        let source = Schema::builder().relation("R", &["a"]).build();
        let target = Schema::builder().relation("T", &["a"]).build();
        let bad_body = Tgd::new(
            vec![Atom::new("Nope", vec![Term::var(0)])],
            vec![Atom::new("T", vec![Term::var(0)])],
        );
        assert!(matches!(
            SchemaMapping::new(source.clone(), target.clone(), vec![bad_body]),
            Err(MappingError::BodyNotInSource(_))
        ));
        let bad_head = Tgd::new(
            vec![Atom::new("R", vec![Term::var(0)])],
            vec![Atom::new("Nope", vec![Term::var(0)])],
        );
        assert!(matches!(
            SchemaMapping::new(source.clone(), target.clone(), vec![bad_head]),
            Err(MappingError::HeadNotInTarget(_))
        ));
        let bad_arity = Tgd::new(
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
            vec![Atom::new("T", vec![Term::var(0)])],
        );
        assert!(matches!(
            SchemaMapping::new(source, target, vec![bad_arity]),
            Err(MappingError::ArityMismatch(_))
        ));
    }
}
