//! The naïve (oblivious) chase for source-to-target tgds: computes the
//! canonical target instance, introducing a fresh marked null for every
//! existential variable of every trigger.

use std::collections::BTreeMap;

use relalgebra::cq::{Atom, Term};
use relmodel::value::{NullId, Value};
use relmodel::{Database, Tuple};

use crate::mapping::SchemaMapping;

/// The result of chasing a source instance with a schema mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseResult {
    /// The canonical target instance (contains marked nulls).
    pub target: Database,
    /// How many tgd triggers fired.
    pub triggers_fired: usize,
    /// How many fresh nulls were introduced.
    pub nulls_introduced: u64,
}

/// Chases a (complete or incomplete) source instance with the mapping's
/// st-tgds, producing the canonical target instance.
///
/// Source nulls are allowed: a body variable may bind to a source null, which
/// is then copied into the target (this is how incompleteness composes across
/// exchange steps). Fresh nulls for existential variables are numbered from
/// `max(source null id) + 1` so they never collide with copied nulls.
pub fn chase(source: &Database, mapping: &SchemaMapping) -> ChaseResult {
    let mut target = Database::new(mapping.target.clone());
    let mut next_null = source.max_null_id().map_or(0, |m| m + 1);
    let mut triggers = 0usize;
    let start_null = next_null;

    for tgd in &mapping.tgds {
        for binding in all_matches(&tgd.body, source) {
            triggers += 1;
            // Fresh nulls for the existential variables of this trigger.
            let mut assignment: BTreeMap<u64, Value> = binding.clone();
            for var in tgd.existential_vars() {
                assignment.insert(var, Value::Null(NullId(next_null)));
                next_null += 1;
            }
            for atom in &tgd.head {
                let tuple: Tuple = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => Value::Const(c.clone()),
                        Term::Var(v) => assignment
                            .get(v)
                            .cloned()
                            .expect("head variables are universal or existential"),
                    })
                    .collect();
                target
                    .insert(&atom.relation, tuple)
                    .expect("mapping validation guarantees head atoms fit the target schema");
            }
        }
    }

    ChaseResult {
        target,
        triggers_fired: triggers,
        nulls_introduced: next_null - start_null,
    }
}

/// Enumerates all homomorphic matches of a conjunction of atoms into a
/// database, binding variables to the database's values (constants or nulls).
pub fn all_matches(atoms: &[Atom], db: &Database) -> Vec<BTreeMap<u64, Value>> {
    let mut out = Vec::new();
    let mut assignment = BTreeMap::new();
    match_rec(atoms, 0, db, &mut assignment, &mut out);
    out
}

fn match_rec(
    atoms: &[Atom],
    idx: usize,
    db: &Database,
    assignment: &mut BTreeMap<u64, Value>,
    out: &mut Vec<BTreeMap<u64, Value>>,
) {
    if idx == atoms.len() {
        out.push(assignment.clone());
        return;
    }
    let atom = &atoms[idx];
    let Some(rel) = db.relation(&atom.relation) else {
        return;
    };
    for tuple in rel.iter() {
        if tuple.arity() != atom.terms.len() {
            continue;
        }
        let mut added: Vec<u64> = Vec::new();
        let mut ok = true;
        for (term, value) in atom.terms.iter().zip(tuple.values().iter()) {
            match term {
                Term::Const(c) => {
                    if Value::Const(c.clone()) != *value {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(existing) => {
                        if existing != value {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        assignment.insert(*v, value.clone());
                        added.push(*v);
                    }
                },
            }
        }
        if ok {
            match_rec(atoms, idx + 1, db, assignment, out);
        }
        for v in added {
            assignment.remove(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::DatabaseBuilder;

    fn source() -> Database {
        DatabaseBuilder::new()
            .relation("Order", &["o_id", "product"])
            .strs("Order", &["oid1", "pr1"])
            .strs("Order", &["oid2", "pr2"])
            .build()
    }

    #[test]
    fn paper_example_chase() {
        // Order(oid1,pr1), Order(oid2,pr2) chased with
        // Order(i,p) → ∃x Cust(x) ∧ Pref(x,p) produces Cust(⊥), Pref(⊥,pr1),
        // Cust(⊥'), Pref(⊥',pr2) with two distinct fresh nulls.
        let mapping = SchemaMapping::order_to_customer_example();
        let result = chase(&source(), &mapping);
        assert_eq!(result.triggers_fired, 2);
        assert_eq!(result.nulls_introduced, 2);
        let cust = result.target.relation("Cust").unwrap();
        let pref = result.target.relation("Pref").unwrap();
        assert_eq!(cust.len(), 2);
        assert_eq!(pref.len(), 2);
        assert_eq!(result.target.null_ids().len(), 2);
        // Each Pref tuple pairs a null with the right product, and the null in
        // Cust matches the null in Pref (marked nulls!).
        for t in pref.iter() {
            assert!(t.values()[0].is_null());
            assert!(t.values()[1].is_const());
            assert!(cust.contains(&Tuple::new(vec![t.values()[0].clone()])));
        }
    }

    #[test]
    fn chase_of_empty_source_is_empty() {
        let mapping = SchemaMapping::order_to_customer_example();
        let empty = Database::new(mapping.source.clone());
        let result = chase(&empty, &mapping);
        assert_eq!(result.triggers_fired, 0);
        assert_eq!(result.target.total_tuples(), 0);
    }

    #[test]
    fn chase_copies_source_nulls() {
        let mapping = SchemaMapping::order_to_customer_example();
        let src = DatabaseBuilder::new()
            .relation("Order", &["o_id", "product"])
            .tuple("Order", vec![Value::str("oid1"), Value::null(0)])
            .build();
        let result = chase(&src, &mapping);
        // The product null ⊥0 is copied into Pref, and the fresh customer null
        // gets a new identifier (≥ 1).
        let pref = result.target.relation("Pref").unwrap();
        assert_eq!(pref.len(), 1);
        let t = pref.iter().next().unwrap();
        assert_eq!(t.values()[1], Value::null(0));
        assert!(t.values()[0].as_null().unwrap().0 >= 1);
    }

    #[test]
    fn all_matches_enumerates_joins() {
        // body: Order(x, y) ∧ Order(z, y) over two orders with distinct products
        // matches only the diagonal pairs.
        let atoms = vec![
            Atom::new("Order", vec![Term::var(0), Term::var(1)]),
            Atom::new("Order", vec![Term::var(2), Term::var(1)]),
        ];
        let matches = all_matches(&atoms, &source());
        assert_eq!(matches.len(), 2);
        // constants in the body restrict matches
        let atoms = vec![Atom::new("Order", vec![Term::var(0), Term::str("pr1")])];
        assert_eq!(all_matches(&atoms, &source()).len(), 1);
        // unknown relation yields no matches
        let atoms = vec![Atom::new("Nope", vec![Term::var(0)])];
        assert!(all_matches(&atoms, &source()).is_empty());
    }
}
