//! Solutions, universal solutions, and certain answers in data exchange.
//!
//! A target instance `J` is a *solution* for a source `I` under a mapping `M`
//! if every tgd is satisfied: every match of a body in `I` extends to a match
//! of the head in `J`. The chase result is a *universal* solution: it maps
//! homomorphically into every solution, which is exactly why certain answers
//! to UCQs over the target can be computed by naïve evaluation on it (the
//! standard data-exchange result the paper's applications section refers to).

use std::collections::BTreeMap;

use certain_core::homomorphism::{is_homomorphic, HomKind};
use engine::{Engine, EngineError, StrategyKind};
use relalgebra::ast::RaExpr;
use relalgebra::cq::Term;
use relmodel::value::Value;
use relmodel::{Database, Relation};

use crate::chase::{all_matches, chase};
use crate::mapping::SchemaMapping;

/// Is `target` a solution for `source` under the mapping — does it satisfy all
/// st-tgds?
pub fn is_solution(source: &Database, target: &Database, mapping: &SchemaMapping) -> bool {
    for tgd in &mapping.tgds {
        for binding in all_matches(&tgd.body, source) {
            // The head, with universal variables bound, must have at least one
            // match in the target extending the binding.
            let head_matches = all_matches_with_seed(&tgd.head, target, &binding);
            if head_matches.is_empty() {
                return false;
            }
        }
    }
    true
}

fn all_matches_with_seed(
    atoms: &[relalgebra::cq::Atom],
    db: &Database,
    seed: &BTreeMap<u64, Value>,
) -> Vec<BTreeMap<u64, Value>> {
    // Substitute the seed into the atoms, then enumerate matches of the rest.
    let substituted: Vec<relalgebra::cq::Atom> = atoms
        .iter()
        .map(|a| {
            relalgebra::cq::Atom::new(
                a.relation.clone(),
                a.terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => match seed.get(v) {
                            Some(Value::Const(c)) => Term::Const(c.clone()),
                            // A null bound by the seed cannot be written as a CQ
                            // constant; keep it a variable and filter below.
                            Some(Value::Null(_)) | None => t.clone(),
                        },
                        c => c.clone(),
                    })
                    .collect(),
            )
        })
        .collect();
    all_matches(&substituted, db)
        .into_iter()
        .filter(|m| {
            // any variable the seed bound to a null must be matched to exactly
            // that null in the target
            seed.iter().all(|(v, val)| match val {
                Value::Null(_) => m.get(v).is_none_or(|found| found == val),
                Value::Const(_) => true,
            })
        })
        .collect()
}

/// Is `candidate` universal for the given set of solutions — does it map
/// homomorphically into each of them?
pub fn is_universal_for(candidate: &Database, solutions: &[Database]) -> bool {
    solutions
        .iter()
        .all(|s| is_homomorphic(candidate, s, HomKind::Any))
}

/// Certain answers to a target query in data exchange: chase the source, then
/// evaluate the query naïvely over the canonical target instance and keep the
/// null-free tuples. Correct for unions of conjunctive queries (the classical
/// Fagin–Kolaitis–Miller–Popa result) — which is why the engine strategy is
/// pinned to naïve evaluation here rather than left to the planner.
pub fn certain_answer_exchange(
    source: &Database,
    mapping: &SchemaMapping,
    query: &RaExpr,
) -> Result<Relation, EngineError> {
    Ok(exchange_and_answer(source, mapping, query)?.certain)
}

/// A convenience bundle: the chased target plus the certain answer to a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeAnswer {
    /// The canonical (universal) target instance.
    pub canonical_target: Database,
    /// The certain answer computed over it.
    pub certain: Relation,
    /// The naïve (object-level) answer, nulls included.
    pub naive_object: Relation,
}

/// Runs the full pipeline: chase, naïve evaluation through the engine,
/// certain answer.
pub fn exchange_and_answer(
    source: &Database,
    mapping: &SchemaMapping,
    query: &RaExpr,
) -> Result<ExchangeAnswer, EngineError> {
    let chased = chase(source, mapping);
    let report = Engine::new(&chased.target).plan_with(StrategyKind::NaiveExact, query)?;
    let naive_object = report
        .object_answer
        .expect("naïve evaluation always yields an object answer");
    Ok(ExchangeAnswer {
        canonical_target: chased.target,
        certain: report.answers,
        naive_object,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::{DatabaseBuilder, Tuple};

    fn source() -> Database {
        DatabaseBuilder::new()
            .relation("Order", &["o_id", "product"])
            .strs("Order", &["oid1", "pr1"])
            .strs("Order", &["oid2", "pr2"])
            .build()
    }

    #[test]
    fn chase_result_is_a_solution_and_universal() {
        let mapping = SchemaMapping::order_to_customer_example();
        let src = source();
        let canonical = chase(&src, &mapping).target;
        assert!(is_solution(&src, &canonical, &mapping));

        // Another solution: a single concrete customer for both products.
        let other = DatabaseBuilder::new()
            .relation("Cust", &["cust"])
            .relation("Pref", &["cust", "product"])
            .strs("Cust", &["alice"])
            .strs("Pref", &["alice", "pr1"])
            .strs("Pref", &["alice", "pr2"])
            .build();
        assert!(is_solution(&src, &other, &mapping));
        assert!(is_universal_for(&canonical, std::slice::from_ref(&other)));
        // The concrete solution is NOT universal: constants cannot be mapped away.
        assert!(!is_universal_for(&other, &[canonical]));
    }

    #[test]
    fn non_solution_detected() {
        let mapping = SchemaMapping::order_to_customer_example();
        let src = source();
        let missing_pref = DatabaseBuilder::new()
            .relation("Cust", &["cust"])
            .relation("Pref", &["cust", "product"])
            .strs("Cust", &["alice"])
            .strs("Pref", &["alice", "pr1"])
            .build();
        assert!(!is_solution(&src, &missing_pref, &mapping));
    }

    #[test]
    fn certain_answers_over_exchange() {
        let mapping = SchemaMapping::order_to_customer_example();
        let src = source();
        // "Which products does some customer prefer?" — certain: pr1, pr2.
        let q = RaExpr::relation("Pref").project(vec![1]);
        let certain = certain_answer_exchange(&src, &mapping, &q).unwrap();
        assert_eq!(certain.len(), 2);
        // "Which customers exist?" — none certain (they are all nulls).
        let q = RaExpr::relation("Cust");
        let certain = certain_answer_exchange(&src, &mapping, &q).unwrap();
        assert!(certain.is_empty());
        // But the object-level answer retains the two marked nulls.
        let full = exchange_and_answer(&src, &mapping, &RaExpr::relation("Cust")).unwrap();
        assert_eq!(full.naive_object.len(), 2);
        assert!(full.certain.is_empty());
    }

    #[test]
    fn join_query_over_exchange_uses_marked_nulls() {
        // "Pairs of products preferred by the same customer": thanks to marked
        // nulls, pr1 is certainly co-preferred with pr1 (trivially), and the
        // join respects null identity across Cust/Pref.
        let mapping = SchemaMapping::order_to_customer_example();
        let src = source();
        let q = RaExpr::relation("Pref")
            .product(RaExpr::relation("Pref"))
            .select(Predicate::eq(Operand::col(0), Operand::col(2)))
            .project(vec![1, 3]);
        let ans = certain_answer_exchange(&src, &mapping, &q).unwrap();
        assert!(ans.contains(&Tuple::strs(&["pr1", "pr1"])));
        assert!(ans.contains(&Tuple::strs(&["pr2", "pr2"])));
        // pr1/pr2 are *not* certainly co-preferred (different unknown customers).
        assert!(!ans.contains(&Tuple::strs(&["pr1", "pr2"])));
    }
}
