//! Operational form of the paper's main theorem: *naïve evaluation works for
//! monotone generic queries* (Section 6), with the two concrete corollaries
//!
//! * OWA-naïve evaluation works for UCQs (positive relational algebra), and
//! * CWA-naïve evaluation works for `RA_cwa` (= `Pos∀G`).
//!
//! The module predicts correctness from the query's syntactic class, checks it
//! empirically against possible-world ground truth, and offers an empirical
//! monotonicity check under the information orderings.

use engine::{Engine, EngineError, EngineOptions, StrategyKind};
use relalgebra::ast::RaExpr;
use relalgebra::classify::{classify, QueryClass};
use releval::worlds::WorldOptions;
use relmodel::{Database, Relation, Semantics};

use crate::certainty::answer_database;
use crate::ordering::{less_informative, InfoOrdering};

/// The outcome of checking naïve evaluation on a concrete query and database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveEvaluationReport {
    /// Syntactic class of the query.
    pub class: QueryClass,
    /// Whether the paper's theorems guarantee correctness for this class under
    /// the chosen semantics.
    pub guaranteed: bool,
    /// The classical certain answer computed naïvely (`Q(D)_cmpl`).
    pub naive_certain: Relation,
    /// The possible-world ground truth.
    pub ground_truth: Relation,
    /// Did they agree on this instance?
    pub agrees: bool,
}

impl NaiveEvaluationReport {
    /// True when the guarantee and the observation are consistent: a
    /// guaranteed query must agree with ground truth (an unguaranteed one may
    /// or may not).
    pub fn consistent_with_theory(&self) -> bool {
        !self.guaranteed || self.agrees
    }
}

/// Checks whether naïve evaluation computes the classical certain answer for
/// `query` on `db` under `semantics`, and relates the observation to the
/// syntactic guarantee.
pub fn naive_evaluation_works(
    query: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<NaiveEvaluationReport, EngineError> {
    let class = classify(query);
    let guaranteed = class.naive_evaluation_sound(semantics);
    let engine = Engine::new(db)
        .semantics(semantics)
        .options(EngineOptions::exhaustive().with_world_options(*opts));
    let naive_certain = engine.plan_with(StrategyKind::NaiveExact, query)?.answers;
    let ground_truth = engine.ground_truth(query)?.answers;
    let agrees = naive_certain == ground_truth;
    Ok(NaiveEvaluationReport {
        class,
        guaranteed,
        naive_certain,
        ground_truth,
        agrees,
    })
}

/// Empirically checks monotonicity of a query between two databases ordered by
/// the information ordering of the semantics: if `a ⪯ b` then the naïve
/// answers must satisfy `Q(a) ⪯ Q(b)` (the "more informative inputs give more
/// informative outputs" principle of Section 6).
///
/// Returns `None` if `a ⪯ b` does not hold (nothing to check), and otherwise
/// whether the implication's conclusion holds.
pub fn monotone_on_pair(
    query: &RaExpr,
    a: &Database,
    b: &Database,
    semantics: Semantics,
) -> Result<Option<bool>, EngineError> {
    let ordering = InfoOrdering::for_semantics(semantics);
    if !less_informative(a, b, ordering) {
        return Ok(None);
    }
    let naive_object = |db: &Database| -> Result<Relation, EngineError> {
        let report = Engine::new(db)
            .semantics(semantics)
            .plan_with(StrategyKind::NaiveExact, query)?;
        Ok(report
            .object_answer
            .expect("naïve evaluation always yields an object answer"))
    };
    let qa = answer_database(&naive_object(a)?);
    let qb = answer_database(&naive_object(b)?);
    Ok(Some(less_informative(&qa, &qb, ordering)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::builder::{difference_example, orders_and_payments_example};
    use relmodel::valuation::Valuation;
    use relmodel::value::{Constant, NullId};
    use relmodel::{DatabaseBuilder, Value};

    #[test]
    fn positive_queries_are_guaranteed_and_agree() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Order")
            .product(RaExpr::relation("Pay"))
            .select(Predicate::eq(Operand::col(0), Operand::col(3)))
            .project(vec![0, 2]);
        for semantics in [Semantics::Owa, Semantics::Cwa] {
            let report =
                naive_evaluation_works(&q, &db, semantics, &WorldOptions::default()).unwrap();
            assert_eq!(report.class, QueryClass::Positive);
            assert!(report.guaranteed);
            assert!(report.agrees);
            assert!(report.consistent_with_theory());
        }
    }

    #[test]
    fn difference_query_fails_and_is_unguaranteed() {
        let db = difference_example();
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        let report =
            naive_evaluation_works(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert_eq!(report.class, QueryClass::FullRa);
        assert!(!report.guaranteed);
        assert!(
            !report.agrees,
            "naïve evaluation overclaims {{1,2}} while certain answer is ∅"
        );
        assert!(report.consistent_with_theory());
    }

    #[test]
    fn division_is_guaranteed_under_cwa_but_not_owa() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .ints("S", &[10])
            .ints("S", &[20])
            .build();
        let q = RaExpr::relation("R").divide(RaExpr::relation("S"));
        let cwa =
            naive_evaluation_works(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert_eq!(cwa.class, QueryClass::RaCwa);
        assert!(cwa.guaranteed);
        assert!(cwa.agrees);
        let owa = naive_evaluation_works(&q, &db, Semantics::Owa, &WorldOptions::with_owa_extra(1))
            .unwrap();
        assert!(!owa.guaranteed);
        // Under OWA with extra tuples, the division certain answer shrinks: the
        // naïve answer need not agree (and on this instance it does not, since
        // adding a new S-value can break membership).
        assert!(!owa.agrees);
        assert!(owa.consistent_with_theory());
    }

    #[test]
    fn monotonicity_of_positive_queries_between_db_and_world() {
        let db = orders_and_payments_example();
        let v = Valuation::from_pairs(vec![(NullId(0), Constant::Str("oid1".into()))]);
        let world = db.apply(&v).unwrap();
        let q = RaExpr::relation("Pay").project(vec![1]);
        for semantics in [Semantics::Owa, Semantics::Cwa] {
            assert_eq!(
                monotone_on_pair(&q, &db, &world, semantics).unwrap(),
                Some(true)
            );
        }
        // A non-monotone query violates the principle under CWA on this pair:
        let nonmono = RaExpr::relation("Order")
            .project(vec![0])
            .difference(RaExpr::relation("Pay").project(vec![1]));
        assert_eq!(
            monotone_on_pair(&nonmono, &db, &world, Semantics::Cwa).unwrap(),
            Some(false)
        );
    }

    #[test]
    fn monotone_on_unrelated_pair_returns_none() {
        let a = DatabaseBuilder::new()
            .relation("R", &["x"])
            .ints("R", &[1])
            .build();
        let b = DatabaseBuilder::new()
            .relation("R", &["x"])
            .ints("R", &[2])
            .build();
        let q = RaExpr::relation("R");
        assert_eq!(monotone_on_pair(&q, &a, &b, Semantics::Owa).unwrap(), None);
    }
}
