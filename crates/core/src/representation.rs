//! Representation systems (Section 5.1–5.2 of the paper): the triple of
//! objects, complete objects and semantics, together with a class of formulas
//! that can define the semantics of every object and respect the information
//! ordering.
//!
//! Two concrete systems are provided for relational databases:
//!
//! * [`OwaSystem`] — semantics `[[·]]_owa`, formulas: unions of conjunctive
//!   queries (existential positive); `δ_D = ∃x̄ PosDiag(D)`.
//! * [`CwaSystem`] — semantics `[[·]]_cwa`, formulas: `Pos∀G`;
//!   `δ_D` additionally asserts domain closure.
//!
//! The trait exposes the pieces needed by the rest of the crate and by the
//! experiment harness: the defining formula `δ_x`, membership of a formula in
//! the system's class, the matching information ordering, and finite checks of
//! the representation-system axioms.

use relalgebra::fo::Formula;
use releval::fo::satisfies;
use relmodel::{Database, Semantics};

use crate::knowledge::theory_of;
use crate::ordering::{less_informative, InfoOrdering};

/// A representation system for relational databases under a fixed semantics.
pub trait RepresentationSystem {
    /// The possible-world semantics of the system.
    fn semantics(&self) -> Semantics;

    /// The information ordering associated with the semantics.
    fn ordering(&self) -> InfoOrdering {
        InfoOrdering::for_semantics(self.semantics())
    }

    /// The defining formula `δ_x` of an object, with `Mod_C(δ_x) = [[x]]`.
    fn delta(&self, db: &Database) -> Formula {
        theory_of(db, self.semantics())
    }

    /// Is a formula in the system's formula class?
    fn formula_in_class(&self, formula: &Formula) -> bool;

    /// Axiom check on concrete complete objects: every complete database in
    /// the (enumerated fragment of the) semantics of `db` must (a) satisfy
    /// `δ_db` and (b) be at least as informative as `db`. Returns `true` when
    /// both hold for every provided world.
    fn worlds_respect_axioms(&self, db: &Database, worlds: &[Database]) -> bool {
        let delta = self.delta(db);
        worlds
            .iter()
            .all(|w| satisfies(w, &delta) && less_informative(db, w, self.ordering()))
    }
}

/// The OWA representation system `⟨D_owa(σ), UCQ⟩`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OwaSystem;

impl RepresentationSystem for OwaSystem {
    fn semantics(&self) -> Semantics {
        Semantics::Owa
    }

    fn formula_in_class(&self, formula: &Formula) -> bool {
        formula.is_existential_positive()
    }
}

/// The CWA representation system `⟨D_cwa(σ), Pos∀G⟩`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CwaSystem;

impl RepresentationSystem for CwaSystem {
    fn semantics(&self) -> Semantics {
        Semantics::Cwa
    }

    fn formula_in_class(&self, formula: &Formula) -> bool {
        formula.is_pos_forall_g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::builder::tableau_example;
    use relmodel::semantics::{enumerate_cwa_worlds, enumerate_owa_worlds};
    use relmodel::value::Constant;

    #[test]
    fn deltas_are_in_their_formula_class() {
        let db = tableau_example();
        let owa = OwaSystem;
        let cwa = CwaSystem;
        assert!(owa.formula_in_class(&owa.delta(&db)));
        assert!(cwa.formula_in_class(&cwa.delta(&db)));
        // The CWA delta is not existential positive; the OWA delta is in Pos∀G
        // (the classes are nested).
        assert!(!owa.formula_in_class(&cwa.delta(&db)));
        assert!(cwa.formula_in_class(&owa.delta(&db)));
    }

    #[test]
    fn axioms_hold_on_enumerated_worlds() {
        let db = tableau_example();
        let domain = vec![Constant::Int(1), Constant::Int(2), Constant::Int(9)];
        let cwa_worlds = enumerate_cwa_worlds(&db, &domain);
        assert!(CwaSystem.worlds_respect_axioms(&db, &cwa_worlds));
        let owa_worlds = enumerate_owa_worlds(&db, &domain, 1);
        assert!(OwaSystem.worlds_respect_axioms(&db, &owa_worlds));
    }

    #[test]
    fn owa_axioms_fail_for_cwa_system_on_extended_worlds() {
        // A world with an extra tuple is an OWA world but not a CWA world: the
        // CWA axioms must reject it.
        let db = tableau_example();
        let domain = vec![Constant::Int(1), Constant::Int(2), Constant::Int(9)];
        let extended = enumerate_owa_worlds(&db, &domain, 1)
            .into_iter()
            .filter(|w| w.total_tuples() > 2)
            .collect::<Vec<_>>();
        assert!(!extended.is_empty());
        assert!(!CwaSystem.worlds_respect_axioms(&db, &extended));
        assert!(OwaSystem.worlds_respect_axioms(&db, &extended));
    }

    #[test]
    fn orderings_match_semantics() {
        assert_eq!(OwaSystem.ordering(), InfoOrdering::Owa);
        assert_eq!(CwaSystem.ordering(), InfoOrdering::Cwa);
        assert_eq!(OwaSystem.semantics(), Semantics::Owa);
        assert_eq!(CwaSystem.semantics(), Semantics::Cwa);
    }
}
