//! Certain information as an **object**: greatest lower bounds under the
//! information orderings, and the unified certain-answer API.
//!
//! Section 5.3 of the paper defines `certainO(X) = ⋀X`: the most informative
//! object that is below every member of `X`. Section 6 then shows that for
//! monotone generic queries `certainO(Q, x) = Q(x)` — the naïvely evaluated
//! answer *is* the object-level certain answer. This module provides:
//!
//! * checking that a candidate is a lower bound / greatest lower bound of a
//!   finite set of answers ([`is_lower_bound`], [`is_glb`]);
//! * the direct-product construction [`glb_owa`], which computes `a ⋀ b`
//!   under `⪯_owa` for two databases;
//! * [`CertainAnswers`], a façade tying together naïve evaluation, the
//!   classical intersection answer, possible-world ground truth, and the
//!   object/knowledge notions of certainty.

use std::collections::BTreeMap;

use engine::{Engine, EngineError, EngineOptions, StrategyKind};
use relalgebra::ast::RaExpr;
use relalgebra::fo::Formula;
use releval::worlds::{possible_answers, WorldOptions};
use releval::EvalError;
use relmodel::value::{NullId, Value};
use relmodel::{Database, Relation, Schema, Semantics, Tuple};

use crate::knowledge::certain_knowledge;
use crate::ordering::{less_informative, InfoOrdering};

/// Name of the relation used when a query answer is viewed as a database
/// object (so that the information orderings apply to it).
pub const ANSWER_RELATION: &str = "Ans";

/// Wraps a relation as a single-relation database named [`ANSWER_RELATION`],
/// so query answers can be compared in the information orderings.
pub fn answer_database(rel: &Relation) -> Database {
    let attrs: Vec<String> = (0..rel.arity()).map(|i| format!("c{i}")).collect();
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let schema = Schema::builder()
        .relation(ANSWER_RELATION, &attr_refs)
        .build();
    let mut db = Database::new(schema);
    for t in rel.iter() {
        db.insert(ANSWER_RELATION, t.clone())
            .expect("arity matches by construction");
    }
    db
}

/// Is `candidate ⪯ x` for every `x` in `set`?
pub fn is_lower_bound(candidate: &Database, set: &[Database], ordering: InfoOrdering) -> bool {
    set.iter().all(|x| less_informative(candidate, x, ordering))
}

/// Is `candidate` a greatest lower bound of `set` *relative to the given
/// competitors*: a lower bound such that every competitor that is also a lower
/// bound is `⪯ candidate`?
///
/// A true glb check would quantify over all objects; restricting to an
/// explicit finite set of competitors is what makes the property checkable,
/// and is exactly how experiment E10 exhibits that the intersection-based
/// answer fails to be a glb under CWA while the naïve answer is one.
pub fn is_glb(
    candidate: &Database,
    set: &[Database],
    competitors: &[Database],
    ordering: InfoOrdering,
) -> bool {
    if !is_lower_bound(candidate, set, ordering) {
        return false;
    }
    competitors
        .iter()
        .filter(|c| is_lower_bound(c, set, ordering))
        .all(|c| less_informative(c, candidate, ordering))
}

/// The greatest lower bound of two databases under `⪯_owa`, computed by the
/// direct-product construction: tuples are paired position-wise; a pair of
/// equal constants stays that constant, every other pair becomes a marked
/// null (the same pair always becoming the same null).
pub fn glb_owa(a: &Database, b: &Database) -> Result<Database, EvalError> {
    let schema = a.schema().merge(b.schema()).map_err(EvalError::Model)?;
    let mut out = Database::new(schema.clone());
    let mut pair_nulls: BTreeMap<(Value, Value), NullId> = BTreeMap::new();
    let mut next_null = 0u64;
    for rs in schema.iter() {
        let (Some(ra), Some(rb)) = (a.relation(&rs.name), b.relation(&rs.name)) else {
            continue;
        };
        for ta in ra.iter() {
            for tb in rb.iter() {
                let paired: Tuple = ta
                    .values()
                    .iter()
                    .zip(tb.values().iter())
                    .map(|(x, y)| {
                        if x == y && x.is_const() {
                            x.clone()
                        } else {
                            let id =
                                *pair_nulls.entry((x.clone(), y.clone())).or_insert_with(|| {
                                    let id = NullId(next_null);
                                    next_null += 1;
                                    id
                                });
                            Value::Null(id)
                        }
                    })
                    .collect();
                out.insert(&rs.name, paired).map_err(EvalError::Model)?;
            }
        }
    }
    Ok(out)
}

/// A façade bundling the different notions of "answer to a query over an
/// incomplete database" that the paper contrasts.
///
/// Since the engine redesign this façade no longer duplicates evaluator
/// dispatch: every answer is obtained through [`engine::Engine`], with the
/// strategy forced where the façade's contract names a specific notion
/// (naïve evaluation for `certainO`, world enumeration for ground truth).
#[derive(Debug, Clone)]
pub struct CertainAnswers {
    /// Which possible-world semantics governs the input database.
    pub semantics: Semantics,
    /// Options for the possible-world ground truth.
    pub world_options: WorldOptions,
}

impl CertainAnswers {
    /// Creates the façade for a semantics with default world options.
    pub fn new(semantics: Semantics) -> Self {
        CertainAnswers {
            semantics,
            world_options: WorldOptions::default(),
        }
    }

    /// Sets custom world-enumeration options.
    pub fn with_world_options(mut self, opts: WorldOptions) -> Self {
        self.world_options = opts;
        self
    }

    /// The engine this façade evaluates through, borrowing `db`.
    pub fn engine<'a>(&self, db: &'a Database) -> Engine<&'a Database> {
        Engine::new(db)
            .semantics(self.semantics)
            .options(EngineOptions::exhaustive().with_world_options(self.world_options))
    }

    /// `certainO(Q, D) = Q(D)`: the object-level certain answer, i.e. the
    /// naïvely evaluated answer (correct for monotone generic queries by the
    /// paper's main theorem; use [`CertainAnswers::naive_is_correct`] to check
    /// a particular query empirically).
    pub fn certain_object(&self, query: &RaExpr, db: &Database) -> Result<Relation, EngineError> {
        let report = self.engine(db).plan_with(StrategyKind::NaiveExact, query)?;
        Ok(report
            .object_answer
            .expect("naïve evaluation always yields an object answer"))
    }

    /// The classical, intersection-style certain tuples computed naïvely:
    /// `Q(D)_cmpl` (equation (4) of the paper).
    pub fn certain_tuples(&self, query: &RaExpr, db: &Database) -> Result<Relation, EngineError> {
        Ok(self
            .engine(db)
            .plan_with(StrategyKind::NaiveExact, query)?
            .answers)
    }

    /// `certainK(Q, D)`: the knowledge-level certain answer, as a logical
    /// formula (the diagram of the naïve answer under the answer semantics).
    pub fn certain_knowledge(&self, query: &RaExpr, db: &Database) -> Result<Formula, EngineError> {
        Ok(certain_knowledge(query, db, self.semantics)?)
    }

    /// The possible-world ground truth for the classical certain answer —
    /// exponential in the number of nulls.
    pub fn ground_truth(&self, query: &RaExpr, db: &Database) -> Result<Relation, EngineError> {
        Ok(self.engine(db).ground_truth(query)?.answers)
    }

    /// All answers over the enumerated possible worlds, as database objects
    /// (for ordering-based analyses).
    pub fn answer_objects(
        &self,
        query: &RaExpr,
        db: &Database,
    ) -> Result<Vec<Database>, EngineError> {
        let answers = possible_answers(query, db, self.semantics, &self.world_options)
            .map_err(EngineError::from)?;
        Ok(answers.iter().map(answer_database).collect())
    }

    /// Does naïve evaluation compute the classical certain answer for this
    /// query on this database (checked against ground truth)?
    pub fn naive_is_correct(&self, query: &RaExpr, db: &Database) -> Result<bool, EngineError> {
        Ok(self.certain_tuples(query, db)? == self.ground_truth(query, db)?)
    }

    /// Is the naïve answer `Q(D)` a greatest lower bound of the possible
    /// answers `Q([[D]])` under the ordering matching the semantics, when
    /// compared against the natural competitors (the classical intersection
    /// answer and every individual possible answer)?
    pub fn naive_answer_is_glb(&self, query: &RaExpr, db: &Database) -> Result<bool, EngineError> {
        let ordering = InfoOrdering::for_semantics(self.semantics);
        let answers = self.answer_objects(query, db)?;
        let candidate = answer_database(&self.certain_object(query, db)?);
        let mut competitors = vec![answer_database(&self.ground_truth(query, db)?)];
        competitors.extend(answers.iter().cloned());
        Ok(is_glb(&candidate, &answers, &competitors, ordering))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::builder::{difference_example, orders_and_payments_example};
    use relmodel::DatabaseBuilder;

    #[test]
    fn answer_database_wraps_relations() {
        let rel = Relation::from_tuples(2, vec![Tuple::ints(&[1, 2])]);
        let db = answer_database(&rel);
        assert_eq!(db.relation(ANSWER_RELATION).unwrap().len(), 1);
        assert_eq!(db.schema().relation(ANSWER_RELATION).unwrap().arity(), 2);
    }

    #[test]
    fn lower_bounds_and_glb_checks() {
        let a = answer_database(&Relation::from_tuples(1, vec![Tuple::ints(&[1])]));
        let b = answer_database(&Relation::from_tuples(
            1,
            vec![Tuple::ints(&[1]), Tuple::ints(&[2])],
        ));
        let empty = answer_database(&Relation::new(1));
        // Under OWA, ∅ ⪯ a ⪯ b.
        assert!(is_lower_bound(
            &empty,
            &[a.clone(), b.clone()],
            InfoOrdering::Owa
        ));
        assert!(is_lower_bound(
            &a,
            &[a.clone(), b.clone()],
            InfoOrdering::Owa
        ));
        assert!(is_glb(
            &a,
            &[a.clone(), b.clone()],
            &[empty.clone(), a.clone(), b.clone()],
            InfoOrdering::Owa
        ));
        assert!(!is_glb(
            &empty,
            &[a.clone(), b.clone()],
            &[empty.clone(), a.clone(), b.clone()],
            InfoOrdering::Owa
        ));
        // Under CWA, a is NOT below b (no strong onto homomorphism).
        assert!(!is_lower_bound(
            &a,
            std::slice::from_ref(&b),
            InfoOrdering::Cwa
        ));
    }

    #[test]
    fn glb_owa_product_construction() {
        // glb of {(1)} and {(1),(2)} under ⪯_owa is (up to equivalence) {(1)} —
        // with a couple of null tuples from non-matching pairs, which do not add
        // information.
        let a = answer_database(&Relation::from_tuples(1, vec![Tuple::ints(&[1])]));
        let b = answer_database(&Relation::from_tuples(
            1,
            vec![Tuple::ints(&[1]), Tuple::ints(&[2])],
        ));
        let g = glb_owa(&a, &b).unwrap();
        assert!(is_lower_bound(
            &g,
            &[a.clone(), b.clone()],
            InfoOrdering::Owa
        ));
        // and it is above the plain {(1)} candidate? Both are lower bounds and
        // must be equivalent as glbs:
        assert!(
            less_informative(&a, &g, InfoOrdering::Owa)
                || less_informative(&g, &a, InfoOrdering::Owa)
        );
    }

    #[test]
    fn intersection_answer_fails_to_be_glb_under_cwa() {
        // The §6 example: D has R = {(1,2),(2,⊥)}, Q returns R.
        // The intersection answer {(1,2)} is *not* below the possible answers
        // under ⪯_cwa; the naïve answer R itself is.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[1, 2])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .build();
        let q = RaExpr::relation("R");
        let ca = CertainAnswers::new(Semantics::Cwa);
        let answers = ca.answer_objects(&q, &db).unwrap();
        let intersection = answer_database(&ca.ground_truth(&q, &db).unwrap());
        let naive = answer_database(&ca.certain_object(&q, &db).unwrap());
        assert!(!is_lower_bound(&intersection, &answers, InfoOrdering::Cwa));
        assert!(is_lower_bound(&naive, &answers, InfoOrdering::Cwa));
        assert!(ca.naive_answer_is_glb(&q, &db).unwrap());
        // Under OWA the intersection answer *is* a lower bound.
        let ca_owa = CertainAnswers::new(Semantics::Owa);
        let answers_owa = ca_owa.answer_objects(&q, &db).unwrap();
        assert!(is_lower_bound(
            &intersection,
            &answers_owa,
            InfoOrdering::Owa
        ));
    }

    #[test]
    fn facade_on_positive_queries() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Order").project(vec![0]);
        for semantics in [Semantics::Owa, Semantics::Cwa] {
            let ca = CertainAnswers::new(semantics);
            assert!(ca.naive_is_correct(&q, &db).unwrap());
            assert!(ca.naive_answer_is_glb(&q, &db).unwrap());
            assert_eq!(ca.certain_tuples(&q, &db).unwrap().len(), 2);
        }
    }

    #[test]
    fn facade_detects_naive_failure() {
        // π_A(R − S) with R={(1,⊥0)}, S={(1,⊥1)}: naïve answer {1}, certain ∅.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .tuple("S", vec![Value::int(1), Value::null(1)])
            .build();
        let q = RaExpr::relation("R")
            .difference(RaExpr::relation("S"))
            .project(vec![0]);
        let ca = CertainAnswers::new(Semantics::Cwa);
        assert!(!ca.naive_is_correct(&q, &db).unwrap());
    }

    #[test]
    fn division_query_is_correct_under_cwa_only() {
        // R(a,b) with a null; q = R ÷ S (division by a base relation).
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .ints("S", &[10])
            .ints("S", &[20])
            .build();
        let q = RaExpr::relation("R").divide(RaExpr::relation("S"));
        let cwa = CertainAnswers::new(Semantics::Cwa);
        assert!(cwa.naive_is_correct(&q, &db).unwrap());
        let tuples = cwa.certain_tuples(&q, &db).unwrap();
        assert_eq!(tuples.len(), 1);
        assert!(tuples.contains(&Tuple::ints(&[1])));
    }

    #[test]
    fn tautology_query_certain_knowledge_and_truth() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Pay")
            .select(
                Predicate::eq(Operand::col(1), Operand::str("oid1"))
                    .or(Predicate::neq(Operand::col(1), Operand::str("oid1"))),
            )
            .project(vec![0]);
        let ca = CertainAnswers::new(Semantics::Cwa);
        // Ground truth says pid1 is a certain answer; naïve evaluation agrees
        // because the query's naive evaluation keeps the row. (The query is not
        // positive, but on this instance naïve evaluation happens to coincide.)
        let truth = ca.ground_truth(&q, &db).unwrap();
        assert_eq!(truth.len(), 1);
        let knowledge = ca.certain_knowledge(&q, &db).unwrap();
        assert!(knowledge.is_sentence());
    }

    #[test]
    fn difference_example_objects() {
        let db = difference_example();
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        let ca = CertainAnswers::new(Semantics::Cwa);
        // naive answer {1,2}; ground truth ∅ — and indeed naive is not correct here
        assert!(!ca.naive_is_correct(&q, &db).unwrap());
    }
}
