//! Information orderings on incomplete databases.
//!
//! `x ⪯ y` reads "`y` is at least as informative as `x`" and is defined
//! semantically by `[[y]] ⊆ [[x]]`. For relational databases the orderings are
//! characterised by homomorphisms (Section 5.2 of the paper):
//!
//! * `D ⪯_owa D'` ⇔ there is a homomorphism `D → D'`;
//! * `D ⪯_cwa D'` ⇔ there is a strong onto homomorphism `D → D'`;
//! * `D ⪯_wcwa D'` ⇔ there is an onto homomorphism `D → D'` (the weak-CWA
//!   ordering of Reiter's domain-closure semantics).

use relmodel::{Database, Semantics};

use crate::homomorphism::{is_homomorphic, HomKind};

/// The information orderings implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InfoOrdering {
    /// `⪯_owa`: homomorphism existence.
    Owa,
    /// `⪯_cwa`: strong onto homomorphism existence.
    Cwa,
    /// The weak-CWA ordering: onto homomorphism existence.
    WeakCwa,
}

impl InfoOrdering {
    /// The homomorphism kind characterising this ordering.
    pub fn hom_kind(self) -> HomKind {
        match self {
            InfoOrdering::Owa => HomKind::Any,
            InfoOrdering::Cwa => HomKind::StrongOnto,
            InfoOrdering::WeakCwa => HomKind::Onto,
        }
    }

    /// The ordering matching a possible-world semantics.
    pub fn for_semantics(semantics: Semantics) -> InfoOrdering {
        match semantics {
            Semantics::Owa => InfoOrdering::Owa,
            Semantics::Cwa => InfoOrdering::Cwa,
        }
    }
}

impl std::fmt::Display for InfoOrdering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InfoOrdering::Owa => write!(f, "⪯_owa"),
            InfoOrdering::Cwa => write!(f, "⪯_cwa"),
            InfoOrdering::WeakCwa => write!(f, "⪯_wcwa"),
        }
    }
}

/// Is `a ⪯ b` — is `b` at least as informative as `a` — under the ordering?
pub fn less_informative(a: &Database, b: &Database, ordering: InfoOrdering) -> bool {
    is_homomorphic(a, b, ordering.hom_kind())
}

/// Are `a` and `b` equivalent (each at least as informative as the other)
/// under the ordering? Equivalent objects have the same semantics `[[·]]`.
pub fn equivalent(a: &Database, b: &Database, ordering: InfoOrdering) -> bool {
    less_informative(a, b, ordering) && less_informative(b, a, ordering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::builder::tableau_example;
    use relmodel::semantics::enumerate_cwa_worlds;
    use relmodel::value::Constant;
    use relmodel::{DatabaseBuilder, Value};

    #[test]
    fn worlds_are_more_informative_than_their_source() {
        // Every CWA world of D is ⪰ D under both orderings — condition 2 of the
        // definition of a representation system.
        let d = tableau_example();
        let domain = vec![Constant::Int(1), Constant::Int(2), Constant::Int(9)];
        for world in enumerate_cwa_worlds(&d, &domain) {
            assert!(less_informative(&d, &world, InfoOrdering::Owa));
            assert!(less_informative(&d, &world, InfoOrdering::Cwa));
            assert!(less_informative(&d, &world, InfoOrdering::WeakCwa));
        }
    }

    #[test]
    fn owa_is_coarser_than_cwa() {
        let d = tableau_example();
        let mut bigger = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[1, 9])
            .ints("R", &[9, 2])
            .build();
        // The instantiated-and-extended database is above d for OWA…
        bigger
            .insert("R", relmodel::Tuple::ints(&[50, 60]))
            .unwrap();
        assert!(less_informative(&d, &bigger, InfoOrdering::Owa));
        // …but not for CWA (the extra tuple has no preimage).
        assert!(!less_informative(&d, &bigger, InfoOrdering::Cwa));
    }

    #[test]
    fn orderings_are_reflexive_and_transitive_on_examples() {
        let d = tableau_example();
        let less = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .tuple("R", vec![Value::null(7), Value::null(8)])
            .build();
        for ord in [InfoOrdering::Owa, InfoOrdering::Cwa, InfoOrdering::WeakCwa] {
            assert!(less_informative(&d, &d, ord), "reflexivity under {ord}");
        }
        // `less` (a single fully-null tuple) is below d under OWA and WeakCwa.
        assert!(less_informative(&less, &d, InfoOrdering::Owa));
        // transitivity: less ⪯ d ⪯ world ⇒ less ⪯ world
        let world = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[1, 3])
            .ints("R", &[3, 2])
            .build();
        assert!(less_informative(&d, &world, InfoOrdering::Owa));
        assert!(less_informative(&less, &world, InfoOrdering::Owa));
    }

    #[test]
    fn equivalence_identifies_renamings() {
        let a = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .tuple("R", vec![Value::null(0), Value::int(1)])
            .build();
        let b = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .tuple("R", vec![Value::null(42), Value::int(1)])
            .build();
        for ord in [InfoOrdering::Owa, InfoOrdering::Cwa] {
            assert!(equivalent(&a, &b, ord));
        }
        let c = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[2, 1])
            .build();
        assert!(!equivalent(&a, &c, InfoOrdering::Owa));
        assert!(less_informative(&a, &c, InfoOrdering::Owa));
    }

    #[test]
    fn ordering_for_semantics() {
        assert_eq!(
            InfoOrdering::for_semantics(Semantics::Owa),
            InfoOrdering::Owa
        );
        assert_eq!(
            InfoOrdering::for_semantics(Semantics::Cwa),
            InfoOrdering::Cwa
        );
        assert_eq!(InfoOrdering::Owa.to_string(), "⪯_owa");
    }
}
