//! # certain-core — the paper's framework for certainty over incomplete data
//!
//! This crate implements the primary contribution of Libkin's PODS 2014
//! keynote (Sections 5 and 6): a principled notion of certain answers built
//! from three ingredients,
//!
//! 1. **representation systems** — objects, complete objects, and a semantics
//!    `[[·]]` assigning to each object the complete objects it denotes
//!    ([`representation`]);
//! 2. **the logical-theory view** — each object `x` has a formula `δ_x` with
//!    `Mod_C(δ_x) = [[x]]` ([`knowledge`], building on `relalgebra::diagram`);
//! 3. **information orderings** — `x ⪯ y  ⇔  [[y]] ⊆ [[x]]`, characterised for
//!    relational databases by homomorphisms (plain for OWA, strong onto for
//!    CWA) ([`ordering`], [`homomorphism`]).
//!
//! From these it derives the two notions of certainty of Section 5.3:
//!
//! * `certainO(X) = ⋀X` — certain information **as an object**: the greatest
//!   lower bound of a set of objects under `⪯` ([`certainty`]);
//! * `certainK(X)` — certain information **as knowledge**: a formula whose
//!   models are exactly the models of `Th(X)` ([`knowledge`]);
//!
//! and the headline theorem of Section 6: for monotone generic queries,
//! `certainO(Q, x) = Q(x)` — *naïve evaluation works* — which
//! [`naive_theorem`] verifies empirically against possible-world ground truth
//! and predicts syntactically from the query class.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certainty;
pub mod homomorphism;
pub mod knowledge;
pub mod naive_theorem;
pub mod ordering;
pub mod representation;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::certainty::{glb_owa, is_glb, is_lower_bound, CertainAnswers};
    pub use crate::homomorphism::{find_homomorphism, is_homomorphic, HomKind, Homomorphism};
    pub use crate::knowledge::{certain_knowledge, knowledge_holds_in_all_worlds};
    pub use crate::naive_theorem::{naive_evaluation_works, NaiveEvaluationReport};
    pub use crate::ordering::{equivalent, less_informative, InfoOrdering};
    pub use crate::representation::{CwaSystem, OwaSystem, RepresentationSystem};
}

pub use certainty::CertainAnswers;
pub use homomorphism::{find_homomorphism, HomKind, Homomorphism};
pub use ordering::{less_informative, InfoOrdering};
