//! Certain information as **knowledge**: `certainK(X)` is a formula whose
//! models are exactly the models of the theory `Th(X)` (equations (6) and (8)
//! of the paper). For query answering, `certainK(Q, x) = δ_{Q(x)}` — the
//! diagram of the naïvely evaluated answer under the answer semantics —
//! whenever the query is monotone and generic (equation (10)).

use relalgebra::ast::RaExpr;
use relalgebra::diagram::{cwa_theory, owa_theory};
use relalgebra::fo::Formula;
use releval::fo::satisfies;
use releval::naive::eval_naive;
use releval::worlds::{possible_answers, WorldOptions};
use releval::EvalError;
use relmodel::{Database, Semantics};

use crate::certainty::answer_database;

/// The knowledge-level certain answer `certainK(Q, D)`: the theory `δ_A` of
/// the naïvely evaluated answer `A = Q(D)`, under the given answer semantics.
pub fn certain_knowledge(
    query: &RaExpr,
    db: &Database,
    semantics: Semantics,
) -> Result<Formula, EvalError> {
    let answer = eval_naive(query, db)?;
    let answer_db = answer_database(&answer);
    Ok(match semantics {
        Semantics::Owa => owa_theory(&answer_db),
        Semantics::Cwa => cwa_theory(&answer_db),
    })
}

/// The theory `δ_x` of an arbitrary database object under a semantics.
pub fn theory_of(db: &Database, semantics: Semantics) -> Formula {
    match semantics {
        Semantics::Owa => owa_theory(db),
        Semantics::Cwa => cwa_theory(db),
    }
}

/// Checks the defining property of certain knowledge on the enumerable
/// fragment of `Q([[D]])`: every possible answer (as a complete database
/// object) must be a model of `certainK(Q, D)`.
///
/// For monotone generic queries this holds by the paper's equation (10); for
/// non-monotone queries it can fail, which the tests exhibit.
pub fn knowledge_holds_in_all_worlds(
    query: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<bool, EvalError> {
    let formula = certain_knowledge(query, db, semantics)?;
    let answers = possible_answers(query, db, semantics, opts)?;
    Ok(answers
        .iter()
        .all(|a| satisfies(&answer_database(a), &formula)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::builder::{orders_and_payments_example, tableau_example};
    use relmodel::{DatabaseBuilder, Value};

    #[test]
    fn certain_knowledge_of_identity_query() {
        // Q = R over the §6 example {(1,2),(2,⊥)}: certainK must hold in every
        // possible answer under both semantics.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[1, 2])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .build();
        let q = RaExpr::relation("R");
        for semantics in [Semantics::Owa, Semantics::Cwa] {
            let k = certain_knowledge(&q, &db, semantics).unwrap();
            assert!(k.is_sentence());
            assert!(
                knowledge_holds_in_all_worlds(&q, &db, semantics, &WorldOptions::default())
                    .unwrap(),
                "certainK must hold in all answers under {semantics}"
            );
        }
    }

    #[test]
    fn owa_knowledge_is_existential_positive_cwa_is_guarded() {
        let db = tableau_example();
        let q = RaExpr::relation("R");
        let owa = certain_knowledge(&q, &db, Semantics::Owa).unwrap();
        assert!(owa.is_existential_positive());
        let cwa = certain_knowledge(&q, &db, Semantics::Cwa).unwrap();
        assert!(cwa.is_pos_forall_g());
        assert!(!cwa.is_existential_positive());
    }

    #[test]
    fn knowledge_fails_for_nonmonotone_query_under_cwa() {
        // π_A(R − S) with R = {(1,⊥0)}, S = {(1,⊥1)}: the naïve answer is {1},
        // so certainK claims Ans(1) — but in worlds where ⊥0 = ⊥1 the answer is
        // empty, falsifying the claim.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .tuple("S", vec![Value::int(1), Value::null(1)])
            .build();
        let q = RaExpr::relation("R")
            .difference(RaExpr::relation("S"))
            .project(vec![0]);
        assert!(
            !knowledge_holds_in_all_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default())
                .unwrap()
        );
    }

    #[test]
    fn knowledge_for_projection_query() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Pay").project(vec![1]);
        let k = certain_knowledge(&q, &db, Semantics::Owa).unwrap();
        // the answer is a single null, so the knowledge is ∃n0 Ans(n0)
        assert!(k.to_string().contains("Ans(n0)"));
        assert!(
            knowledge_holds_in_all_worlds(&q, &db, Semantics::Owa, &WorldOptions::default())
                .unwrap()
        );
    }

    #[test]
    fn theory_of_matches_diagrams() {
        let db = tableau_example();
        assert!(theory_of(&db, Semantics::Owa).is_existential_positive());
        assert!(theory_of(&db, Semantics::Cwa).is_pos_forall_g());
    }
}
