//! Homomorphisms between naïve databases.
//!
//! A homomorphism `h : D → D'` maps the nulls of `D` to values (constants or
//! nulls) of `D'`, is the identity on constants, and sends every tuple of
//! every relation of `D` to a tuple of the same relation of `D'`.
//! Homomorphisms characterise the information orderings of Section 5.2:
//!
//! * `D ⪯_owa D'` iff there is a homomorphism `D → D'`;
//! * `D ⪯_cwa D'` iff there is a **strong onto** homomorphism (`h(D) = D'`);
//! * the weak-CWA ordering uses **onto** homomorphisms
//!   (`h(adom(D)) ⊇ adom(D')`).

use std::collections::{BTreeMap, BTreeSet};

use relmodel::value::{NullId, Value};
use relmodel::{Database, Tuple};

/// Which surjectivity requirement a homomorphism must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HomKind {
    /// No surjectivity requirement (characterises `⪯_owa`).
    Any,
    /// `h(adom(D))` must cover `adom(D')` (characterises the weak-CWA
    /// ordering).
    Onto,
    /// `h(D) = D'`: every tuple of `D'` is the image of a tuple of `D`
    /// (characterises `⪯_cwa`).
    StrongOnto,
}

/// A homomorphism, represented by its action on nulls (constants are fixed).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Homomorphism {
    /// The mapping on nulls.
    pub mapping: BTreeMap<NullId, Value>,
}

impl Homomorphism {
    /// Applies the homomorphism to a value.
    pub fn apply_value(&self, v: &Value) -> Value {
        match v {
            Value::Const(_) => v.clone(),
            Value::Null(n) => self.mapping.get(n).cloned().unwrap_or_else(|| v.clone()),
        }
    }

    /// Applies the homomorphism to a tuple.
    pub fn apply_tuple(&self, t: &Tuple) -> Tuple {
        t.values().iter().map(|v| self.apply_value(v)).collect()
    }

    /// Applies the homomorphism to a whole database.
    pub fn apply(&self, db: &Database) -> Database {
        let mut f = |n: NullId| self.mapping.get(&n).cloned().unwrap_or(Value::Null(n));
        db.map_nulls(&mut f)
    }

    /// Composes two homomorphisms: `(other ∘ self)(x) = other(self(x))`.
    pub fn then(&self, other: &Homomorphism) -> Homomorphism {
        let mut mapping = BTreeMap::new();
        for (n, v) in &self.mapping {
            mapping.insert(*n, other.apply_value(v));
        }
        for (n, v) in &other.mapping {
            mapping.entry(*n).or_insert_with(|| v.clone());
        }
        Homomorphism { mapping }
    }
}

/// Is there a homomorphism of the given kind from `from` to `to`?
pub fn is_homomorphic(from: &Database, to: &Database, kind: HomKind) -> bool {
    find_homomorphism(from, to, kind).is_some()
}

/// Finds a homomorphism of the given kind from `from` to `to`, if one exists.
///
/// The search backtracks over the tuples of `from`, matching each against the
/// tuples of the same relation in `to`; it prunes as soon as a partial
/// assignment is inconsistent. The surjectivity requirements of
/// [`HomKind::Onto`] and [`HomKind::StrongOnto`] are checked on complete
/// assignments, with backtracking on failure.
pub fn find_homomorphism(from: &Database, to: &Database, kind: HomKind) -> Option<Homomorphism> {
    // Collect the source tuples as (relation, tuple) pairs, most constrained
    // (fewest candidate targets) first to cut the search space.
    let mut source: Vec<(&str, &Tuple)> = Vec::new();
    for (name, rel) in from.iter() {
        for t in rel.iter() {
            source.push((name, t));
        }
    }
    source.sort_by_key(|(name, _)| to.relation(name).map_or(0, |r| r.len()));

    // Constants of `from` must already appear consistently: a tuple whose
    // constants cannot match anything in `to` makes the search fail quickly in
    // the recursion below, so no special pre-check is needed.
    let mut assignment: BTreeMap<NullId, Value> = BTreeMap::new();
    if search(&source, 0, from, to, kind, &mut assignment) {
        Some(Homomorphism {
            mapping: assignment,
        })
    } else {
        None
    }
}

fn search(
    source: &[(&str, &Tuple)],
    idx: usize,
    from: &Database,
    to: &Database,
    kind: HomKind,
    assignment: &mut BTreeMap<NullId, Value>,
) -> bool {
    if idx == source.len() {
        return surjectivity_ok(from, to, kind, assignment);
    }
    let (rel_name, tuple) = source[idx];
    let Some(target_rel) = to.relation(rel_name) else {
        return false;
    };
    for candidate in target_rel.iter() {
        let mut added: Vec<NullId> = Vec::new();
        let mut ok = true;
        for (s, t) in tuple.values().iter().zip(candidate.values().iter()) {
            match s {
                Value::Const(_) => {
                    if s != t {
                        ok = false;
                        break;
                    }
                }
                Value::Null(n) => match assignment.get(n) {
                    Some(existing) => {
                        if existing != t {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        assignment.insert(*n, t.clone());
                        added.push(*n);
                    }
                },
            }
        }
        if ok && search(source, idx + 1, from, to, kind, assignment) {
            return true;
        }
        for n in added {
            assignment.remove(&n);
        }
    }
    false
}

fn surjectivity_ok(
    from: &Database,
    to: &Database,
    kind: HomKind,
    assignment: &BTreeMap<NullId, Value>,
) -> bool {
    match kind {
        HomKind::Any => true,
        HomKind::Onto => {
            let hom = Homomorphism {
                mapping: assignment.clone(),
            };
            let image: BTreeSet<Value> = from
                .active_domain()
                .iter()
                .map(|v| hom.apply_value(v))
                .collect();
            to.active_domain().is_subset(&image)
        }
        HomKind::StrongOnto => {
            let hom = Homomorphism {
                mapping: assignment.clone(),
            };
            let image = hom.apply(from);
            // h(D) must equal D' relation by relation.
            to.iter()
                .all(|(name, rel)| image.relation(name).is_some_and(|img| img == rel))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::builder::tableau_example;
    use relmodel::{DatabaseBuilder, Value};

    fn db_r(tuples: Vec<Vec<Value>>) -> Database {
        let mut b = DatabaseBuilder::new().relation("R", &["a", "b"]);
        for t in tuples {
            b = b.tuple("R", t);
        }
        b.build()
    }

    #[test]
    fn identity_and_valuation_homomorphisms() {
        let d = tableau_example();
        // every database maps homomorphically to itself
        assert!(is_homomorphic(&d, &d, HomKind::Any));
        assert!(is_homomorphic(&d, &d, HomKind::StrongOnto));
        // instantiating the null gives a homomorphic image
        let world = db_r(vec![
            vec![Value::int(1), Value::int(7)],
            vec![Value::int(7), Value::int(2)],
        ]);
        let hom = find_homomorphism(&d, &world, HomKind::Any).unwrap();
        assert_eq!(hom.apply(&d), world);
        assert!(is_homomorphic(&d, &world, HomKind::StrongOnto));
        // but not in the other direction: constants cannot move
        assert!(!is_homomorphic(&world, &d, HomKind::Any));
    }

    #[test]
    fn extra_tuples_break_strong_onto_but_not_plain() {
        let d = tableau_example();
        let bigger = db_r(vec![
            vec![Value::int(1), Value::int(7)],
            vec![Value::int(7), Value::int(2)],
            vec![Value::int(100), Value::int(200)],
        ]);
        assert!(is_homomorphic(&d, &bigger, HomKind::Any));
        assert!(!is_homomorphic(&d, &bigger, HomKind::StrongOnto));
    }

    #[test]
    fn nulls_can_collapse() {
        // {(⊥0, ⊥1)} maps onto {(5, 5)}.
        let d = db_r(vec![vec![Value::null(0), Value::null(1)]]);
        let target = db_r(vec![vec![Value::int(5), Value::int(5)]]);
        assert!(is_homomorphic(&d, &target, HomKind::StrongOnto));
        // and also onto another null pattern
        let pattern = db_r(vec![vec![Value::null(9), Value::null(9)]]);
        assert!(is_homomorphic(&d, &pattern, HomKind::Any));
        // the reverse needs to map one null to two distinct values — impossible.
        assert!(!is_homomorphic(
            &pattern,
            &db_r(vec![vec![Value::int(1), Value::int(2)]]),
            HomKind::Any
        ));
    }

    #[test]
    fn onto_requires_domain_coverage() {
        let d = db_r(vec![vec![Value::null(0), Value::null(0)]]);
        let target = db_r(vec![
            vec![Value::int(1), Value::int(1)],
            vec![Value::int(2), Value::int(2)],
        ]);
        // plain homomorphism exists (map ⊥0 to 1)…
        assert!(is_homomorphic(&d, &target, HomKind::Any));
        // …but it cannot cover both 1 and 2, so no onto homomorphism.
        assert!(!is_homomorphic(&d, &target, HomKind::Onto));
        assert!(!is_homomorphic(&d, &target, HomKind::StrongOnto));
    }

    #[test]
    fn strong_onto_may_require_backtracking_over_targets() {
        // D = {(⊥0, 1), (⊥1, 1)}, D' = {(1,1), (2,1)}: a strong onto
        // homomorphism must send ⊥0, ⊥1 to 1 and 2 in some order; a greedy
        // first match (both to 1) fails.
        let d = db_r(vec![
            vec![Value::null(0), Value::int(1)],
            vec![Value::null(1), Value::int(1)],
        ]);
        let target = db_r(vec![
            vec![Value::int(1), Value::int(1)],
            vec![Value::int(2), Value::int(1)],
        ]);
        let hom = find_homomorphism(&d, &target, HomKind::StrongOnto).unwrap();
        let image = hom.apply(&d);
        assert_eq!(image, target);
    }

    #[test]
    fn missing_relation_in_target_fails() {
        let d = DatabaseBuilder::new()
            .relation("R", &["a"])
            .ints("R", &[1])
            .build();
        let other = DatabaseBuilder::new()
            .relation("S", &["a"])
            .ints("S", &[1])
            .build();
        assert!(!is_homomorphic(&d, &other, HomKind::Any));
    }

    #[test]
    fn composition() {
        let d = db_r(vec![vec![Value::null(0), Value::int(2)]]);
        let mid = db_r(vec![vec![Value::null(5), Value::int(2)]]);
        let end = db_r(vec![vec![Value::int(9), Value::int(2)]]);
        let h1 = find_homomorphism(&d, &mid, HomKind::Any).unwrap();
        let h2 = find_homomorphism(&mid, &end, HomKind::Any).unwrap();
        let composed = h1.then(&h2);
        assert_eq!(composed.apply(&d), end);
    }

    #[test]
    fn empty_database_maps_anywhere() {
        let empty = DatabaseBuilder::new().relation("R", &["a", "b"]).build();
        let d = tableau_example();
        assert!(is_homomorphic(&empty, &d, HomKind::Any));
        assert!(!is_homomorphic(&empty, &d, HomKind::StrongOnto));
        assert!(is_homomorphic(&empty, &empty, HomKind::StrongOnto));
    }
}
