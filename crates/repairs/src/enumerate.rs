//! Streaming enumeration of subset-minimal repairs.
//!
//! A subset-repair of a database under denial constraints is exactly the
//! conflict-free core plus a **maximal independent set** of the binary
//! conflict graph (doomed tuples appear in no repair; see
//! [`crate::conflict`]). [`RepairIter`] therefore enumerates maximal
//! independent sets by depth-first include/exclude decisions over the
//! conflict vertices in a fixed order, with two prunes:
//!
//! * *include* is only feasible when no already-included neighbor exists
//!   (independence);
//! * *exclude* is only feasible while some neighbor could still justify it
//!   (an already-included one, or an undecided one) — a vertex excluded
//!   with all neighbors excluded can never sit in a *maximal* set.
//!
//! Distinct decision vectors are distinct tuple sets, so repairs stream out
//! **structurally deduplicated by construction** — the property the world
//! iterator needs a dedup pass for. Sharding falls out of the same shape:
//! forcing the first `p` decisions to the bits of a shard index partitions
//! the repair space into `2^p` disjoint shards, the repair-space analogue
//! of `ValuationEnumerator::with_range`.

use relmodel::Database;

use crate::conflict::ConflictGraph;

/// One DFS decision about a conflict vertex.
#[derive(Debug, Clone, Copy)]
struct Frame {
    /// Is the vertex included in the candidate repair?
    include: bool,
    /// No alternative decision remains to try at this depth.
    exhausted: bool,
}

/// Streaming iterator over the subset-minimal repairs of a database, one
/// [`Database`] at a time. Never materializes the repair set.
#[derive(Debug, Clone)]
pub struct RepairIter<'a> {
    graph: &'a ConflictGraph,
    /// The conflict-free core all repairs share; yielded repairs are
    /// `core + included vertices`.
    core: Database,
    decisions: Vec<Frame>,
    /// Forced decisions for the first `prefix_len` vertices (bit `d` of
    /// `prefix` decides vertex `d`): the sharding handle.
    prefix: u64,
    prefix_len: usize,
    /// The previous [`Self::next_repair`] left a complete decision vector
    /// in place (so [`Self::included`] can read it); backtrack past it
    /// before searching on.
    pending_backtrack: bool,
    done: bool,
}

impl<'a> RepairIter<'a> {
    /// Enumerates every subset-minimal repair of `db` under `graph`.
    pub fn new(db: &Database, graph: &'a ConflictGraph) -> Self {
        Self::with_prefix(db, graph, 0, 0)
    }

    /// Enumerates the shard of repairs whose first `prefix_len` vertex
    /// decisions match the bits of `prefix` (bit `d` ⇒ vertex `d` included).
    /// The `2^prefix_len` shards partition the repair space; shards whose
    /// prefix is infeasible yield nothing. `prefix_len` is clamped to the
    /// vertex count.
    pub fn with_prefix(
        db: &Database,
        graph: &'a ConflictGraph,
        prefix: u64,
        prefix_len: usize,
    ) -> Self {
        RepairIter {
            core: graph.core(db),
            graph,
            decisions: Vec::with_capacity(graph.conflict_tuples()),
            prefix,
            prefix_len: prefix_len.min(graph.conflict_tuples()).min(63),
            pending_backtrack: false,
            done: false,
        }
    }

    /// The conflict-free core every repair of this iterator shares.
    pub fn core(&self) -> &Database {
        &self.core
    }

    /// The conflict vertices included by the current decision vector —
    /// indices into [`ConflictGraph::vertices`]. Meaningful only after
    /// [`Self::next_repair`] returned `true`. Together with [`Self::core`]
    /// this *is* the repair, as a tuple-survival mask: batched consumers
    /// read it directly instead of materializing a [`Database`].
    pub fn included(&self) -> impl Iterator<Item = usize> + '_ {
        self.decisions
            .iter()
            .enumerate()
            .filter_map(|(v, frame)| frame.include.then_some(v))
    }

    fn n(&self) -> usize {
        self.graph.conflict_tuples()
    }

    /// May vertex `depth` be included? (No included neighbor so far.)
    fn include_feasible(&self, depth: usize) -> bool {
        self.graph
            .neighbors(depth)
            .iter()
            .all(|&u| u >= depth || !self.decisions[u].include)
    }

    /// May vertex `depth` be excluded? (Some neighbor can still justify the
    /// exclusion: one already included, or one not yet decided.)
    fn exclude_feasible(&self, depth: usize) -> bool {
        self.graph
            .neighbors(depth)
            .iter()
            .any(|&u| u > depth || self.decisions[u].include)
    }

    /// Is the complete decision vector a *maximal* independent set?
    fn maximal(&self) -> bool {
        (0..self.n()).all(|v| {
            self.decisions[v].include
                || self
                    .graph
                    .neighbors(v)
                    .iter()
                    .any(|&u| self.decisions[u].include)
        })
    }

    /// The repair named by the current (complete) decision vector.
    fn build(&self) -> Database {
        let mut repair = self.core.clone();
        for (v, frame) in self.decisions.iter().enumerate() {
            if frame.include {
                let (relation, tuple) = &self.graph.vertices()[v];
                repair
                    .insert(relation, tuple.clone())
                    .expect("conflict vertices come from the same schema");
            }
        }
        repair
    }

    /// Pops decisions until one with an untried alternative is found and
    /// flips it; returns false when the search space is exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(frame) = self.decisions.pop() {
            if !frame.exhausted {
                // The frame had tried `include`; `exclude` is the one
                // remaining alternative — take it if it is feasible.
                let depth = self.decisions.len();
                if self.exclude_feasible(depth) {
                    self.decisions.push(Frame {
                        include: false,
                        exhausted: true,
                    });
                    return true;
                }
            }
        }
        false
    }
}

impl RepairIter<'_> {
    /// Advances to the next maximal decision vector; `false` once the
    /// search space is exhausted. On `true` the current repair is readable
    /// through [`Self::core`] + [`Self::included`] without materializing
    /// anything — the [`Iterator`] impl wraps this with the private
    /// `build` step that assembles the repair `Database`.
    pub fn next_repair(&mut self) -> bool {
        if self.done {
            return false;
        }
        if self.pending_backtrack {
            self.pending_backtrack = false;
            if !self.backtrack() {
                self.done = true;
                return false;
            }
        }
        loop {
            let depth = self.decisions.len();
            if depth == self.n() {
                if self.maximal() {
                    // Leave the vector in place for the accessors; the next
                    // call resumes by backtracking past it.
                    self.pending_backtrack = true;
                    return true;
                }
                if !self.backtrack() {
                    self.done = true;
                    return false;
                }
                continue;
            }
            let frame = if depth < self.prefix_len {
                let include = (self.prefix >> depth) & 1 == 1;
                let feasible = if include {
                    self.include_feasible(depth)
                } else {
                    self.exclude_feasible(depth)
                };
                if !feasible {
                    // The forced prefix is infeasible below this point.
                    if !self.backtrack() {
                        self.done = true;
                        return false;
                    }
                    continue;
                }
                Frame {
                    include,
                    exhausted: true,
                }
            } else if self.include_feasible(depth) {
                Frame {
                    include: true,
                    exhausted: false,
                }
            } else if self.exclude_feasible(depth) {
                Frame {
                    include: false,
                    exhausted: true,
                }
            } else {
                if !self.backtrack() {
                    self.done = true;
                    return false;
                }
                continue;
            };
            self.decisions.push(frame);
        }
    }
}

impl Iterator for RepairIter<'_> {
    type Item = Database;

    fn next(&mut self) -> Option<Database> {
        self.next_repair().then(|| self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    use relmodel::{DatabaseBuilder, Tuple};

    fn two_conflicts_db() -> Database {
        // Key k on R: groups {(1,10),(1,20)} and {(2,30),(2,40)} conflict;
        // (3,50) is core. Repairs: one tuple per group + core = 4 repairs.
        DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 30])
            .ints("R", &[2, 40])
            .ints("R", &[3, 50])
            .build()
    }

    #[test]
    fn enumerates_exactly_the_repairs() {
        let db = two_conflicts_db();
        let graph = ConflictGraph::build(&db);
        let repairs: Vec<Database> = RepairIter::new(&db, &graph).collect();
        assert_eq!(repairs.len(), 4);
        for r in &repairs {
            assert!(r.is_consistent(), "every enumerated repair is consistent");
            assert!(r.is_subinstance_of(&db));
            assert_eq!(r.total_tuples(), 3, "one per group + the core tuple");
            assert!(r.relation("R").unwrap().contains(&Tuple::ints(&[3, 50])));
        }
        let distinct: BTreeSet<&Database> = repairs.iter().collect();
        assert_eq!(
            distinct.len(),
            4,
            "structurally deduplicated by construction"
        );
    }

    #[test]
    fn consistent_database_has_one_repair_itself() {
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .build();
        let graph = ConflictGraph::build(&db);
        let repairs: Vec<Database> = RepairIter::new(&db, &graph).collect();
        assert_eq!(repairs, vec![db]);
    }

    #[test]
    fn triangle_conflict_has_three_repairs() {
        // Three tuples sharing one key form a conflict triangle: each repair
        // keeps exactly one of them.
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[1, 30])
            .build();
        let graph = ConflictGraph::build(&db);
        let repairs: Vec<Database> = RepairIter::new(&db, &graph).collect();
        assert_eq!(repairs.len(), 3);
        for r in &repairs {
            assert_eq!(r.total_tuples(), 1);
        }
    }

    #[test]
    fn shards_partition_the_repair_space() {
        let db = two_conflicts_db();
        let graph = ConflictGraph::build(&db);
        let all: BTreeSet<Database> = RepairIter::new(&db, &graph).collect();
        for prefix_len in [1usize, 2, 3] {
            let mut sharded: Vec<Database> = Vec::new();
            for prefix in 0..(1u64 << prefix_len.min(graph.conflict_tuples())) {
                sharded.extend(RepairIter::with_prefix(&db, &graph, prefix, prefix_len));
            }
            assert_eq!(
                sharded.len(),
                all.len(),
                "prefix_len {prefix_len}: disjoint"
            );
            let as_set: BTreeSet<Database> = sharded.into_iter().collect();
            assert_eq!(as_set, all, "prefix_len {prefix_len}: complete");
        }
    }
}
