//! The conflict-free-core approximation: polynomial, sound, no repair
//! enumerated.
//!
//! Tuples in no conflict edge survive **every** repair, and every repair is
//! a sub-instance of the database minus its doomed tuples. A repair `R`
//! therefore always satisfies `core ⊆ R ⊆ upper`, which is precisely the
//! interval contract of `releval::exec::columnar::approx::execute_approx_between`:
//! feeding the core through the certain side and the upper bound through
//! the possible side makes every complete tuple on the certain side an
//! answer in every world of every repair — a `Sound` under-approximation of
//! the consistent answer, for **every** query class.
//!
//! Evaluating the query over the core alone would *not* be sound beyond the
//! monotone fragment (deleting a conflicting tuple from the right side of a
//! difference can add answers the repairs refute) — the same trap naïve
//! evaluation falls into on incomplete data, resolved the same way: an
//! explicit under/over pair instead of a single relation.
//!
//! The same core/conflict split powers the exact fold too: the batched
//! [`crate::fold::stream_consistent_answer`] evaluates the core **once** per
//! shard as the stable scan set and replays only the surviving conflict
//! vertices per repair. The approximation here is what you run when even the
//! batched enumeration is too expensive; its certain side is always a subset
//! of the fold's answer.

use relalgebra::plan::PlannedQuery;
use releval::approx::ApproxAnswer;
use releval::exec::columnar::approx::execute_approx_between;
use releval::exec::OpStats;
use relmodel::{Database, Relation};

use crate::conflict::ConflictGraph;

/// Telemetry from one core-approximation execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreExecution {
    /// The sound consistent-answer under-approximation: complete tuples the
    /// query returns in every world of every repair.
    pub answers: Relation,
    /// The raw certain⁺/possible? pair the interval evaluation produced.
    pub pair: ApproxAnswer,
    /// Tuples in the conflict-free core (the certain side's leaf input).
    pub core_tuples: usize,
    /// Tuples in the repair upper bound (the possible side's leaf input).
    pub upper_tuples: usize,
    /// Physical-operator telemetry.
    pub op_stats: OpStats,
}

/// The conflict-free core of `db` under `graph`: the sub-instance present
/// in every repair.
pub fn conflict_free_core(db: &Database, graph: &ConflictGraph) -> Database {
    graph.core(db)
}

/// Evaluates `plan` over the repair interval `[core, db − doomed]` with the
/// certain⁺ pair executor: one polynomial pass, `Sound` for every query
/// class, no repair enumerated.
pub fn core_consistent_answer(
    plan: &PlannedQuery,
    db: &Database,
    graph: &ConflictGraph,
) -> CoreExecution {
    let core = graph.core(db);
    let upper = graph.upper(db);
    let (pair, op_stats) = execute_approx_between(plan.physical(), &core, &upper);
    CoreExecution {
        answers: pair.certain.complete_part(),
        core_tuples: core.total_tuples(),
        upper_tuples: upper.total_tuples(),
        pair,
        op_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::{stream_consistent_answer, RepairOptions};
    use relalgebra::ast::RaExpr;
    use relmodel::{DatabaseBuilder, Tuple};

    fn planned(expr: &RaExpr, db: &Database) -> PlannedQuery {
        PlannedQuery::new(expr.clone(), db.schema()).unwrap()
    }

    #[test]
    fn core_answers_survive_every_repair() {
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 30])
            .build();
        let graph = ConflictGraph::build(&db);
        let q = RaExpr::relation("R").project(vec![1]);
        let core = core_consistent_answer(&planned(&q, &db), &db, &graph);
        assert_eq!(core.core_tuples, 1);
        assert_eq!(core.upper_tuples, 3);
        assert!(core.answers.contains(&Tuple::ints(&[30])));
        let exact =
            stream_consistent_answer(&planned(&q, &db), &db, &graph, &RepairOptions::default())
                .unwrap();
        assert!(core.answers.is_subset(&exact.answers), "sound");
        assert_eq!(core.answers, exact.answers, "exact here, in fact");
    }

    #[test]
    fn difference_over_conflicting_right_side_stays_sound() {
        // S − π_v(R) with R's v-values in conflict: evaluating over the core
        // alone would claim {7} (the conflicting values vanish from the
        // right side), but the repair where v=7 survives refutes it. The
        // interval pair must keep 7 off the certain side.
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .relation("S", &["v"])
            .key("R", &["k"])
            .ints("R", &[1, 7])
            .ints("R", &[1, 8])
            .ints("S", &[7])
            .build();
        let graph = ConflictGraph::build(&db);
        let q = RaExpr::relation("S").difference(RaExpr::relation("R").project(vec![1]));
        let plan = planned(&q, &db);
        let core = core_consistent_answer(&plan, &db, &graph);
        assert!(
            core.answers.is_empty(),
            "7 is refuted by the v=7 repair: {}",
            core.answers
        );
        // And the exact fold agrees that the consistent answer is ∅.
        let exact =
            stream_consistent_answer(&plan, &db, &graph, &RepairOptions::default()).unwrap();
        assert!(exact.answers.is_empty());
    }

    #[test]
    fn core_approximation_is_sound_against_both_fold_paths() {
        // The certain side must be a subset of the exact consistent answer
        // whichever shard runner computes it — the batched mask path and the
        // row-materializing reference agree, and the core stays below both.
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .relation("S", &["v", "w"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 30])
            .ints("S", &[10, 100])
            .ints("S", &[30, 300])
            .build();
        let graph = ConflictGraph::build(&db);
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(relalgebra::predicate::Predicate::eq(
                relalgebra::predicate::Operand::col(1),
                relalgebra::predicate::Operand::col(2),
            ))
            .project(vec![3]);
        let plan = planned(&q, &db);
        let core = core_consistent_answer(&plan, &db, &graph);
        let batched =
            stream_consistent_answer(&plan, &db, &graph, &RepairOptions::default()).unwrap();
        let rows = crate::fold::stream_consistent_answer_rows(
            &plan,
            &db,
            &graph,
            &RepairOptions::default(),
        )
        .unwrap();
        assert_eq!(batched.answers, rows.answers);
        assert_eq!(batched.repairs_batched, batched.repairs_visited);
        assert!(core.answers.is_subset(&batched.answers), "sound");
        assert!(batched.answers.contains(&Tuple::ints(&[300])));
    }

    #[test]
    fn consistent_database_core_is_plain_pair_evaluation() {
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[2, 20])
            .build();
        let graph = ConflictGraph::build(&db);
        assert!(graph.is_conflict_free());
        let q = RaExpr::relation("R").project(vec![0]);
        let core = core_consistent_answer(&planned(&q, &db), &db, &graph);
        assert_eq!(core.answers.len(), 2);
        assert_eq!(core.core_tuples, core.upper_tuples);
    }
}
