//! # repairs — consistent query answering as a second world-space
//!
//! An incomplete database denotes the set of complete databases it could
//! be; an **inconsistent** database — one violating its schema's integrity
//! constraints — denotes the set of its subset-minimal **repairs**. The
//! *consistent answer* to a query is what survives every repair:
//!
//! ```text
//! consistent(Q, D) = ⋂ { certain(Q, R) | R a subset-minimal repair of D }
//! ```
//!
//! which is the certain-answer equation with repairs where worlds were —
//! and because repairs of a database with nulls are themselves incomplete
//! databases, the two world-spaces *compose*: the inner `certain` is the
//! existing machinery (physical execution on complete repairs, symbolic
//! c-tables on incomplete ones, the world oracle when symbolic punts).
//!
//! The crate mirrors the shape of the possible-world engine layer by layer:
//!
//! | worlds ([`releval::worlds`])        | repairs (this crate)                         |
//! |-------------------------------------|----------------------------------------------|
//! | valuations over a finite domain     | maximal independent sets of the conflict graph ([`conflict::ConflictGraph`]) |
//! | `WorldIter` (structural dedup)      | [`enumerate::RepairIter`] (dedup by construction) |
//! | valuation-range sharding            | decision-prefix sharding                     |
//! | streaming ∩ fold, early exit        | [`fold::stream_consistent_answer`]           |
//! | budget = worlds visited             | budget = repairs visited                     |
//! | certain⁺ pair approximation         | conflict-free core over the repair interval ([`core_approx`]) |
//!
//! The sound polynomial shortcut deserves a word: tuples in no conflict
//! edge survive every repair, so the conflict-free core under-approximates
//! every repair while the database minus its doomed tuples over-approximates
//! it — an *interval* the certain⁺ pair executor evaluates in one pass
//! ([`core_approx::core_consistent_answer`]), yielding a `Sound` consistent
//! answer for every query class without enumerating a single repair.
//!
//! ```
//! use relalgebra::ast::RaExpr;
//! use relalgebra::plan::PlannedQuery;
//! use relmodel::{DatabaseBuilder, Tuple};
//! use repairs::conflict::ConflictGraph;
//! use repairs::fold::{stream_consistent_answer, RepairOptions};
//!
//! // R(k, v) with key k, and a dirty pair for k = 1.
//! let db = DatabaseBuilder::new()
//!     .relation("R", &["k", "v"])
//!     .key("R", &["k"])
//!     .ints("R", &[1, 10])
//!     .ints("R", &[1, 20])
//!     .ints("R", &[2, 30])
//!     .build();
//! let graph = ConflictGraph::build(&db);
//! let q = RaExpr::relation("R").project(vec![1]);
//! let plan = PlannedQuery::new(q, db.schema()).unwrap();
//! let exec = stream_consistent_answer(&plan, &db, &graph, &RepairOptions::default()).unwrap();
//! assert_eq!(exec.repairs_visited, 2);
//! assert!(exec.answers.contains(&Tuple::ints(&[30]))); // survives both repairs
//! assert_eq!(exec.answers.len(), 1);                   // 10 and 20 do not
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
pub mod core_approx;
pub mod enumerate;
pub mod fold;

pub use conflict::ConflictGraph;
pub use core_approx::{conflict_free_core, core_consistent_answer, CoreExecution};
pub use enumerate::RepairIter;
pub use fold::{
    enumerate_repairs, stream_consistent_answer, stream_consistent_answer_rows, RepairError,
    RepairExecution, RepairOptions,
};
