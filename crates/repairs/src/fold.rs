//! The streaming consistent-answer fold: `⋂ certain(Q, R)` over every
//! subset-minimal repair `R`, computed the way `releval::worlds` computes
//! `⋂ Q(D')` over possible worlds.
//!
//! The two world-spaces compose rather than multiply in memory: each repair
//! of an *incomplete* inconsistent database is itself an incomplete
//! database, so the per-repair certain answer is delegated to the existing
//! machinery — the physical executor directly when the repair is complete,
//! the symbolic c-table strategy when it is not, and the streaming world
//! oracle when symbolic punts. The outer fold keeps the worlds engine's
//! contract: O(threads) repairs in flight, early exit the moment the
//! running intersection empties (∅ in one shard proves ∅ globally), a
//! budget on repairs **visited**, and sharding via the enumeration-prefix
//! partition of [`crate::enumerate::RepairIter`].

//!
//! Since the morsel-native refactor, a repair of a **complete** database is
//! never materialized as a `Database` either: it is the conflict-free core
//! (shard-invariant) plus a tuple-survival mask over the conflict vertices,
//! read straight off [`RepairIter::included`]. Each worker feeds the mask's
//! rows into reused scratch batches and evaluates the shared plan through
//! the caching split executor
//! ([`releval::exec::columnar::split::ShardExec`]); stable subresults and
//! their hash tables are built on the first repair of a shard and reused by
//! every later one, and only the volatile answer parts are intersected
//! (`⋂ᵢ (S ∪ Vᵢ) = S ∪ ⋂ᵢ Vᵢ`). Incomplete databases keep the row path —
//! their repairs need the full certain-answer machinery anyway — and
//! [`stream_consistent_answer_rows`] forces it everywhere as the
//! differential reference.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use relalgebra::classify::has_incomplete_values;
use relalgebra::plan::PlannedQuery;
use releval::exec::columnar::split::{ElementInput, ShardExec, ShardSetup};
use releval::exec::{self, OpStats};
use releval::symbolic::{symbolic_certain_answer, SymbolicOptions, SymbolicOutcome};
use releval::worlds::{stream_certain_answer, ShardProfile, WorldOptions};
use releval::EvalError;
use relmodel::batch::{morsel_rows, ColumnBatch};
use relmodel::value::Constant;
use relmodel::{Database, Relation, Semantics, Tuple, Value};

use crate::conflict::ConflictGraph;
use crate::enumerate::RepairIter;

/// Options controlling repair enumeration and the per-repair evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairOptions {
    /// Budget on the number of repairs **visited** by the streaming fold
    /// (early exit can beat it, exactly like the world budget).
    pub max_repairs: u128,
    /// Worker threads for the fold; `None` chooses automatically (the shard
    /// count is rounded down to a power of two — shards are enumeration-
    /// prefix partitions). Small conflict graphs stay single-threaded.
    pub threads: Option<usize>,
    /// Per-repair world-oracle budget, used when a repair carries nulls and
    /// the symbolic strategy punts. The fold forces its workers' inner
    /// enumerations single-threaded; parallelism belongs to the outer fold.
    pub world_options: WorldOptions,
    /// Per-repair symbolic solver budget.
    pub symbolic_options: SymbolicOptions,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            max_repairs: 4096,
            threads: None,
            world_options: WorldOptions::default(),
            symbolic_options: SymbolicOptions::default(),
        }
    }
}

impl RepairOptions {
    /// Options with a specific repair-visit budget.
    pub fn with_max_repairs(mut self, max_repairs: u128) -> Self {
        self.max_repairs = max_repairs;
        self
    }

    /// Options pinning the fold to a specific worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

/// Errors from the consistent-answer fold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// More than [`RepairOptions::max_repairs`] repairs were visited without
    /// the fold converging.
    BudgetExceeded {
        /// Repairs visited when the budget fired.
        repairs: u128,
        /// The configured maximum.
        budget: u128,
    },
    /// A per-repair certain-answer evaluation failed (world budget on an
    /// incomplete repair, empty valuation domain, …).
    Eval(EvalError),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::BudgetExceeded { repairs, budget } => write!(
                f,
                "repair enumeration visited {repairs} repairs, exceeding the budget of {budget}"
            ),
            RepairError::Eval(e) => write!(f, "per-repair evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for RepairError {}

impl From<EvalError> for RepairError {
    fn from(e: EvalError) -> Self {
        RepairError::Eval(e)
    }
}

/// Telemetry from one streaming consistent-answer execution — the CQA
/// counterpart of `releval::worlds::WorldExecution`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairExecution {
    /// The consistent answer — `⋂ certain(Q, R)` over the visited repairs.
    pub answers: Relation,
    /// Repairs actually evaluated across all workers.
    pub repairs_visited: u128,
    /// Of the visited repairs, how many were evaluated as survival masks
    /// through the batched split executor instead of materialized
    /// `Database`s. The whole fold batches when the input database is
    /// complete; incomplete inputs (and the
    /// [`stream_consistent_answer_rows`] reference) report zero.
    pub repairs_batched: u128,
    /// Did enumeration stop early because the intersection emptied? Early
    /// exit can only fire when the consistent answer is ∅.
    pub early_exit: bool,
    /// Worker threads used by the fold.
    pub threads: usize,
    /// Repairs whose certain answer needed the symbolic c-table strategy
    /// (the repair carried nulls).
    pub symbolic_repairs: u128,
    /// Repairs whose certain answer fell through to the world oracle.
    pub world_repairs: u128,
    /// Physical-operator telemetry aggregated across every per-repair
    /// execution and worker shard.
    pub op_stats: OpStats,
    /// Wall-clock and work volume per worker shard, in spawn order (the
    /// same [`ShardProfile`] the worlds fold reports; `units` counts this
    /// shard's batched repairs).
    pub shards: Vec<ShardProfile>,
}

/// Per-worker fold state collected at the join.
struct ShardResult {
    acc: Option<Relation>,
    early_exit: bool,
    symbolic_repairs: u64,
    world_repairs: u64,
    repairs_batched: u64,
    op_stats: OpStats,
}

/// Shared cross-worker signals. Unlike the worlds fold, per-repair
/// evaluation *can* fail (an incomplete repair may blow the inner world
/// budget), so an error slot is needed.
struct SharedState {
    stop: AtomicBool,
    budget_hit: AtomicBool,
    visited: AtomicU64,
    error: Mutex<Option<EvalError>>,
}

/// Minimum conflict-vertex count before the auto thread choice shards the
/// enumeration; below it, spawn overhead dominates.
const PARALLEL_MIN_VERTICES: usize = 10;

/// Resolves the worker count to `(prefix_len, 2^prefix_len)`: the largest
/// power of two not exceeding the requested thread count (shards are
/// bit-prefix partitions of the decision space), capped by the vertex count.
fn resolve_shards(opts: &RepairOptions, vertices: usize) -> (usize, usize) {
    let requested = match opts.threads {
        Some(pinned) => pinned.max(1),
        None if vertices < PARALLEL_MIN_VERTICES => 1,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
    };
    let mut prefix_len = 0usize;
    while prefix_len < 6 && (1usize << (prefix_len + 1)) <= requested {
        prefix_len += 1;
    }
    let prefix_len = prefix_len.min(vertices);
    (prefix_len, 1usize << prefix_len)
}

/// The certain answer of one repair under CWA: the physical executor when
/// the repair is complete, the symbolic strategy when it is not, the world
/// oracle when symbolic punts or is unsound for the query.
fn repair_certain_answer(
    plan: &PlannedQuery,
    repair: &Database,
    opts: &RepairOptions,
    null_values_literal: bool,
    shard: &mut ShardResult,
) -> Result<Relation, EvalError> {
    if repair.is_complete() {
        return Ok(exec::columnar::execute_into(
            plan.physical(),
            repair,
            &mut shard.op_stats,
        ));
    }
    if !null_values_literal {
        match symbolic_certain_answer(plan, repair, &opts.symbolic_options) {
            SymbolicOutcome::Answered(exec) => {
                shard.symbolic_repairs += 1;
                shard.op_stats.merge(&exec.op_stats);
                return Ok(exec.answers);
            }
            SymbolicOutcome::Punted(_) => {}
        }
    }
    let mut world_opts = opts.world_options;
    world_opts.threads = Some(1);
    let exec = stream_certain_answer(plan, repair, Semantics::Cwa, &world_opts)?;
    shard.world_repairs += 1;
    shard.op_stats.merge(&exec.op_stats);
    Ok(exec.answers)
}

/// Everything a worker needs, shared read-only across the fleet.
#[derive(Clone, Copy)]
struct ShardJob<'a> {
    plan: &'a PlannedQuery,
    db: &'a Database,
    graph: &'a ConflictGraph,
    opts: &'a RepairOptions,
    null_values_literal: bool,
    prefix_len: usize,
}

/// Which shard runner the fold uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FoldMode {
    /// Survival-mask evaluation through the split executor wherever the
    /// input database permits it (the default).
    Batched,
    /// The row-materializing reference, forced everywhere.
    Rows,
}

fn run_shard(job: ShardJob<'_>, prefix: u64, shared: &SharedState, mode: FoldMode) -> ShardResult {
    // The mask path covers complete databases only: their repairs are
    // complete too, so the per-repair certain answer *is* plan execution —
    // no symbolic/world-oracle dispatch to thread through. Incomplete
    // inputs keep the row path.
    if mode == FoldMode::Batched && job.db.is_complete() {
        run_shard_batched(job, prefix, shared)
    } else {
        run_shard_rows(job, prefix, shared)
    }
}

/// The batched shard runner: the same repairs in the same order as
/// [`run_shard_rows`] — identical budget and stop discipline — but each
/// repair is consumed as core + survival mask. Scratch batches are refilled
/// per repair; stable subresults and hash tables are cached across the
/// whole shard; only volatile answer parts are intersected per repair.
fn run_shard_batched(job: ShardJob<'_>, prefix: u64, shared: &SharedState) -> ShardResult {
    let mut shard = ShardResult {
        acc: None,
        early_exit: false,
        symbolic_repairs: 0,
        world_repairs: 0,
        repairs_batched: 0,
        op_stats: OpStats::default(),
    };
    let mut iter = RepairIter::with_prefix(job.db, job.graph, prefix, job.prefix_len);
    let vertices = job.graph.vertices();
    let volatile_relations: BTreeSet<&str> = vertices.iter().map(|(r, _)| r.as_str()).collect();

    // Shard-invariant setup: the conflict-free core rows are the stable
    // scans; a relation is static iff no conflict vertex lives in it.
    let mut setup = ShardSetup::default();
    let core_consts: BTreeSet<Constant> = {
        let core = iter.core();
        for rs in core.schema().iter() {
            let rel = core.relation(&rs.name).expect("schema lists the relation");
            setup
                .stable_scans
                .insert(rs.name.clone(), Rc::new(ColumnBatch::from_relation(rel)));
            setup.static_scans.insert(
                rs.name.clone(),
                !volatile_relations.contains(rs.name.as_str()),
            );
        }
        core.constants()
    };
    let diag: Vec<Tuple> = core_consts
        .iter()
        .map(|c| Tuple::new(vec![Value::Const(c.clone()), Value::Const(c.clone())]))
        .collect();
    setup.stable_delta = Rc::new(ColumnBatch::from_rows(2, diag.iter()));
    setup.static_delta = vertices.is_empty();

    // One scratch batch per conflict-bearing relation, refilled per repair.
    let mut volatile_scans: HashMap<String, Rc<ColumnBatch>> = HashMap::new();
    for name in &volatile_relations {
        let arity = job
            .db
            .schema()
            .relation(name)
            .expect("conflict vertices come from the schema")
            .arity();
        volatile_scans.insert((*name).to_string(), Rc::new(ColumnBatch::new(arity)));
    }
    let mut volatile_delta = Rc::new(ColumnBatch::new(2));
    let mut extra_consts: BTreeSet<Constant> = BTreeSet::new();

    let mut exec = ShardExec::new(job.plan.physical(), morsel_rows(), setup);
    let mut stable_rel: Option<Relation> = None;
    let mut acc_v: Option<Relation> = None;

    while iter.next_repair() {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let visited = shared.visited.fetch_add(1, Ordering::Relaxed) + 1;
        if u128::from(visited) > job.opts.max_repairs {
            // This repair is discarded unevaluated — uncount it so the
            // reported figure is exactly the repairs folded.
            shared.visited.fetch_sub(1, Ordering::Relaxed);
            shared.budget_hit.store(true, Ordering::Relaxed);
            shared.stop.store(true, Ordering::Relaxed);
            break;
        }

        // Refill the scratches with the surviving conflict vertices.
        for batch in volatile_scans.values_mut() {
            Rc::make_mut(batch).clear();
        }
        extra_consts.clear();
        for v in iter.included() {
            let (relation, tuple) = &vertices[v];
            let out = volatile_scans
                .get_mut(relation.as_str())
                .expect("scratch exists for every conflict relation");
            Rc::make_mut(out).push_tuple(tuple);
            for val in tuple.values() {
                if let Some(c) = val.as_const() {
                    if !core_consts.contains(c) {
                        extra_consts.insert(c.clone());
                    }
                }
            }
        }
        // Δ gains a diagonal row for every repair-introduced constant.
        if !extra_consts.is_empty() {
            let delta = Rc::make_mut(&mut volatile_delta);
            delta.clear();
            for c in &extra_consts {
                delta.push_row([Value::Const(c.clone()), Value::Const(c.clone())]);
            }
        } else if !volatile_delta.is_empty() {
            Rc::make_mut(&mut volatile_delta).clear();
        }

        shard.repairs_batched += 1;
        let split = exec.eval_element(&ElementInput {
            volatile_scans: &volatile_scans,
            volatile_delta: &volatile_delta,
        });
        let s_rel = stable_rel.get_or_insert_with(|| split.stable.to_relation());
        let answer_v = split.volatile.to_relation();
        let folded = match acc_v.take() {
            None => answer_v,
            Some(a) => a.intersection(&answer_v),
        };
        // `⋂ (S ∪ Vᵢ)` is empty iff `S` and `⋂ Vᵢ` both are — the early
        // exit fires on exactly the same repair as the row fold.
        let empty = s_rel.is_empty() && folded.is_empty();
        acc_v = Some(folded);
        if empty {
            shard.early_exit = true;
            shared.stop.store(true, Ordering::Relaxed);
            break;
        }
    }
    shard.op_stats.merge(&exec.stats);
    shard.acc = match (stable_rel, acc_v) {
        (Some(s), Some(v)) => Some(s.union(&v)),
        _ => None,
    };
    shard
}

/// The row-materializing reference shard runner.
fn run_shard_rows(job: ShardJob<'_>, prefix: u64, shared: &SharedState) -> ShardResult {
    let mut shard = ShardResult {
        acc: None,
        early_exit: false,
        symbolic_repairs: 0,
        world_repairs: 0,
        repairs_batched: 0,
        op_stats: OpStats::default(),
    };
    let repairs = RepairIter::with_prefix(job.db, job.graph, prefix, job.prefix_len);
    for repair in repairs {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let visited = shared.visited.fetch_add(1, Ordering::Relaxed) + 1;
        if u128::from(visited) > job.opts.max_repairs {
            // This repair is discarded unevaluated — uncount it so the
            // reported figure is exactly the repairs folded.
            shared.visited.fetch_sub(1, Ordering::Relaxed);
            shared.budget_hit.store(true, Ordering::Relaxed);
            shared.stop.store(true, Ordering::Relaxed);
            break;
        }
        let answer = match repair_certain_answer(
            job.plan,
            &repair,
            job.opts,
            job.null_values_literal,
            &mut shard,
        ) {
            Ok(a) => a,
            Err(e) => {
                let mut slot = shared.error.lock().expect("error slot poisoned");
                slot.get_or_insert(e);
                shared.stop.store(true, Ordering::Relaxed);
                break;
            }
        };
        let folded = match shard.acc.take() {
            None => answer,
            Some(a) => a.intersection(&answer),
        };
        let empty = folded.is_empty();
        shard.acc = Some(folded);
        if empty {
            // The global intersection is a subset of this local one: ∅ here
            // proves the consistent answer is ∅ everywhere. Stop the fleet.
            shard.early_exit = true;
            shared.stop.store(true, Ordering::Relaxed);
            break;
        }
    }
    shard
}

/// The streaming, parallel, early-exiting consistent answer for a
/// pre-typechecked plan: the certain answer that survives **every**
/// subset-minimal repair, with telemetry.
///
/// The caller supplies the conflict graph (typically built once per
/// database and reused across queries). Errors with
/// [`RepairError::BudgetExceeded`] when more than
/// [`RepairOptions::max_repairs`] repairs were visited without the fold
/// converging, and with [`RepairError::Eval`] when a per-repair evaluation
/// fails; early exit beats both, because ∅ is proven the moment any shard's
/// intersection empties.
pub fn stream_consistent_answer(
    plan: &PlannedQuery,
    db: &Database,
    graph: &ConflictGraph,
    opts: &RepairOptions,
) -> Result<RepairExecution, RepairError> {
    stream_consistent_answer_inner(plan, db, graph, opts, FoldMode::Batched)
}

/// [`stream_consistent_answer`] with the row-materializing shard runner
/// forced everywhere: every repair is built as a `Database` and evaluated
/// from scratch. Kept public as the differential-testing reference for the
/// batched mask path; not intended for production use.
pub fn stream_consistent_answer_rows(
    plan: &PlannedQuery,
    db: &Database,
    graph: &ConflictGraph,
    opts: &RepairOptions,
) -> Result<RepairExecution, RepairError> {
    stream_consistent_answer_inner(plan, db, graph, opts, FoldMode::Rows)
}

fn stream_consistent_answer_inner(
    plan: &PlannedQuery,
    db: &Database,
    graph: &ConflictGraph,
    opts: &RepairOptions,
    mode: FoldMode,
) -> Result<RepairExecution, RepairError> {
    let null_values_literal = has_incomplete_values(plan.expr());
    let (prefix_len, workers) = resolve_shards(opts, graph.conflict_tuples());
    let shared = SharedState {
        stop: AtomicBool::new(false),
        budget_hit: AtomicBool::new(false),
        visited: AtomicU64::new(0),
        error: Mutex::new(None),
    };
    let job = ShardJob {
        plan,
        db,
        graph,
        opts,
        null_values_literal,
        prefix_len,
    };
    // Shards are timed at the spawn boundary: wall-clock per worker, without
    // touching the fold's inner loop.
    let timed_shard = |prefix: u64, shared: &SharedState| {
        let started = std::time::Instant::now();
        let result = run_shard(job, prefix, shared, mode);
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        (result, nanos)
    };
    let shard_results: Vec<(ShardResult, u64)> = if workers == 1 {
        vec![timed_shard(0, &shared)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|prefix| {
                    let shared = &shared;
                    let timed_shard = &timed_shard;
                    scope.spawn(move || timed_shard(prefix, shared))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("repair worker panicked"))
                .collect()
        })
    };

    let early_exit = shard_results.iter().any(|(r, _)| r.early_exit);
    let visited = u128::from(shared.visited.load(Ordering::Relaxed));
    let mut op_stats = OpStats::default();
    let mut symbolic_repairs = 0u128;
    let mut world_repairs = 0u128;
    let mut repairs_batched = 0u128;
    let mut shards = Vec::with_capacity(shard_results.len());
    for (shard, nanos) in &shard_results {
        op_stats.merge(&shard.op_stats);
        symbolic_repairs += u128::from(shard.symbolic_repairs);
        world_repairs += u128::from(shard.world_repairs);
        repairs_batched += u128::from(shard.repairs_batched);
        shards.push(ShardProfile {
            nanos: *nanos,
            units: u128::from(shard.repairs_batched),
        });
    }
    if !early_exit {
        // ∅ proven early makes budget and per-repair failures moot; without
        // it they are fatal, per-repair errors first (they explain *why*).
        if let Some(e) = shared.error.lock().expect("error slot poisoned").take() {
            return Err(RepairError::Eval(e));
        }
        if shared.budget_hit.load(Ordering::Relaxed) {
            return Err(RepairError::BudgetExceeded {
                repairs: visited,
                budget: opts.max_repairs,
            });
        }
    }
    let answers = if early_exit {
        Relation::new(plan.physical().arity())
    } else {
        let mut acc: Option<Relation> = None;
        for (shard, _) in shard_results {
            if let Some(local) = shard.acc {
                acc = Some(match acc.take() {
                    None => local,
                    Some(a) => a.intersection(&local),
                });
            }
        }
        // Every database has at least one repair, so a completed fold has
        // folded at least one answer.
        acc.expect("repair enumeration yields at least one repair")
    };
    Ok(RepairExecution {
        answers,
        repairs_visited: visited,
        repairs_batched,
        early_exit,
        threads: workers,
        symbolic_repairs,
        world_repairs,
        op_stats,
        shards,
    })
}

/// Materializes every subset-minimal repair into a vector, respecting an
/// a-priori budget. Retained for tests and examples; the consistent-answer
/// path streams instead.
pub fn enumerate_repairs(
    db: &Database,
    graph: &ConflictGraph,
    max_repairs: u128,
) -> Result<Vec<Database>, RepairError> {
    let mut out = Vec::new();
    for repair in RepairIter::new(db, graph) {
        if out.len() as u128 >= max_repairs {
            return Err(RepairError::BudgetExceeded {
                repairs: out.len() as u128 + 1,
                budget: max_repairs,
            });
        }
        out.push(repair);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::ast::RaExpr;
    use relmodel::{DatabaseBuilder, Tuple, Value};

    fn planned(expr: &RaExpr, db: &Database) -> PlannedQuery {
        PlannedQuery::new(expr.clone(), db.schema()).unwrap()
    }

    fn fold(q: &RaExpr, db: &Database, opts: &RepairOptions) -> RepairExecution {
        let graph = ConflictGraph::build(db);
        stream_consistent_answer(&planned(q, db), db, &graph, opts).unwrap()
    }

    #[test]
    fn consistent_answer_survives_every_repair() {
        // R keyed on k: (1,10)/(1,20) conflict, (2,30) is core. The key
        // query: π_v(R) — 30 survives every repair; 10 and 20 do not.
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 30])
            .build();
        let q = RaExpr::relation("R").project(vec![1]);
        let exec = fold(&q, &db, &RepairOptions::default());
        assert_eq!(exec.answers.len(), 1);
        assert!(exec.answers.contains(&Tuple::ints(&[30])));
        assert_eq!(exec.repairs_visited, 2);
        assert!(!exec.early_exit);
    }

    #[test]
    fn early_exit_fires_on_empty_consistent_answers() {
        // Every repair keeps exactly one of the k=1 tuples, so no v value
        // survives both repairs: the fold may stop after two repairs even if
        // more conflicts exist elsewhere.
        let mut b = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"]);
        for k in 0..8i64 {
            b = b.ints("R", &[k, 10 * k + 1]).ints("R", &[k, 10 * k + 2]);
        }
        let db = b.build();
        let q = RaExpr::relation("R").project(vec![1]);
        // Single shard: within a shard the prefix-pinned groups keep their
        // values in the local intersection, so only the unsharded fold is
        // guaranteed to early-exit here.
        let exec = fold(&q, &db, &RepairOptions::default().with_threads(1));
        assert!(exec.answers.is_empty());
        assert!(exec.early_exit);
        assert!(
            exec.repairs_visited < 256,
            "2^8 repairs exist; visited {}",
            exec.repairs_visited
        );
        // The sharded fold agrees on the answer either way.
        let sharded = fold(&q, &db, &RepairOptions::default().with_threads(4));
        assert!(sharded.answers.is_empty());
    }

    #[test]
    fn budget_bounds_repairs_visited() {
        let mut b = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[99, 0]);
        for k in 0..8i64 {
            b = b.ints("R", &[k, 1]).ints("R", &[k, 2]);
        }
        let db = b.build();
        // π_k(R) keeps every k in every repair: the intersection never
        // empties, so the fold must hit the budget.
        let q = RaExpr::relation("R").project(vec![0]);
        let graph = ConflictGraph::build(&db);
        let err = stream_consistent_answer(
            &planned(&q, &db),
            &db,
            &graph,
            &RepairOptions::default().with_max_repairs(10),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RepairError::BudgetExceeded { budget: 10, .. }
        ));
    }

    #[test]
    fn incomplete_repairs_go_through_the_certain_answer_machinery() {
        // The conflicting pair pins v to 10-or-⊥0; the core tuple (2,⊥1) is
        // incomplete, so every repair is an incomplete database. π_k is
        // certain in every world of every repair; π_v is not.
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .tuple("R", vec![Value::int(2), Value::null(1)])
            .build();
        let keys = RaExpr::relation("R").project(vec![0]);
        let exec = fold(&keys, &db, &RepairOptions::default());
        assert_eq!(exec.answers.len(), 2, "both keys survive: {}", exec.answers);
        assert!(
            exec.symbolic_repairs > 0,
            "incomplete repairs answered symbolically"
        );

        let vals = RaExpr::relation("R").project(vec![1]);
        let exec = fold(&vals, &db, &RepairOptions::default());
        assert!(
            exec.answers.is_empty(),
            "⊥1 makes no value certain: {}",
            exec.answers
        );
    }

    #[test]
    fn sharded_threads_agree_with_single_thread() {
        let mut b = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[99, 77]);
        for k in 0..6i64 {
            b = b.ints("R", &[k, 1]).ints("R", &[k, 2]);
        }
        let db = b.build();
        let q = RaExpr::relation("R").project(vec![1]);
        let single = fold(&q, &db, &RepairOptions::default().with_threads(1));
        for threads in [2, 4, 8] {
            let multi = fold(&q, &db, &RepairOptions::default().with_threads(threads));
            assert_eq!(multi.answers, single.answers, "threads = {threads}");
            assert_eq!(multi.threads, threads);
        }
        assert!(single.answers.contains(&Tuple::ints(&[77])));
    }

    fn fold_rows(q: &RaExpr, db: &Database, opts: &RepairOptions) -> RepairExecution {
        let graph = ConflictGraph::build(db);
        stream_consistent_answer_rows(&planned(q, db), db, &graph, opts).unwrap()
    }

    #[test]
    fn batched_fold_matches_row_fold() {
        // Complete but inconsistent: the default path batches every repair.
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 30])
            .ints("R", &[3, 30])
            .build();
        let queries = [
            RaExpr::relation("R").project(vec![1]),
            RaExpr::relation("R").project(vec![0]).difference(
                RaExpr::relation("R")
                    .select(relalgebra::predicate::Predicate::eq(
                        relalgebra::predicate::Operand::col(1),
                        relalgebra::predicate::Operand::int(10),
                    ))
                    .project(vec![0]),
            ),
            RaExpr::relation("R")
                .project(vec![1])
                .intersection(RaExpr::values(Relation::from_tuples(
                    1,
                    vec![Tuple::ints(&[30]), Tuple::ints(&[10])],
                ))),
        ];
        for (i, q) in queries.iter().enumerate() {
            for threads in [1usize, 4] {
                let opts = RepairOptions::default().with_threads(threads);
                let batched = fold(q, &db, &opts);
                let rows = fold_rows(q, &db, &opts);
                assert_eq!(
                    batched.answers, rows.answers,
                    "query {i}, {threads} threads"
                );
                assert_eq!(batched.repairs_visited, rows.repairs_visited, "query {i}");
                assert_eq!(batched.early_exit, rows.early_exit, "query {i}");
                assert_eq!(
                    batched.repairs_batched, batched.repairs_visited,
                    "complete input: every visited repair goes through the mask path"
                );
                assert_eq!(rows.repairs_batched, 0, "rows reference never batches");
            }
        }
    }

    #[test]
    fn incomplete_inputs_fall_back_to_the_row_path() {
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .build();
        let q = RaExpr::relation("R").project(vec![0]);
        let exec = fold(&q, &db, &RepairOptions::default());
        assert_eq!(
            exec.repairs_batched, 0,
            "nulls force the materializing path"
        );
        assert_eq!(exec.answers.len(), 1);
    }

    #[test]
    fn batched_fold_reuses_hash_tables_across_repairs() {
        // S is conflict-free (fully static); the R ⋈ S hash join builds S's
        // key table on the first repair of the shard and reuses it after.
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 30])
            .relation("S", &["v", "w"])
            .ints("S", &[10, 100])
            .ints("S", &[20, 200])
            .ints("S", &[30, 300])
            .build();
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(relalgebra::predicate::Predicate::eq(
                relalgebra::predicate::Operand::col(1),
                relalgebra::predicate::Operand::col(2),
            ))
            .project(vec![3]);
        let exec = fold(&q, &db, &RepairOptions::default().with_threads(1));
        assert!(!exec.early_exit, "300 survives both repairs");
        assert_eq!(exec.repairs_visited, 2);
        assert_eq!(exec.repairs_batched, 2);
        assert!(exec.answers.contains(&Tuple::ints(&[300])));
        assert!(
            exec.op_stats.tables_reused > 0,
            "build-side tables are reused across repairs: {:?}",
            exec.op_stats
        );
    }

    #[test]
    fn materializing_enumeration_respects_its_budget() {
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .build();
        let graph = ConflictGraph::build(&db);
        assert_eq!(enumerate_repairs(&db, &graph, 10).unwrap().len(), 2);
        assert!(matches!(
            enumerate_repairs(&db, &graph, 1),
            Err(RepairError::BudgetExceeded { budget: 1, .. })
        ));
    }
}
