//! The conflict hypergraph of an inconsistent database.
//!
//! Every constraint form in [`relmodel::constraint`] is a *denial*
//! constraint, so each minimal violation is witnessed by one tuple (unary
//! denial constraints) or two (keys, functional dependencies). That makes
//! the repair structure a hypergraph with edges of size 1 and 2:
//!
//! * tuples in a **unary** edge are *doomed* — they appear in no repair;
//! * tuples in a **binary** edge are *conflict vertices* — a repair keeps a
//!   maximal independent set of them;
//! * everything else is the **conflict-free core** — present in *every*
//!   repair, which is exactly what makes the core a sound evaluation base.
//!
//! Conflicts between a doomed tuple and anything else are irrelevant (the
//! doomed side is always deleted), so they are not recorded — keeping them
//! would make otherwise-clean tuples look conflicted and shrink the core
//! for no reason.

use std::collections::{BTreeMap, BTreeSet};

use relmodel::constraint::{violations_of, Violation};
use relmodel::{Database, Tuple};

/// A tuple identified by the relation it lives in.
pub type Fact = (String, Tuple);

/// The conflict hypergraph of a database against its schema's constraints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConflictGraph {
    /// Tuples violating a unary denial constraint: in no repair.
    doomed: BTreeSet<Fact>,
    /// Conflict vertices — tuples in at least one binary edge — in a fixed
    /// enumeration order.
    vertices: Vec<Fact>,
    /// Adjacency lists over vertex indexes (binary conflict edges).
    adjacency: Vec<Vec<usize>>,
    /// Number of distinct binary edges.
    edges: usize,
    /// Violations found (witness list, for reporting).
    violations: usize,
}

impl ConflictGraph {
    /// Builds the conflict hypergraph of `db` against the constraints its
    /// schema declares.
    pub fn build(db: &Database) -> ConflictGraph {
        let all: Vec<Violation> = db
            .schema()
            .constraints()
            .iter()
            .flat_map(|c| violations_of(c, db))
            .collect();
        Self::from_violations(&all)
    }

    /// Builds the hypergraph from an explicit violation list.
    pub fn from_violations(violations: &[Violation]) -> ConflictGraph {
        let mut doomed: BTreeSet<Fact> = BTreeSet::new();
        for v in violations {
            if !v.constraint.is_binary() {
                doomed.insert((v.relation.clone(), v.tuples[0].clone()));
            }
        }
        let mut index: BTreeMap<Fact, usize> = BTreeMap::new();
        let mut vertices: Vec<Fact> = Vec::new();
        let mut edge_set: BTreeSet<(usize, usize)> = BTreeSet::new();
        for v in violations {
            if !v.constraint.is_binary() {
                continue;
            }
            let a = (v.relation.clone(), v.tuples[0].clone());
            let b = (v.relation.clone(), v.tuples[1].clone());
            // A pair conflict with a doomed tuple needs no repairing: the
            // doomed side is deleted in every repair anyway.
            if doomed.contains(&a) || doomed.contains(&b) {
                continue;
            }
            let mut id_of = |fact: Fact| -> usize {
                *index.entry(fact.clone()).or_insert_with(|| {
                    vertices.push(fact);
                    vertices.len() - 1
                })
            };
            let ia = id_of(a);
            let ib = id_of(b);
            if ia != ib {
                edge_set.insert((ia.min(ib), ia.max(ib)));
            }
        }
        let mut adjacency = vec![Vec::new(); vertices.len()];
        for &(a, b) in &edge_set {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        ConflictGraph {
            doomed,
            vertices,
            adjacency,
            edges: edge_set.len(),
            violations: violations.len(),
        }
    }

    /// No violations at all: the database is consistent and its single
    /// repair is the database itself.
    pub fn is_conflict_free(&self) -> bool {
        self.doomed.is_empty() && self.vertices.is_empty()
    }

    /// Number of conflict vertices (tuples in at least one binary edge).
    pub fn conflict_tuples(&self) -> usize {
        self.vertices.len()
    }

    /// Number of doomed tuples (unary denial violations).
    pub fn doomed_tuples(&self) -> usize {
        self.doomed.len()
    }

    /// Number of distinct binary conflict edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Number of witnessed violations the graph was built from.
    pub fn violation_count(&self) -> usize {
        self.violations
    }

    /// The conflict vertices, in enumeration order.
    pub fn vertices(&self) -> &[Fact] {
        &self.vertices
    }

    /// Neighbors of vertex `v` (binary conflict partners).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// An a-priori upper bound on the number of subset-minimal repairs: the
    /// Moon–Moser bound on maximal independent sets of a graph with
    /// [`ConflictGraph::conflict_tuples`] vertices, saturating at
    /// `u128::MAX`. The planner compares this against its repair budget
    /// before committing to enumeration — exactly how the world oracle's
    /// `|domain|^|nulls|` estimate is used.
    pub fn estimated_repairs(&self) -> u128 {
        moon_moser(self.vertices.len())
    }

    /// The conflict-free core: `db` minus doomed tuples minus conflict
    /// vertices. The core is a sub-instance of **every** repair.
    pub fn core(&self, db: &Database) -> Database {
        let vertex_set: BTreeSet<&Fact> = self.vertices.iter().collect();
        self.retain(db, |fact| !vertex_set.contains(fact))
    }

    /// The repair upper bound: `db` minus doomed tuples. Every repair is a
    /// sub-instance of it.
    pub fn upper(&self, db: &Database) -> Database {
        self.retain(db, |_| true)
    }

    /// `db` minus doomed tuples, further filtered by `keep` (which only ever
    /// sees non-doomed facts).
    fn retain(&self, db: &Database, keep: impl Fn(&Fact) -> bool) -> Database {
        let mut out = Database::new(db.schema().clone());
        for (name, rel) in db.iter() {
            for t in rel.iter() {
                let fact = (name.to_owned(), t.clone());
                if !self.doomed.contains(&fact) && keep(&fact) {
                    out.insert(name, fact.1).expect("same schema");
                }
            }
        }
        out
    }
}

/// The Moon–Moser bound: the maximum number of maximal independent sets in
/// a graph with `n` vertices, saturating at `u128::MAX`.
fn moon_moser(n: usize) -> u128 {
    let pow3 = |k: usize| -> u128 {
        if k >= 81 {
            return u128::MAX;
        }
        3u128.saturating_pow(k as u32)
    };
    match n {
        0 => 1,
        1 => 1,
        2 => 2,
        _ => match n % 3 {
            0 => pow3(n / 3),
            1 => pow3((n - 4) / 3).saturating_mul(4),
            _ => pow3((n - 2) / 3).saturating_mul(2),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::constraint::CompareOp;
    use relmodel::value::Constant;
    use relmodel::{DatabaseBuilder, Value};

    fn keyed_db() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 30])
            .build()
    }

    #[test]
    fn key_conflict_splits_core_and_vertices() {
        let db = keyed_db();
        let g = ConflictGraph::build(&db);
        assert!(!g.is_conflict_free());
        assert_eq!(g.conflict_tuples(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.doomed_tuples(), 0);
        let core = g.core(&db);
        assert_eq!(core.total_tuples(), 1, "only (2,30) is conflict-free");
        assert!(core.relation("R").unwrap().contains(&Tuple::ints(&[2, 30])));
        assert_eq!(g.upper(&db).total_tuples(), 3);
        assert_eq!(g.estimated_repairs(), 2);
    }

    #[test]
    fn doomed_tuples_leave_the_upper_bound() {
        let db = DatabaseBuilder::new()
            .relation("S", &["a"])
            .deny("S", "a", CompareOp::Eq, Constant::Int(13))
            .ints("S", &[1])
            .ints("S", &[13])
            .build();
        let g = ConflictGraph::build(&db);
        assert_eq!(g.doomed_tuples(), 1);
        assert_eq!(g.conflict_tuples(), 0);
        assert_eq!(g.upper(&db).total_tuples(), 1);
        assert_eq!(g.core(&db).total_tuples(), 1);
        assert_eq!(
            g.estimated_repairs(),
            1,
            "deleting the doomed tuple is forced"
        );
    }

    #[test]
    fn conflicts_with_doomed_tuples_are_not_edges() {
        // (1,10) conflicts only with the doomed (1,13): it must stay in the
        // core, because every repair deletes (1,13) anyway.
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .deny("R", "v", CompareOp::Eq, Constant::Int(13))
            .ints("R", &[1, 10])
            .ints("R", &[1, 13])
            .build();
        let g = ConflictGraph::build(&db);
        assert_eq!(g.doomed_tuples(), 1);
        assert_eq!(g.conflict_tuples(), 0);
        let core = g.core(&db);
        assert!(core.relation("R").unwrap().contains(&Tuple::ints(&[1, 10])));
    }

    #[test]
    fn null_keys_conflict_syntactically() {
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .tuple("R", vec![Value::null(0), Value::int(1)])
            .tuple("R", vec![Value::null(0), Value::int(2)])
            .tuple("R", vec![Value::null(1), Value::int(3)])
            .build();
        let g = ConflictGraph::build(&db);
        assert_eq!(
            g.conflict_tuples(),
            2,
            "⊥0-keyed tuples conflict; ⊥1 does not"
        );
        assert_eq!(g.core(&db).total_tuples(), 1);
    }

    #[test]
    fn moon_moser_bound() {
        assert_eq!(moon_moser(0), 1);
        assert_eq!(moon_moser(1), 1);
        assert_eq!(moon_moser(2), 2);
        assert_eq!(moon_moser(3), 3);
        assert_eq!(moon_moser(4), 4);
        assert_eq!(moon_moser(5), 6);
        assert_eq!(moon_moser(6), 9);
        assert!(
            moon_moser(400) == u128::MAX,
            "saturates instead of overflowing"
        );
    }

    #[test]
    fn consistent_database_is_conflict_free() {
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[2, 20])
            .build();
        let g = ConflictGraph::build(&db);
        assert!(g.is_conflict_free());
        assert_eq!(g.estimated_repairs(), 1);
        assert_eq!(g.core(&db), db);
    }
}
