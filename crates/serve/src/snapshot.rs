//! Versioned, immutable database snapshots.
//!
//! A [`Snapshot`] is one published state of the service's database: an
//! `Arc<Database>` (immutable once published — writers clone-and-replace,
//! they never mutate in place), the monotone version number the service
//! assigned it, and the shared [`DbContext`] carrying everything the engine
//! precomputes about the database — null count, null census, and the lazily
//! built conflict graph. Because the context lives *on the snapshot* rather
//! than in any request-scoped engine, N queries against one snapshot measure
//! the database once and build the conflict graph exactly once
//! ([`Snapshot::conflict_graph_builds`] proves it by counter).
//!
//! Readers hold snapshots by `Arc`: an in-flight query keeps its snapshot
//! (database, context, and any half-read relations) alive however many
//! versions the service publishes meanwhile — the copy-on-write face of
//! "readers never block writers".

use std::sync::Arc;

use engine::{DbContext, Engine, EngineOptions, Semantics};
use relmodel::Database;

/// A request-scoped engine over a snapshot: owns `Arc`s into the snapshot,
/// so it is `'static` and can outlive the service lock that produced it.
pub type SnapshotEngine = Engine<Arc<Database>>;

/// One immutable, versioned state of the served database: the database, its
/// version, and the precomputed dispatch context every query against this
/// version shares.
#[derive(Debug)]
pub struct Snapshot {
    version: u64,
    /// Bumped only when a published database changes the *schema* — the
    /// plan cache's validity epoch (plans are typechecked against a schema,
    /// not a database instance, so data-only bumps keep every cached plan).
    schema_epoch: u64,
    db: Arc<Database>,
    ctx: Arc<DbContext>,
}

impl Snapshot {
    /// Publishes `db` as version `version`: measures the dispatch context
    /// (two linear scans) once, here, for every query that will ever run
    /// against this snapshot.
    pub(crate) fn new(version: u64, schema_epoch: u64, db: Database) -> Self {
        let db = Arc::new(db);
        let ctx = Arc::new(DbContext::of(&db));
        Snapshot {
            version,
            schema_epoch,
            db,
            ctx,
        }
    }

    /// The monotone version the service assigned this snapshot.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The schema-validity epoch (see the field docs; used by the plan
    /// cache).
    pub(crate) fn schema_epoch(&self) -> u64 {
        self.schema_epoch
    }

    /// The immutable database of this snapshot.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The shared dispatch context (null count, census, lazy conflict
    /// graph) every engine over this snapshot reuses.
    pub fn context(&self) -> &Arc<DbContext> {
        &self.ctx
    }

    /// How many times this snapshot's conflict graph was actually built —
    /// 0 until the first consistent-answer query, 1 ever after, no matter
    /// how many queries or threads asked.
    pub fn conflict_graph_builds(&self) -> usize {
        self.ctx.conflict_graph_builds()
    }

    /// A request-scoped engine over this snapshot: construction does no
    /// database work (the context is already measured).
    pub fn engine(&self, semantics: Semantics, options: EngineOptions) -> SnapshotEngine {
        Engine::with_context(Arc::clone(&self.db), Arc::clone(&self.ctx))
            .semantics(semantics)
            .options(options)
    }
}
