//! Lock-free service telemetry: monotone counters the hot path bumps with
//! relaxed atomics (they order nothing — each is an independent tally), read
//! out as a consistent-enough [`ServiceTelemetry`] copy on demand.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// The service's live counters. Internal; callers read
/// [`ServiceTelemetry`] via `CertainService::telemetry`.
#[derive(Debug, Default)]
pub(crate) struct ServiceStats {
    pub queries: AtomicU64,
    pub batches: AtomicU64,
    pub updates: AtomicU64,
    pub result_hits: AtomicU64,
    pub result_misses: AtomicU64,
    pub plan_hits: AtomicU64,
    pub plan_misses: AtomicU64,
}

impl ServiceStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServiceTelemetry {
        ServiceTelemetry {
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the service counters.
///
/// Counters are sampled individually (relaxed loads), so a copy taken while
/// requests are in flight can be off by the requests straddling the read —
/// fine for telemetry, not an audit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceTelemetry {
    /// Queries submitted (each batch member counts once).
    pub queries: u64,
    /// `submit_batch` calls.
    pub batches: u64,
    /// Snapshots published after the initial one.
    pub updates: u64,
    /// Queries answered from the result cache.
    pub result_hits: u64,
    /// Queries that had to execute a strategy.
    pub result_misses: u64,
    /// Queries whose plan came from the plan cache.
    pub plan_hits: u64,
    /// Queries that parsed + typechecked + lowered afresh.
    pub plan_misses: u64,
}

impl ServiceTelemetry {
    /// Result-cache hit rate in `[0, 1]`; 0 before any query.
    pub fn result_hit_rate(&self) -> f64 {
        rate(self.result_hits, self.result_misses)
    }

    /// Plan-cache hit rate in `[0, 1]`; 0 before any query.
    pub fn plan_hit_rate(&self) -> f64 {
        rate(self.plan_hits, self.plan_misses)
    }

    /// The counter deltas since `earlier` (field-wise saturating
    /// subtraction): sample telemetry periodically and `diff` consecutive
    /// copies to get interval rates instead of since-boot totals. The hit
    /// rates and `Display` of the result describe the interval.
    pub fn diff(&self, earlier: &ServiceTelemetry) -> ServiceTelemetry {
        ServiceTelemetry {
            queries: self.queries.saturating_sub(earlier.queries),
            batches: self.batches.saturating_sub(earlier.batches),
            updates: self.updates.saturating_sub(earlier.updates),
            result_hits: self.result_hits.saturating_sub(earlier.result_hits),
            result_misses: self.result_misses.saturating_sub(earlier.result_misses),
            plan_hits: self.plan_hits.saturating_sub(earlier.plan_hits),
            plan_misses: self.plan_misses.saturating_sub(earlier.plan_misses),
        }
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl fmt::Display for ServiceTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queries={} batches={} updates={} result-cache {}/{} ({:.0}%) plan-cache {}/{} ({:.0}%)",
            self.queries,
            self.batches,
            self.updates,
            self.result_hits,
            self.result_hits + self.result_misses,
            100.0 * self.result_hit_rate(),
            self.plan_hits,
            self.plan_hits + self.plan_misses,
            100.0 * self.plan_hit_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_copies_and_rates() {
        let stats = ServiceStats::default();
        assert_eq!(stats.snapshot().result_hit_rate(), 0.0);
        ServiceStats::bump(&stats.queries);
        ServiceStats::bump(&stats.result_hits);
        ServiceStats::bump(&stats.queries);
        ServiceStats::bump(&stats.result_misses);
        ServiceStats::bump(&stats.result_hits);
        let t = stats.snapshot();
        assert_eq!(t.queries, 2);
        assert_eq!(t.result_hits, 2);
        assert_eq!(t.result_misses, 1);
        assert!((t.result_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        let line = t.to_string();
        assert!(line.contains("result-cache 2/3"), "got: {line}");
    }

    #[test]
    fn diff_yields_interval_deltas() {
        let a = ServiceTelemetry {
            queries: 10,
            result_hits: 4,
            result_misses: 6,
            ..ServiceTelemetry::default()
        };
        let b = ServiceTelemetry {
            queries: 16,
            result_hits: 9,
            result_misses: 7,
            ..ServiceTelemetry::default()
        };
        let d = b.diff(&a);
        assert_eq!(d.queries, 6);
        assert_eq!(d.result_hits, 5);
        assert_eq!(d.result_misses, 1);
        assert!((d.result_hit_rate() - 5.0 / 6.0).abs() < 1e-12);
        // Backwards diffs saturate rather than wrap.
        assert_eq!(a.diff(&b).queries, 0);
    }
}
