//! The service's two caches: plans by normalized query text, certain-answer
//! results by (query, snapshot version, semantics, options fingerprint).
//!
//! **Plan cache.** Planning (parse → typecheck → classify → lower) depends
//! only on the query text and the schema, so plans survive data-only
//! snapshot bumps; the cache carries the schema *epoch* it was built under
//! and is consulted only by snapshots of the same epoch (a schema-changing
//! publish starts a new epoch and drops every plan).
//!
//! **Result cache.** Keyed by the full (normalized query, snapshot version,
//! semantics, [`EngineOptions::fingerprint`]) tuple, so invalidation is *by
//! version bump*: an entry computed against version `v` can simply never
//! match a request on version `v+1` — no scanning, no epochs, no dirty
//! bits. The options fingerprint is the degradation-correctness axis: a
//! report computed under a starved budget (guarantee `Sound`, fallback
//! recorded) must never be served to a caller whose larger budget would
//! have earned `Exact`, and with the fingerprint in the key it cannot be.
//! Memory is bounded two ways: stale-version entries are pruned when a new
//! version is published (writers pay, readers never do), and within a
//! version a FIFO capacity evicts the oldest entries.
//!
//! Under many concurrent clients a single result-cache mutex becomes the
//! service's hottest lock — every submit takes it at least once even on a
//! pure hit. [`ShardedResultCache`] splits the key space across
//! [`RESULT_SHARDS`] independently locked FIFO caches by key hash, so
//! unrelated queries contend only `1/RESULT_SHARDS` of the time while each
//! shard keeps the same keying, eviction, and version-pruning story.

use std::collections::{HashMap, VecDeque};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::{Arc, Mutex};

use engine::{CertainReport, Semantics};
use relalgebra::plan::PlannedQuery;

/// Whitespace-normalizes a query so textual variants of one query share a
/// plan-cache line: runs of whitespace collapse to one space and the ends
/// are trimmed — except inside single-quoted string literals, which are
/// preserved verbatim (`'a  b'` and `'a b'` are different constants).
pub fn normalize(query: &str) -> String {
    let mut out = String::with_capacity(query.len());
    let mut in_quote = false;
    let mut pending_space = false;
    for c in query.chars() {
        if in_quote {
            out.push(c);
            in_quote = c != '\'';
            continue;
        }
        if c.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        out.push(c);
        in_quote = c == '\'';
    }
    out
}

/// The plan cache: normalized query text → shared plan, valid for one
/// schema epoch.
#[derive(Debug, Default)]
pub struct PlanCache {
    epoch: u64,
    plans: HashMap<String, Arc<PlannedQuery>>,
}

impl PlanCache {
    /// The cached plan for a normalized query, if this cache's epoch
    /// matches the asking snapshot's.
    pub fn get(&self, epoch: u64, normalized: &str) -> Option<Arc<PlannedQuery>> {
        (self.epoch == epoch)
            .then(|| self.plans.get(normalized).cloned())
            .flatten()
    }

    /// Inserts (or returns the concurrently inserted) plan for a normalized
    /// query. A plan typechecked under another epoch is not stored: the
    /// caller still gets its plan back, it just is not shared.
    pub fn insert(
        &mut self,
        epoch: u64,
        normalized: String,
        plan: Arc<PlannedQuery>,
    ) -> Arc<PlannedQuery> {
        if self.epoch != epoch {
            return plan;
        }
        Arc::clone(self.plans.entry(normalized).or_insert(plan))
    }

    /// Starts a new schema epoch, dropping every cached plan.
    pub fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.plans.clear();
    }

    /// Cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// The full identity of a cacheable answer. Two requests share a cached
/// report only when every coordinate matches — same (normalized) query,
/// same snapshot, same semantics, same options budget.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// The whitespace-normalized query text (the plan-cache key; using the
    /// text itself rather than a hash keeps the key collision-free).
    pub query: String,
    /// The snapshot version the answer was computed against.
    pub version: u64,
    /// The semantics the question was asked under.
    pub semantics: Semantics,
    /// [`engine::EngineOptions::fingerprint`] of the request's options.
    pub options_fp: u64,
}

/// The certain-answer result cache. See the module docs above for the
/// keying and invalidation story.
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<ResultKey, Arc<CertainReport>>,
    /// Insertion order for FIFO eviction within a version.
    order: VecDeque<ResultKey>,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` reports.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// The cached report for a key, if present.
    pub fn get(&self, key: &ResultKey) -> Option<Arc<CertainReport>> {
        self.entries.get(key).cloned()
    }

    /// Caches a report, evicting the oldest entries beyond capacity.
    pub fn insert(&mut self, key: ResultKey, report: Arc<CertainReport>) {
        if self.entries.insert(key.clone(), report).is_none() {
            self.order.push_back(key);
        }
        while self.entries.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&oldest);
        }
    }

    /// Drops every entry not computed against `version` — the
    /// publish-time pruning that keeps stale versions from accumulating.
    /// (Correctness never needs this: a stale key can no longer match.)
    pub fn retain_version(&mut self, version: u64) {
        self.entries.retain(|k, _| k.version == version);
        self.order.retain(|k| k.version == version);
    }

    /// Cached reports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Lock shards in a [`ShardedResultCache`]. A small power of two: enough to
/// spread a client fleet, few enough that per-shard FIFO capacity stays
/// meaningful.
pub const RESULT_SHARDS: usize = 8;

/// A concurrency-sharded [`ResultCache`]: [`RESULT_SHARDS`] independently
/// locked FIFO caches, with keys routed by hash. Capacity is divided evenly
/// across shards (so the total bound is preserved up to rounding); eviction
/// and publish-time version pruning are per shard.
///
/// All methods take `&self` — the locks live inside.
#[derive(Debug)]
pub struct ShardedResultCache {
    shards: Vec<Mutex<ResultCache>>,
}

impl ShardedResultCache {
    /// An empty sharded cache holding at most ~`capacity` reports in total
    /// (each shard gets `⌈capacity / RESULT_SHARDS⌉`, minimum 1).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(RESULT_SHARDS).max(1);
        ShardedResultCache {
            shards: (0..RESULT_SHARDS)
                .map(|_| Mutex::new(ResultCache::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: &ResultKey) -> &Mutex<ResultCache> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// The cached report for a key, if its shard has it.
    pub fn get(&self, key: &ResultKey) -> Option<Arc<CertainReport>> {
        self.shard(key)
            .lock()
            .expect("result cache shard poisoned")
            .get(key)
    }

    /// Caches a report in the key's shard, evicting FIFO beyond the shard
    /// capacity.
    pub fn insert(&self, key: ResultKey, report: Arc<CertainReport>) {
        self.shard(&key)
            .lock()
            .expect("result cache shard poisoned")
            .insert(key, report);
    }

    /// Drops every entry (in every shard) not computed against `version`.
    pub fn retain_version(&self, version: u64) {
        for shard in &self.shards {
            shard
                .lock()
                .expect("result cache shard poisoned")
                .retain_version(version);
        }
    }

    /// Cached reports across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("result cache shard poisoned").len())
            .sum()
    }

    /// Is every shard empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_whitespace_outside_quotes() {
        assert_eq!(normalize("  R   union\n\tS "), "R union S");
        assert_eq!(normalize("R union S"), "R union S");
        // String literals keep their spacing: different constants must not
        // conflate.
        assert_eq!(
            normalize("select[#0 = 'a  b'](  R )"),
            "select[#0 = 'a  b']( R )"
        );
        assert_ne!(
            normalize("select[#0 = 'a  b'](R)"),
            normalize("select[#0 = 'a b'](R)")
        );
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn result_cache_fifo_evicts_and_prunes_versions() {
        let mut cache = ResultCache::new(2);
        let key = |q: &str, v: u64| ResultKey {
            query: q.into(),
            version: v,
            semantics: Semantics::Cwa,
            options_fp: 0,
        };
        let report = |q: &str, v: u64| {
            // Only identity matters here; a default-ish report suffices.
            Arc::new(CertainReport {
                answers: relmodel::Relation::new(0),
                object_answer: None,
                strategy: engine::StrategyKind::NaiveExact,
                guarantee: engine::Guarantee::Exact,
                class: relalgebra::classify::QueryClass::Positive,
                semantics: Semantics::Cwa,
                stats: engine::EngineStats {
                    snapshot_version: Some(v),
                    plan_text: q.into(),
                    ..Default::default()
                },
            })
        };
        cache.insert(key("a", 1), report("a", 1));
        cache.insert(key("b", 1), report("b", 1));
        cache.insert(key("c", 1), report("c", 1));
        assert_eq!(cache.len(), 2, "capacity 2: FIFO evicted the oldest");
        assert!(cache.get(&key("a", 1)).is_none(), "a was first in");
        assert!(cache.get(&key("c", 1)).is_some());
        cache.insert(key("c", 2), report("c", 2));
        cache.retain_version(2);
        assert_eq!(cache.len(), 1, "publish pruned version-1 entries");
        assert!(cache.get(&key("c", 2)).is_some());
        // Re-inserting an existing key must not duplicate its order slot.
        cache.insert(key("c", 2), report("c", 2));
        cache.insert(key("d", 2), report("d", 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sharded_cache_keeps_the_keying_and_pruning_story() {
        let cache = ShardedResultCache::new(64);
        let key = |q: &str, v: u64| ResultKey {
            query: q.into(),
            version: v,
            semantics: Semantics::Cwa,
            options_fp: 0,
        };
        let report = || {
            Arc::new(CertainReport {
                answers: relmodel::Relation::new(0),
                object_answer: None,
                strategy: engine::StrategyKind::NaiveExact,
                guarantee: engine::Guarantee::Exact,
                class: relalgebra::classify::QueryClass::Positive,
                semantics: Semantics::Cwa,
                stats: engine::EngineStats::default(),
            })
        };
        // Keys land across shards but every one is findable again.
        for i in 0..32 {
            cache.insert(key(&format!("q{i}"), 1), report());
        }
        assert_eq!(cache.len(), 32);
        for i in 0..32 {
            assert!(cache.get(&key(&format!("q{i}"), 1)).is_some(), "q{i}");
        }
        assert!(cache.get(&key("q0", 2)).is_none(), "version is in the key");
        // Publish-time pruning reaches every shard.
        cache.insert(key("fresh", 2), report());
        cache.retain_version(2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key("fresh", 2)).is_some());
        // A tiny total capacity still leaves one slot per shard.
        let tiny = ShardedResultCache::new(1);
        tiny.insert(key("a", 1), report());
        assert!(tiny.get(&key("a", 1)).is_some());
    }

    #[test]
    fn plan_cache_is_epoch_scoped() {
        let schema = relmodel::Schema::builder().relation("R", &["a"]).build();
        let plan = Arc::new(
            qparser::parse_and_plan("R", &schema).expect("R typechecks against the test schema"),
        );
        let mut cache = PlanCache::default();
        assert!(cache.get(0, "R").is_none());
        cache.insert(0, "R".into(), Arc::clone(&plan));
        assert!(cache.get(0, "R").is_some());
        assert!(cache.get(1, "R").is_none(), "wrong epoch never matches");
        // Inserting under a mismatched epoch stores nothing.
        cache.insert(1, "S".into(), Arc::clone(&plan));
        assert_eq!(cache.len(), 1);
        cache.reset(1);
        assert!(cache.is_empty());
        assert!(cache.get(1, "R").is_none());
    }
}
