//! Serving layer: a concurrent, snapshot-versioned certain-answer service.
//!
//! [`engine::Engine`] answers one query over one database; `serve` turns it
//! into a long-lived, thread-shared **service**. A [`CertainService`] owns a
//! sequence of immutable, versioned database [`Snapshot`]s and answers
//! textual queries against whichever snapshot is current when the request
//! arrives, with three layers of reuse stacked on top of the engine:
//!
//! * **Snapshot versioning (copy-on-write).** Writers build the next
//!   database *outside* any lock readers take, then publish it as version
//!   `v+1` with a pointer swap. Readers never block writers and vice versa;
//!   an in-flight query keeps its snapshot alive by `Arc` however many
//!   versions are published meanwhile, so every report is internally
//!   consistent with the `snapshot_version` it carries.
//! * **Per-snapshot dispatch context.** The null census and the (lazy)
//!   conflict graph live on the snapshot, not the request: N queries on one
//!   snapshot measure the database once and build the conflict graph exactly
//!   once, however many threads ask ([`Snapshot::conflict_graph_builds`]).
//! * **Plan + result caches.** Plans are cached by whitespace-normalized
//!   query text and survive data-only version bumps (they depend only on the
//!   schema, tracked by epoch); certain-answer reports are cached by
//!   (query, version, semantics, options-fingerprint), so a version bump
//!   invalidates every stale answer *by construction* — a stale key can no
//!   longer match — and callers with different budgets can never share an
//!   answer (the degradation-correctness guarantee; see
//!   [`EngineOptions::fingerprint`]).
//! * **Observability.** Every answered query lands in a lock-free latency
//!   histogram grid keyed by (strategy, cache outcome) — rendered by
//!   [`CertainService::metrics_text`] (Prometheus-style) and
//!   [`CertainService::metrics_json`] (one BENCH-compatible line) — and
//!   arming [`ServeOptions::slow_query_threshold`] captures the last N slow
//!   queries with their full engine span trees
//!   ([`CertainService::slow_queries`]).
//!
//! Reports come back as the engine's own [`CertainReport`], with the
//! service-only stats fields filled in: `stats.snapshot_version` says which
//! snapshot answered, `stats.plan_cache_hit` whether planning was skipped,
//! and `stats.cache_hit` whether the whole answer came from the result
//! cache.
//!
//! ```
//! use relmodel::builder::DatabaseBuilder;
//! use serve::CertainService;
//!
//! let service = CertainService::new(
//!     DatabaseBuilder::new().relation("R", &["a"]).ints("R", &[1]).build(),
//! );
//! let cold = service.submit("R").unwrap();
//! assert!(!cold.stats.cache_hit);
//! let hot = service.submit("R").unwrap();
//! assert!(hot.stats.cache_hit && hot.stats.plan_cache_hit);
//! assert_eq!(hot.answers, cold.answers);
//!
//! service.update(|db| {
//!     db.insert("R", relmodel::Tuple::new(vec![relmodel::Value::int(2)])).unwrap();
//! });
//! let fresh = service.submit("R").unwrap();
//! assert!(!fresh.stats.cache_hit, "the version bump invalidated the cache");
//! assert_eq!(fresh.stats.snapshot_version, Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod snapshot;
mod stats;

pub use cache::{normalize, PlanCache, ResultCache, ResultKey, ShardedResultCache, RESULT_SHARDS};
pub use snapshot::{Snapshot, SnapshotEngine};
pub use stats::ServiceTelemetry;

use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use engine::{CertainReport, EngineError, EngineOptions, Semantics, StrategyKind};
use obs::{MetricsRegistry, SlowQueryRing};
use relalgebra::plan::PlannedQuery;
use relmodel::Database;

use cache::{PlanCache as Plans, ShardedResultCache as Results};
use stats::ServiceStats;

/// Construction-time configuration for a [`CertainService`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The semantics [`CertainService::submit`] answers under
    /// (`submit_with` overrides per request).
    pub semantics: Semantics,
    /// The engine options `submit` runs with. A `morsel_rows` of `None` is
    /// seeded from the `MORSEL_ROWS` environment variable **once, at service
    /// construction** — the morsel size is a per-service decision, not a
    /// per-process global re-read on every call.
    pub engine_options: EngineOptions,
    /// Result-cache capacity in reports (FIFO-evicted beyond it).
    pub max_result_entries: usize,
    /// Arm the slow-query ring: queries whose end-to-end service latency
    /// reaches the threshold are captured (with their full [`obs::Span`]
    /// trace — the service forces [`EngineOptions::trace`] on when this is
    /// set) and readable via [`CertainService::slow_queries`]. `None` (the
    /// default) records nothing and forces nothing.
    pub slow_query_threshold: Option<Duration>,
    /// How many slow queries the ring retains (oldest evicted beyond it).
    pub slow_query_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            semantics: Semantics::Cwa,
            engine_options: EngineOptions::default(),
            max_result_entries: 4096,
            slow_query_threshold: None,
            slow_query_capacity: 32,
        }
    }
}

/// One query captured by the service's slow-query ring: everything needed
/// to understand it after the fact, including the engine's full span tree.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The query as submitted (original text, not the normalized cache key).
    pub query: String,
    /// The strategy that answered it.
    pub strategy: StrategyKind,
    /// End-to-end service latency: cache lookups, planning, and execution.
    pub latency: Duration,
    /// The snapshot version that answered.
    pub version: u64,
    /// Whether the answer came from the result cache (the trace then
    /// describes the original computation, not this lookup).
    pub cache_hit: bool,
    /// The engine's span tree for the query (present whenever the ring is
    /// armed, because the service forces tracing on).
    pub trace: Option<obs::Span>,
}

/// A long-lived, thread-shared certain-answer service over snapshot-versioned
/// databases. See the [module docs](self) for the design; construction is
/// [`CertainService::new`]/[`CertainService::with_options`], the read path is
/// [`CertainService::submit`] and friends, the write path is
/// [`CertainService::update`]/[`CertainService::replace`].
///
/// All methods take `&self`: share the service across threads as-is or in an
/// `Arc`.
#[derive(Debug)]
pub struct CertainService {
    /// The published snapshot. The write lock is held only for the pointer
    /// swap — never while cloning, mutating, or measuring a database.
    current: RwLock<Arc<Snapshot>>,
    /// Serializes writers, so concurrent updates compose (each clones the
    /// latest database) instead of lost-updating each other. Held across the
    /// whole clone-mutate-measure-publish cycle; readers never take it.
    writer: Mutex<()>,
    plans: RwLock<Plans>,
    /// Hash-sharded: unrelated queries take different locks, so a client
    /// fleet of cache hits doesn't serialize on one mutex.
    results: Results,
    stats: ServiceStats,
    semantics: Semantics,
    engine_options: EngineOptions,
    /// Latency histograms over the frozen {strategy} × {hit, miss} grid plus
    /// cache/snapshot gauges; recording is lock-free (see [`obs::registry`]).
    metrics: MetricsRegistry,
    /// The last N queries at or over `slow_threshold`, span trees included.
    slow: SlowQueryRing<SlowQuery>,
    slow_threshold: Option<Duration>,
    /// When the current snapshot was published (construction counts), for
    /// the snapshot-age gauge.
    published_at: Mutex<Instant>,
}

/// The frozen metrics shape: one latency histogram per (strategy, cache
/// outcome) pair the engine can ever report, plus the service gauges.
fn build_metrics() -> MetricsRegistry {
    let mut builder = MetricsRegistry::builder();
    for kind in StrategyKind::ALL {
        for cache in ["hit", "miss"] {
            builder = builder.histogram(
                "serve_query_latency_ns",
                &[("strategy", kind.name()), ("cache", cache)],
            );
        }
    }
    builder
        .gauge("serve_result_hit_rate")
        .gauge("serve_plan_hit_rate")
        .gauge("serve_snapshot_version")
        .gauge("serve_snapshot_age_seconds")
        .build()
}

impl CertainService {
    /// A service over `db` with [`ServeOptions::default`]: CWA semantics,
    /// default engine budgets, env-seeded morsel size.
    pub fn new(db: Database) -> Self {
        CertainService::with_options(db, ServeOptions::default())
    }

    /// A service over `db` with explicit options. The initial snapshot is
    /// version 0.
    pub fn with_options(db: Database, options: ServeOptions) -> Self {
        let mut engine_options = options.engine_options;
        if engine_options.morsel_rows.is_none() {
            // Read the environment seed exactly once, here: every query this
            // service ever runs uses this morsel size, no matter what the
            // process environment does later.
            engine_options = engine_options.with_morsel_rows(relmodel::batch::morsel_rows());
        }
        CertainService {
            current: RwLock::new(Arc::new(Snapshot::new(0, 0, db))),
            writer: Mutex::new(()),
            plans: RwLock::new(Plans::default()),
            results: Results::new(options.max_result_entries),
            stats: ServiceStats::default(),
            semantics: options.semantics,
            engine_options,
            metrics: build_metrics(),
            slow: SlowQueryRing::new(options.slow_query_capacity),
            slow_threshold: options.slow_query_threshold,
            published_at: Mutex::new(Instant::now()),
        }
    }

    /// The current snapshot. The returned `Arc` pins it: queries answered
    /// through it stay on this version even while writers publish newer ones.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// The current snapshot version (0 at construction, +1 per publish).
    pub fn version(&self) -> u64 {
        self.snapshot().version()
    }

    /// The engine options `submit`/`submit_batch` run with (morsel size
    /// already pinned).
    pub fn engine_options(&self) -> &EngineOptions {
        &self.engine_options
    }

    /// Answers `query` on the current snapshot under the service's default
    /// semantics and options.
    pub fn submit(&self, query: &str) -> Result<CertainReport, EngineError> {
        self.submit_with(query, self.semantics, self.engine_options)
    }

    /// Answers `query` on the current snapshot under caller-chosen semantics
    /// and options. Distinct options never share cached answers — asking
    /// with a bigger budget recomputes rather than inheriting a degraded
    /// report.
    pub fn submit_with(
        &self,
        query: &str,
        semantics: Semantics,
        options: EngineOptions,
    ) -> Result<CertainReport, EngineError> {
        self.answer_on(&self.snapshot(), query, semantics, options)
    }

    /// Answers a batch of queries against **one** snapshot (all reports
    /// carry the same `snapshot_version`, even if a writer publishes
    /// mid-batch), under the service's default semantics and options.
    ///
    /// Batch members share everything the service shares — repeated queries
    /// share one plan lowering via the plan cache, and under
    /// [`Semantics::ConsistentAnswers`] the whole batch shares the
    /// snapshot's one conflict-graph build.
    pub fn submit_batch(&self, queries: &[&str]) -> Vec<Result<CertainReport, EngineError>> {
        self.submit_batch_with(queries, self.semantics, self.engine_options)
    }

    /// [`CertainService::submit_batch`] with caller-chosen semantics and
    /// options.
    pub fn submit_batch_with(
        &self,
        queries: &[&str],
        semantics: Semantics,
        options: EngineOptions,
    ) -> Vec<Result<CertainReport, EngineError>> {
        ServiceStats::bump(&self.stats.batches);
        let snap = self.snapshot();
        queries
            .iter()
            .map(|q| self.answer_on(&snap, q, semantics, options))
            .collect()
    }

    /// The cache-through read path: result cache, then plan cache, then the
    /// engine, all against the one snapshot the caller pinned — wrapped in
    /// the service's latency metrics and slow-query capture.
    fn answer_on(
        &self,
        snap: &Snapshot,
        query: &str,
        semantics: Semantics,
        mut options: EngineOptions,
    ) -> Result<CertainReport, EngineError> {
        if self.slow_threshold.is_some() {
            // Force tracing *before* the cache key is computed: an armed
            // service has one fingerprint per caller-option set, so traced
            // and untraced runs of the same query never share a cache line
            // and every cached report carries a span tree.
            options = options.with_trace(true);
        }
        let started = Instant::now();
        let result = self.answer_uninstrumented(snap, query, semantics, options);
        if let Ok(report) = &result {
            self.observe(query, report, started.elapsed());
        }
        result
    }

    /// Records a finished query into the latency grid and, at or over the
    /// threshold, the slow-query ring.
    fn observe(&self, query: &str, report: &CertainReport, latency: Duration) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let cache = if report.stats.cache_hit {
            "hit"
        } else {
            "miss"
        };
        self.metrics.record(
            "serve_query_latency_ns",
            &[("strategy", report.strategy.name()), ("cache", cache)],
            nanos,
        );
        let Some(threshold) = self.slow_threshold else {
            return;
        };
        if latency >= threshold {
            self.slow.push(SlowQuery {
                query: query.to_owned(),
                strategy: report.strategy,
                latency,
                version: report.stats.snapshot_version.unwrap_or_default(),
                cache_hit: report.stats.cache_hit,
                trace: report.stats.trace.clone(),
            });
        }
    }

    fn answer_uninstrumented(
        &self,
        snap: &Snapshot,
        query: &str,
        semantics: Semantics,
        options: EngineOptions,
    ) -> Result<CertainReport, EngineError> {
        ServiceStats::bump(&self.stats.queries);
        let normalized = normalize(query);
        let key = ResultKey {
            query: normalized,
            version: snap.version(),
            semantics,
            options_fp: options.fingerprint(),
        };

        if let Some(cached) = self.results.get(&key) {
            ServiceStats::bump(&self.stats.result_hits);
            // Plan lookup was skipped along with everything else.
            ServiceStats::bump(&self.stats.plan_hits);
            let mut report = (*cached).clone();
            report.stats.cache_hit = true;
            report.stats.plan_cache_hit = true;
            return Ok(report);
        }
        ServiceStats::bump(&self.stats.result_misses);

        let (plan, plan_cache_hit) = self.plan_on(snap, query, &key.query)?;
        // Errors (here and in planning above) are returned, never cached: a
        // transient budget error must not shadow a later successful answer.
        let mut report = snap.engine(semantics, options).plan_prepared(&plan)?;
        report.stats.snapshot_version = Some(snap.version());
        report.stats.plan_cache_hit = plan_cache_hit;
        self.results.insert(key, Arc::new(report.clone()));
        Ok(report)
    }

    /// Parse + typecheck + lower `query` against the snapshot's schema, or
    /// reuse the cached plan when the snapshot's schema epoch has one.
    fn plan_on(
        &self,
        snap: &Snapshot,
        query: &str,
        normalized: &str,
    ) -> Result<(Arc<PlannedQuery>, bool), EngineError> {
        let epoch = snap.schema_epoch();
        if let Some(plan) = self
            .plans
            .read()
            .expect("plan cache lock poisoned")
            .get(epoch, normalized)
        {
            ServiceStats::bump(&self.stats.plan_hits);
            return Ok((plan, true));
        }
        ServiceStats::bump(&self.stats.plan_misses);
        // Plan the ORIGINAL text (normalization is a cache key, not a
        // rewrite), against the pinned snapshot's schema.
        let plan = Arc::new(qparser::parse_and_plan(query, snap.database().schema())?);
        let plan = self
            .plans
            .write()
            .expect("plan cache lock poisoned")
            .insert(epoch, normalized.to_owned(), plan);
        Ok((plan, false))
    }

    /// Publishes the next snapshot: clones the current database, applies
    /// `mutate`, and swaps it in as version `current + 1`. Returns the new
    /// version.
    ///
    /// The clone, the mutation, and the (two-linear-scan) measurement all
    /// happen outside the snapshot lock — readers keep answering on the old
    /// version throughout and switch atomically at the pointer swap. A
    /// schema-changing mutation additionally starts a new plan-cache epoch.
    pub fn update(&self, mutate: impl FnOnce(&mut Database)) -> u64 {
        let _writing = self.writer.lock().expect("writer lock poisoned");
        let prev = self.snapshot();
        let mut db = (**prev.database()).clone();
        mutate(&mut db);
        self.publish(&prev, db)
    }

    /// Publishes `db` wholesale as the next snapshot (schema may differ
    /// arbitrarily from the current one). Returns the new version.
    pub fn replace(&self, db: Database) -> u64 {
        let _writing = self.writer.lock().expect("writer lock poisoned");
        let prev = self.snapshot();
        self.publish(&prev, db)
    }

    /// The shared tail of [`CertainService::update`]/[`CertainService::replace`]:
    /// caller holds the writer lock and `prev` is the latest snapshot.
    fn publish(&self, prev: &Snapshot, db: Database) -> u64 {
        let schema_changed = db.schema() != prev.database().schema();
        let epoch = prev.schema_epoch() + u64::from(schema_changed);
        let version = prev.version() + 1;
        // The expensive part — measuring the census — runs before any reader
        // is blocked.
        let next = Arc::new(Snapshot::new(version, epoch, db));
        *self.current.write().expect("snapshot lock poisoned") = next;
        if schema_changed {
            self.plans
                .write()
                .expect("plan cache lock poisoned")
                .reset(epoch);
        }
        // Invalidation proper is by key (stale versions can't match); this
        // only reclaims their memory.
        self.results.retain_version(version);
        ServiceStats::bump(&self.stats.updates);
        *self.published_at.lock().expect("publish clock poisoned") = Instant::now();
        self.metrics
            .set_gauge("serve_snapshot_version", version as f64);
        version
    }

    /// A point-in-time copy of the service counters.
    pub fn telemetry(&self) -> ServiceTelemetry {
        self.stats.snapshot()
    }

    /// The service's metrics registry (latency histograms per
    /// {strategy, cache outcome}, plus gauges). Gauges are refreshed by the
    /// render methods; read through this for programmatic access to the
    /// histograms.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The Prometheus-style metrics page: latency quantiles per recorded
    /// (strategy, cache) pair, cache hit-rate gauges, snapshot version and
    /// age. Gauges are refreshed at call time.
    pub fn metrics_text(&self) -> String {
        self.refresh_gauges();
        self.metrics.render_text()
    }

    /// The same metrics as one BENCH-compatible JSON line.
    pub fn metrics_json(&self) -> String {
        self.refresh_gauges();
        self.metrics.render_json()
    }

    fn refresh_gauges(&self) {
        let t = self.telemetry();
        self.metrics
            .set_gauge("serve_result_hit_rate", t.result_hit_rate());
        self.metrics
            .set_gauge("serve_plan_hit_rate", t.plan_hit_rate());
        self.metrics
            .set_gauge("serve_snapshot_version", self.version() as f64);
        let age = self
            .published_at
            .lock()
            .expect("publish clock poisoned")
            .elapsed();
        self.metrics
            .set_gauge("serve_snapshot_age_seconds", age.as_secs_f64());
    }

    /// The captured slow queries, oldest first — empty unless
    /// [`ServeOptions::slow_query_threshold`] armed the ring. Each entry
    /// carries the full span tree of its query.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use engine::{FallbackReason, Guarantee, StrategyKind};
    use relmodel::builder::DatabaseBuilder;
    use relmodel::{Tuple, Value};

    fn ints(values: &[i64]) -> relmodel::Relation {
        let mut rel = relmodel::Relation::new(1);
        for v in values {
            rel.insert(Tuple::new(vec![Value::int(*v)]));
        }
        rel
    }

    fn one_relation() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["a"])
            .ints("R", &[1])
            .ints("R", &[2])
            .build()
    }

    /// Two tuples sharing key 1 → two repairs; enumeration is exact, the
    /// starved budget degrades to the conflict-free core.
    fn dirty() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 30])
            .build()
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CertainService>();
        assert_send_sync::<Arc<Snapshot>>();
    }

    #[test]
    fn repeated_query_hits_both_caches() {
        let service = CertainService::new(one_relation());
        let cold = service.submit("R").unwrap();
        assert!(!cold.stats.cache_hit);
        assert!(!cold.stats.plan_cache_hit);
        assert_eq!(cold.stats.snapshot_version, Some(0));
        assert_eq!(cold.answers, ints(&[1, 2]));

        let hot = service.submit("R").unwrap();
        assert!(hot.stats.cache_hit, "identical resubmit hits the cache");
        assert!(hot.stats.plan_cache_hit);
        assert_eq!(hot.answers, cold.answers);
        assert_eq!(hot.guarantee, cold.guarantee);

        // Whitespace variants share both caches.
        let spaced = service.submit("  R \n").unwrap();
        assert!(spaced.stats.cache_hit);

        let t = service.telemetry();
        assert_eq!(t.queries, 3);
        assert_eq!(t.result_hits, 2);
        assert_eq!(t.result_misses, 1);
        assert_eq!(t.plan_misses, 1);
    }

    #[test]
    fn version_bump_invalidates_results_but_not_plans() {
        let service = CertainService::new(one_relation());
        assert_eq!(service.version(), 0);
        service.submit("R").unwrap();

        let v = service.update(|db| {
            db.insert("R", Tuple::new(vec![Value::int(3)])).unwrap();
        });
        assert_eq!(v, 1);
        assert_eq!(service.version(), 1);

        let fresh = service.submit("R").unwrap();
        assert!(
            !fresh.stats.cache_hit,
            "a result computed on version 0 must not answer version 1"
        );
        assert!(
            fresh.stats.plan_cache_hit,
            "a data-only bump keeps the schema, hence the plan"
        );
        assert_eq!(fresh.stats.snapshot_version, Some(1));
        assert_eq!(fresh.answers, ints(&[1, 2, 3]));
    }

    #[test]
    fn starved_budget_report_is_never_served_to_a_bigger_budget() {
        let service = CertainService::with_options(
            dirty(),
            ServeOptions {
                semantics: Semantics::ConsistentAnswers,
                ..ServeOptions::default()
            },
        );
        let starved = service
            .submit_with(
                "R",
                Semantics::ConsistentAnswers,
                EngineOptions::default().with_max_repairs(1),
            )
            .unwrap();
        assert_eq!(starved.strategy, StrategyKind::ConflictFreeCore);
        assert_eq!(starved.guarantee, Guarantee::Sound);
        assert!(matches!(
            starved.stats.fallback,
            Some(FallbackReason::RepairBudget { .. })
        ));

        // Same query, same snapshot, default (bigger) budget: the degraded
        // report must not come back.
        let full = service.submit("R").unwrap();
        assert!(
            !full.stats.cache_hit,
            "distinct options fingerprints must not share a cache line"
        );
        assert_eq!(full.strategy, StrategyKind::RepairEnumeration);
        assert_eq!(full.guarantee, Guarantee::Exact);
        // Tuple (2,30) is in every repair; neither key-1 tuple is.
        assert_eq!(full.answers.len(), 1);

        // And each budget is hot for itself afterwards.
        let starved_again = service
            .submit_with(
                "R",
                Semantics::ConsistentAnswers,
                EngineOptions::default().with_max_repairs(1),
            )
            .unwrap();
        assert!(starved_again.stats.cache_hit);
        assert_eq!(starved_again.guarantee, Guarantee::Sound);
        let full_again = service.submit("R").unwrap();
        assert!(full_again.stats.cache_hit);
        assert_eq!(full_again.guarantee, Guarantee::Exact);
    }

    #[test]
    fn one_snapshot_builds_the_conflict_graph_exactly_once() {
        let service = CertainService::with_options(
            dirty(),
            ServeOptions {
                semantics: Semantics::ConsistentAnswers,
                ..ServeOptions::default()
            },
        );
        let snap = service.snapshot();
        assert_eq!(snap.conflict_graph_builds(), 0, "lazy until first use");

        // Cold + hot submits and a batch of distinct queries: one build.
        service.submit("R").unwrap();
        service.submit("R").unwrap();
        for result in service.submit_batch(&["R", "R union R", "R intersect R"]) {
            result.unwrap();
        }
        assert_eq!(snap.conflict_graph_builds(), 1);

        // The *next* snapshot measures its own graph — exactly once too.
        service.update(|db| {
            db.insert("R", Tuple::new(vec![Value::int(9), Value::int(9)]))
                .unwrap();
        });
        let snap2 = service.snapshot();
        service.submit("R").unwrap();
        service.submit("R union R").unwrap();
        assert_eq!(snap2.conflict_graph_builds(), 1);
        assert_eq!(snap.conflict_graph_builds(), 1, "old snapshot untouched");
    }

    #[test]
    fn schema_change_starts_a_new_plan_epoch() {
        let service = CertainService::new(one_relation());
        service.submit("R").unwrap();
        let before = service.telemetry();
        assert_eq!(before.plan_misses, 1);

        let v = service.replace(
            DatabaseBuilder::new()
                .relation("R", &["a"])
                .relation("S", &["a"])
                .ints("R", &[7])
                .ints("S", &[7])
                .build(),
        );
        assert_eq!(v, 1);

        // "S" only typechecks against the new schema; "R" must re-plan (its
        // cached plan belonged to the old epoch).
        let s = service.submit("S").unwrap();
        assert!(!s.stats.plan_cache_hit);
        assert_eq!(s.answers, ints(&[7]));
        let r = service.submit("R").unwrap();
        assert!(!r.stats.plan_cache_hit, "old-epoch plans were dropped");
        assert_eq!(r.answers, ints(&[7]));
        assert_eq!(service.telemetry().plan_misses, 3);
    }

    #[test]
    fn batch_pins_one_snapshot_and_reports_it() {
        let service = CertainService::new(one_relation());
        service.update(|_| {});
        let reports = service.submit_batch(&["R", "R union R"]);
        for report in reports {
            let report = report.unwrap();
            assert_eq!(report.stats.snapshot_version, Some(1));
        }
        let t = service.telemetry();
        assert_eq!(t.batches, 1);
        assert_eq!(t.queries, 2);
    }

    #[test]
    fn errors_are_returned_and_not_cached() {
        let service = CertainService::new(one_relation());
        assert!(service.submit("NoSuchRelation").is_err());
        assert!(service.submit("NoSuchRelation").is_err());
        let t = service.telemetry();
        assert_eq!(t.result_hits, 0, "errors never populate the cache");
        assert_eq!(t.result_misses, 2);
    }

    #[test]
    fn metrics_grid_records_latencies_and_gauges() {
        let service = CertainService::new(one_relation());
        service.submit("R").unwrap();
        service.submit("R").unwrap();
        let grid = |cache| {
            service.metrics().histogram_count(
                "serve_query_latency_ns",
                &[("strategy", "naive-exact"), ("cache", cache)],
            )
        };
        assert_eq!(grid("miss"), 1, "cold submit recorded as a miss");
        assert_eq!(grid("hit"), 1, "hot submit recorded as a hit");

        let text = service.metrics_text();
        assert!(
            text.contains(
                "serve_query_latency_ns{strategy=\"naive-exact\",cache=\"hit\",quantile=\"0.5\"}"
            ),
            "got: {text}"
        );
        assert!(text.contains("serve_result_hit_rate 0.5"), "got: {text}");
        assert!(text.contains("serve_snapshot_version 0"), "got: {text}");

        let json = service.metrics_json();
        assert!(!json.contains('\n'), "one line for BENCH artifacts");
        assert!(json.contains("\"serve_snapshot_version\":0"), "got: {json}");
        service.update(|_| {});
        let json = service.metrics_json();
        assert!(json.contains("\"serve_snapshot_version\":1"), "got: {json}");
    }

    #[test]
    fn armed_slow_query_ring_captures_full_traces() {
        let service = CertainService::with_options(
            one_relation(),
            ServeOptions {
                slow_query_threshold: Some(std::time::Duration::ZERO),
                slow_query_capacity: 4,
                ..ServeOptions::default()
            },
        );
        service.submit("R").unwrap();
        service.submit("R").unwrap();
        let slow = service.slow_queries();
        assert_eq!(slow.len(), 2, "zero threshold captures everything");

        let cold = &slow[0];
        assert_eq!(cold.query, "R");
        assert!(!cold.cache_hit);
        assert_eq!(cold.strategy, StrategyKind::NaiveExact);
        assert_eq!(cold.version, 0);
        let trace = cold.trace.as_ref().expect("armed ring forces tracing");
        assert_eq!(trace.name, "query");
        assert!(trace.find("plan").is_some());
        assert!(trace.find("execute").is_some());
        assert!(trace.find("naive-exact").is_some());

        let hot = &slow[1];
        assert!(hot.cache_hit);
        assert!(
            hot.trace.is_some(),
            "a cached report keeps the trace of the original computation"
        );

        // An unarmed service forces nothing and captures nothing.
        let plain = CertainService::new(one_relation());
        let report = plain.submit("R").unwrap();
        assert!(report.stats.trace.is_none());
        assert!(plain.slow_queries().is_empty());
    }

    #[test]
    fn in_flight_snapshot_outlives_publishes() {
        let service = CertainService::new(one_relation());
        let pinned = service.snapshot();
        service.update(|db| {
            db.insert("R", Tuple::new(vec![Value::int(3)])).unwrap();
        });
        service.update(|db| {
            db.insert("R", Tuple::new(vec![Value::int(4)])).unwrap();
        });
        // The pinned snapshot still answers with its own version's data.
        let old = service
            .answer_on(&pinned, "R", Semantics::Cwa, *service.engine_options())
            .unwrap();
        assert_eq!(old.stats.snapshot_version, Some(0));
        assert_eq!(old.answers, ints(&[1, 2]));
        let new = service.submit("R").unwrap();
        assert_eq!(new.stats.snapshot_version, Some(2));
        assert_eq!(new.answers, ints(&[1, 2, 3, 4]));
    }
}
