//! # datagen — synthetic workloads for the experiments
//!
//! The paper has no accompanying datasets (it is a theory keynote), so the
//! benchmark harness generates synthetic ones:
//!
//! * [`orders`] — the orders/payments schema of the paper's introduction, at
//!   configurable scale and null rate;
//! * [`random`] — random incomplete databases over simple schemas, with a
//!   controlled number of marked nulls (the parameter that drives the
//!   exponential cost of possible-world enumeration);
//! * [`inconsistent`] — random databases with declared keys / FDs / denial
//!   constraints and a controllable violation rate (the parameter that
//!   drives the exponential cost of repair enumeration), plus a null-rate
//!   knob so inconsistency × incompleteness cases are fuzzable;
//! * [`queries`] — random positive (UCQ-style) queries and division queries,
//!   used to validate naïve evaluation broadly rather than on hand-picked
//!   examples.
//!
//! All generators are deterministic given a seed (they use `StdRng`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inconsistent;
pub mod orders;
pub mod queries;
pub mod random;

pub use inconsistent::{inconsistent_schema, random_inconsistent_database, InconsistentDbConfig};
pub use orders::{orders_database, OrdersConfig};
pub use queries::{
    random_division_query, random_full_ra_query, random_mixed_query, random_positive_query,
    QueryGenConfig,
};
pub use random::{
    null_rate_schema, random_database, random_database_with_null_free,
    random_database_with_null_rate, RandomDbConfig,
};
