//! Generator for the paper's orders/payments scenario at scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relmodel::{Database, Schema, Tuple, Value};

/// Configuration for [`orders_database`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdersConfig {
    /// Number of orders.
    pub orders: usize,
    /// Number of payments (each references a random order).
    pub payments: usize,
    /// Probability that a payment's `order` attribute is a null (SQL-style
    /// missing value).
    pub null_rate: f64,
    /// Number of distinct products.
    pub products: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OrdersConfig {
    fn default() -> Self {
        OrdersConfig {
            orders: 100,
            payments: 80,
            null_rate: 0.1,
            products: 20,
            seed: 42,
        }
    }
}

/// The orders/payments schema: `Order(o_id, product)`, `Pay(p_id, order, amount)`.
pub fn orders_schema() -> Schema {
    Schema::builder()
        .relation("Order", &["o_id", "product"])
        .relation("Pay", &["p_id", "order", "amount"])
        .build()
}

/// Generates an orders/payments database. Payments reference random orders;
/// with probability `null_rate` the referenced order is replaced by a fresh
/// marked null (a Codd-style missing value).
pub fn orders_database(config: &OrdersConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut db = Database::new(orders_schema());
    for i in 0..config.orders {
        let product = rng.gen_range(0..config.products.max(1));
        db.insert(
            "Order",
            Tuple::new(vec![
                Value::str(format!("oid{i}")),
                Value::str(format!("pr{product}")),
            ]),
        )
        .expect("order tuples match the schema");
    }
    let mut next_null = 0u64;
    for i in 0..config.payments {
        let order_ref = if config.orders > 0 && rng.gen_bool(1.0 - config.null_rate.clamp(0.0, 1.0))
        {
            Value::str(format!("oid{}", rng.gen_range(0..config.orders)))
        } else {
            let v = Value::null(next_null);
            next_null += 1;
            v
        };
        let amount = rng.gen_range(1..=500);
        db.insert(
            "Pay",
            Tuple::new(vec![
                Value::str(format!("pid{i}")),
                order_ref,
                Value::int(amount),
            ]),
        )
        .expect("payment tuples match the schema");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let cfg = OrdersConfig {
            orders: 10,
            payments: 7,
            null_rate: 0.5,
            products: 3,
            seed: 1,
        };
        let db = orders_database(&cfg);
        assert_eq!(db.relation("Order").unwrap().len(), 10);
        assert_eq!(db.relation("Pay").unwrap().len(), 7);
        assert!(db.is_codd(), "payment nulls are all distinct (Codd-style)");
    }

    #[test]
    fn null_rate_zero_and_one() {
        let none = orders_database(&OrdersConfig {
            null_rate: 0.0,
            ..OrdersConfig::default()
        });
        assert!(none.is_complete());
        let all = orders_database(&OrdersConfig {
            payments: 20,
            null_rate: 1.0,
            ..OrdersConfig::default()
        });
        assert_eq!(all.null_ids().len(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = orders_database(&OrdersConfig::default());
        let b = orders_database(&OrdersConfig::default());
        assert_eq!(a, b);
        let c = orders_database(&OrdersConfig {
            seed: 7,
            ..OrdersConfig::default()
        });
        assert_ne!(a, c);
    }
}
