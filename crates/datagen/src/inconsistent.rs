//! Random *inconsistent* databases: declared keys / FDs / denial
//! constraints with a controllable violation rate — the CQA counterpart of
//! [`crate::random`].
//!
//! The schema keeps the [`crate::random::random_schema`] vocabulary
//! (`R(a, b)`, `S(a)`, `T(a, b)`) so the existing random query generators
//! apply unchanged, and adds:
//!
//! * a primary key `R(a)` — violated by reusing an existing key with a
//!   different payload;
//! * a functional dependency `T: a → b` — violated the same way;
//! * a unary denial constraint on `S` forbidding the sentinel value
//!   [`FORBIDDEN`] — violated by inserting it.
//!
//! A `null_rate_percent` knob mixes marked nulls into the data, so the
//! inconsistency × incompleteness composition (repairs that are themselves
//! incomplete databases) is fuzzable. With `violation_rate_percent = 0` the
//! generator *guarantees* a consistent database (would-be accidental
//! violations are re-rolled), so "no violations ⇒ delegate" paths are
//! testable deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relmodel::constraint::CompareOp;
use relmodel::value::Constant;
use relmodel::{Database, Schema, Tuple, Value};

/// The sentinel value the denial constraint on `S` forbids. Kept outside
/// the generator's normal domain so it only appears via deliberate
/// injection.
pub const FORBIDDEN: i64 = 666;

/// Configuration for [`random_inconsistent_database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InconsistentDbConfig {
    /// Tuples per relation.
    pub tuples_per_relation: usize,
    /// Size of the constant pool values are drawn from.
    pub domain_size: usize,
    /// Per-tuple probability (in percent) of deliberately injecting a
    /// violation: a key/FD clash on `R`/`T`, the forbidden value on `S`.
    pub violation_rate_percent: u32,
    /// Per-position probability (in percent) of placing a marked null.
    pub null_rate_percent: u32,
    /// Number of distinct marked nulls available (nulls repeat).
    pub distinct_nulls: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InconsistentDbConfig {
    fn default() -> Self {
        InconsistentDbConfig {
            tuples_per_relation: 8,
            domain_size: 6,
            violation_rate_percent: 25,
            null_rate_percent: 0,
            distinct_nulls: 2,
            seed: 0,
        }
    }
}

/// The constrained schema: [`crate::random::random_schema`]'s relations
/// with `key R(a)`, `fd T: a → b`, and `deny S.a = FORBIDDEN`.
pub fn inconsistent_schema() -> Schema {
    Schema::builder()
        .relation("R", &["a", "b"])
        .relation("S", &["a"])
        .relation("T", &["a", "b"])
        .key("R", &["a"])
        .fd("T", &["a"], &["b"])
        .deny("S", "a", CompareOp::Eq, Constant::Int(FORBIDDEN))
        .build()
}

/// Generates a random database over [`inconsistent_schema`] with roughly
/// `violation_rate_percent` of tuples participating in injected violations.
/// Deterministic per seed; consistent by construction when the rate is 0.
pub fn random_inconsistent_database(config: &InconsistentDbConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0xd1b5_4a32).wrapping_add(7));
    let schema = inconsistent_schema();
    let mut db = Database::new(schema.clone());
    for rs in schema.iter() {
        for _ in 0..config.tuples_per_relation {
            let inject = config.violation_rate_percent > 0
                && rng.gen_range(0..100u32) < config.violation_rate_percent.min(100);
            let tuple = if inject {
                violating_tuple(&mut rng, &db, &rs.name, rs.arity(), config)
            } else {
                clean_tuple(&mut rng, &db, &rs.name, rs.arity(), config)
            };
            if let Some(t) = tuple {
                db.insert(&rs.name, t)
                    .expect("generated tuples match the schema");
            }
        }
    }
    db
}

/// A tuple engineered to violate the relation's constraint: reuse an
/// existing key with a fresh payload (`R`, `T`), or the forbidden sentinel
/// (`S`). Falls back to a clean tuple when there is no key to clash with
/// yet.
fn violating_tuple(
    rng: &mut StdRng,
    db: &Database,
    relation: &str,
    arity: usize,
    config: &InconsistentDbConfig,
) -> Option<Tuple> {
    if relation == "S" {
        return Some(Tuple::ints(&[FORBIDDEN]));
    }
    let existing: Vec<&Tuple> = db
        .relation(relation)
        .expect("schema relation")
        .iter()
        .collect();
    if existing.is_empty() {
        return clean_tuple(rng, db, relation, arity, config);
    }
    let victim = existing[rng.gen_range(0..existing.len())];
    // Same key (column 0), different payload: a key / FD clash. The payload
    // is drawn outside the normal domain so it cannot collide back into the
    // victim (set semantics would swallow an identical tuple).
    let payload = Value::int(config.domain_size as i64 + rng.gen_range(0..100) as i64);
    Some(Tuple::new(vec![victim.values()[0].clone(), payload]))
}

/// A tuple that keeps the database consistent: re-rolled (bounded) until it
/// neither clashes with an existing key nor mentions the forbidden value.
fn clean_tuple(
    rng: &mut StdRng,
    db: &Database,
    relation: &str,
    arity: usize,
    config: &InconsistentDbConfig,
) -> Option<Tuple> {
    let rel = db.relation(relation).expect("schema relation");
    for _ in 0..64 {
        let t: Tuple = (0..arity).map(|_| random_value(rng, config)).collect();
        let clashes = match relation {
            // Key / FD on column 0: a clean tuple must not reuse an existing
            // key unless it is the identical tuple (set semantics absorbs it).
            "R" | "T" => rel
                .iter()
                .any(|s| s.values()[0] == t.values()[0] && s != &t),
            _ => t.values()[0] == Value::int(FORBIDDEN),
        };
        if !clashes {
            return Some(t);
        }
    }
    // Domain exhausted (tiny domains at high tuple counts): skip the tuple
    // rather than emit an accidental violation.
    None
}

fn random_value(rng: &mut StdRng, config: &InconsistentDbConfig) -> Value {
    let use_null =
        config.distinct_nulls > 0 && rng.gen_range(0..100u32) < config.null_rate_percent.min(100);
    if use_null {
        Value::null(rng.gen_range(0..config.distinct_nulls as u64))
    } else {
        Value::int(rng.gen_range(0..config.domain_size.max(1) as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_violation_rate_is_consistent_by_construction() {
        for seed in 0..32 {
            let db = random_inconsistent_database(&InconsistentDbConfig {
                violation_rate_percent: 0,
                null_rate_percent: 30,
                seed,
                ..Default::default()
            });
            assert!(db.is_consistent(), "seed {seed}:\n{db}");
        }
    }

    #[test]
    fn positive_violation_rate_produces_violations() {
        let mut dirty = 0;
        for seed in 0..16 {
            let db = random_inconsistent_database(&InconsistentDbConfig {
                violation_rate_percent: 40,
                seed,
                ..Default::default()
            });
            if !db.is_consistent() {
                dirty += 1;
            }
        }
        assert!(
            dirty >= 12,
            "40% violation rate must usually produce dirt: {dirty}/16"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = InconsistentDbConfig::default();
        assert_eq!(
            random_inconsistent_database(&cfg),
            random_inconsistent_database(&cfg)
        );
        assert_ne!(
            random_inconsistent_database(&cfg),
            random_inconsistent_database(&InconsistentDbConfig { seed: 99, ..cfg })
        );
    }

    #[test]
    fn null_rate_mixes_incompleteness_in() {
        let db = random_inconsistent_database(&InconsistentDbConfig {
            null_rate_percent: 60,
            distinct_nulls: 3,
            seed: 5,
            ..Default::default()
        });
        assert!(!db.null_ids().is_empty());
        assert!(db.null_ids().iter().all(|n| n.0 < 3));
    }

    #[test]
    fn schema_matches_the_random_query_vocabulary() {
        let schema = inconsistent_schema();
        let plain = crate::random::random_schema();
        for rs in plain.iter() {
            assert_eq!(
                schema.relation(&rs.name).map(|r| r.arity()),
                Some(rs.arity()),
                "relation {}",
                rs.name
            );
        }
        assert_eq!(schema.constraints().len(), 3);
    }
}
