//! Random query generators: positive (UCQ-style) queries and division
//! (`RA_cwa`) queries over the [`crate::random::random_schema`] vocabulary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relalgebra::ast::RaExpr;
use relalgebra::predicate::{Operand, Predicate};
use relmodel::Schema;

/// Configuration for the random query generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryGenConfig {
    /// Maximum number of relation atoms joined by products.
    pub max_atoms: usize,
    /// Maximum number of disjuncts unioned together.
    pub max_union: usize,
    /// Size of the constant pool used in selection predicates.
    pub constant_pool: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            max_atoms: 2,
            max_union: 2,
            constant_pool: 5,
            seed: 0,
        }
    }
}

/// Generates a random *positive* relational algebra query (select, project,
/// product, union with equality-only predicates) over the given schema.
/// The output arity is 1.
pub fn random_positive_query(schema: &Schema, config: &QueryGenConfig) -> RaExpr {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let disjuncts = rng.gen_range(1..=config.max_union.max(1));
    let mut exprs: Vec<RaExpr> = Vec::new();
    for _ in 0..disjuncts {
        exprs.push(random_spj_block(schema, &mut rng, config));
    }
    let mut iter = exprs.into_iter();
    let first = iter.next().expect("at least one disjunct");
    iter.fold(first, |acc, e| acc.union(e))
}

/// Generates one select-project-join block of arity 1.
fn random_spj_block(schema: &Schema, rng: &mut StdRng, config: &QueryGenConfig) -> RaExpr {
    let relations: Vec<&relmodel::RelationSchema> = schema.iter().collect();
    let atoms = rng.gen_range(1..=config.max_atoms.max(1));
    let mut expr: Option<RaExpr> = None;
    let mut arities: Vec<usize> = Vec::new();
    for _ in 0..atoms {
        let rel = relations[rng.gen_range(0..relations.len())];
        arities.push(rel.arity());
        let base = RaExpr::relation(rel.name.clone());
        expr = Some(match expr {
            None => base,
            Some(e) => e.product(base),
        });
    }
    let total_arity: usize = arities.iter().sum();
    let mut expr = expr.expect("at least one atom");
    // Add a random join condition (equality of two columns) when possible, and
    // sometimes a constant selection.
    let mut predicate = Predicate::True;
    if total_arity >= 2 && rng.gen_bool(0.7) {
        let a = rng.gen_range(0..total_arity);
        let mut b = rng.gen_range(0..total_arity);
        if a == b {
            b = (b + 1) % total_arity;
        }
        predicate = predicate.and(Predicate::eq(Operand::col(a), Operand::col(b)));
    }
    if rng.gen_bool(0.5) {
        let col = rng.gen_range(0..total_arity);
        let value = rng.gen_range(0..config.constant_pool.max(1));
        predicate = predicate.and(Predicate::eq(Operand::col(col), Operand::int(value)));
    }
    if predicate != Predicate::True {
        expr = expr.select(predicate);
    }
    let out_col = rng.gen_range(0..total_arity);
    expr.project(vec![out_col])
}

/// Generates a random `RA_cwa` query: a positive block of arity 2 divided by a
/// unary base relation (division by a base relation is the paper's emblematic
/// `RA_cwa` operator).
pub fn random_division_query(schema: &Schema, config: &QueryGenConfig) -> RaExpr {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x9e3779b9));
    // Dividend: a binary base relation, possibly with a selection.
    let binary: Vec<&relmodel::RelationSchema> = schema.iter().filter(|r| r.arity() == 2).collect();
    let unary: Vec<&relmodel::RelationSchema> = schema.iter().filter(|r| r.arity() == 1).collect();
    assert!(
        !binary.is_empty() && !unary.is_empty(),
        "division generator needs a binary and a unary relation in the schema"
    );
    let dividend_rel = binary[rng.gen_range(0..binary.len())];
    let divisor_rel = unary[rng.gen_range(0..unary.len())];
    let mut dividend = RaExpr::relation(dividend_rel.name.clone());
    if rng.gen_bool(0.3) {
        let value = rng.gen_range(0..config.constant_pool.max(1));
        dividend = dividend.select(Predicate::eq(Operand::col(0), Operand::int(value)));
    }
    dividend.divide(RaExpr::relation(divisor_rel.name.clone()))
}

/// Generates a random **full RA** query: the difference of two independent
/// positive blocks, sometimes sharpened with an inequality selection or a
/// further intersection — the class where naïve evaluation has no guarantee
/// and the engine must answer symbolically or enumerate worlds. The output
/// arity is 1.
pub fn random_full_ra_query(schema: &Schema, config: &QueryGenConfig) -> RaExpr {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x51ed_270b));
    let left = random_positive_query(
        schema,
        &QueryGenConfig {
            seed: config.seed.wrapping_mul(2).wrapping_add(1),
            ..*config
        },
    );
    let mut right = random_positive_query(
        schema,
        &QueryGenConfig {
            seed: config.seed.wrapping_mul(2).wrapping_add(0x9000),
            ..*config
        },
    );
    if rng.gen_bool(0.3) {
        // A non-positive selection on the subtrahend: still full RA, and it
        // exercises `Neq` conditions through every evaluator.
        let value = rng.gen_range(0..config.constant_pool.max(1));
        right = right.select(Predicate::neq(Operand::col(0), Operand::int(value)));
    }
    let diff = left.difference(right);
    if rng.gen_bool(0.3) {
        let third = random_positive_query(
            schema,
            &QueryGenConfig {
                seed: config.seed.wrapping_mul(2).wrapping_add(0x7777),
                ..*config
            },
        );
        diff.intersection(third)
    } else {
        diff
    }
}

/// Generates a random **mixed** query: a non-monotone difference core over
/// `S` and `T` only, under a monotone top (a union with an independent
/// positive block that may read the nullable `R`). The result is full RA —
/// naïve evaluation has no guarantee — but when the database keeps `S` and
/// `T` null-free the core is *ground*, and the static analyzer's subtree
/// split reduces the query to its positive remainder. This is the workload
/// the analyzer-driven dispatch upgrade is measured on. The output arity
/// is 1.
pub fn random_mixed_query(schema: &Schema, config: &QueryGenConfig) -> RaExpr {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x3c6e_f372));
    // The core: S − π[i](T), sometimes sharpened by a constant selection.
    // Everything in it reads only S and T.
    let i = rng.gen_range(0..2);
    let mut core = RaExpr::relation("S").difference(RaExpr::relation("T").project(vec![i]));
    if rng.gen_bool(0.3) {
        let value = rng.gen_range(0..config.constant_pool.max(1));
        core = core.select(Predicate::eq(Operand::col(0), Operand::int(value)));
    }
    // The monotone top: union with a positive arity-1 block over the whole
    // schema, always joined by a projection of the nullable R so the query
    // is genuinely mixed (never fully ground).
    let block = random_positive_query(
        schema,
        &QueryGenConfig {
            seed: config.seed.wrapping_mul(5).wrapping_add(0xabcd),
            ..*config
        },
    );
    let block = block.union(RaExpr::relation("R").project(vec![rng.gen_range(0..2)]));
    if rng.gen_bool(0.5) {
        core.union(block)
    } else {
        block.union(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_schema;
    use relalgebra::classify::{classify, QueryClass};
    use relalgebra::typecheck::output_arity;

    #[test]
    fn positive_queries_are_positive_and_well_typed() {
        let schema = random_schema();
        for seed in 0..30 {
            let q = random_positive_query(
                &schema,
                &QueryGenConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert_eq!(
                classify(&q),
                QueryClass::Positive,
                "seed {seed} produced {q}"
            );
            assert_eq!(output_arity(&q, &schema), Ok(1), "seed {seed} produced {q}");
        }
    }

    #[test]
    fn division_queries_are_racwa_and_well_typed() {
        let schema = random_schema();
        for seed in 0..30 {
            let q = random_division_query(
                &schema,
                &QueryGenConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert_eq!(classify(&q), QueryClass::RaCwa, "seed {seed} produced {q}");
            assert_eq!(output_arity(&q, &schema), Ok(1), "seed {seed} produced {q}");
        }
    }

    #[test]
    fn full_ra_queries_are_full_ra_and_well_typed() {
        let schema = random_schema();
        for seed in 0..30 {
            let q = random_full_ra_query(
                &schema,
                &QueryGenConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert_eq!(classify(&q), QueryClass::FullRa, "seed {seed} produced {q}");
            assert_eq!(output_arity(&q, &schema), Ok(1), "seed {seed} produced {q}");
        }
    }

    #[test]
    fn mixed_queries_are_full_ra_with_a_ground_core_over_s_and_t() {
        use relalgebra::analysis::{analyze, NullCensus};
        // A census where S and T are null-free but R is not — the shape
        // `random_database_with_null_free(_, &["S", "T"])` produces.
        let census = NullCensus::builder()
            .relation("R", vec![true, true], [0], 2)
            .relation("S", vec![false], [], 0)
            .relation("T", vec![false, false], [], 0)
            .build();
        let schema = random_schema();
        let mut splittable = 0;
        for seed in 0..30 {
            let q = random_mixed_query(
                &schema,
                &QueryGenConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert_eq!(classify(&q), QueryClass::FullRa, "seed {seed} produced {q}");
            assert_eq!(output_arity(&q, &schema), Ok(1), "seed {seed} produced {q}");
            let analysis = analyze(&q, &census);
            // The top always reads the nullable R, so the query is never
            // ground outright — and the difference core reads only
            // null-free relations, so the split class always drops to the
            // naïve-exact fragment.
            assert!(!analysis.root().ground, "seed {seed} produced {q}");
            if analysis.has_inlinable_subtree() && analysis.root().split_class != QueryClass::FullRa
            {
                splittable += 1;
            }
        }
        assert_eq!(
            splittable, 30,
            "every mixed query must be splittable under the shaped census"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let schema = random_schema();
        let cfg = QueryGenConfig {
            seed: 3,
            ..Default::default()
        };
        assert_eq!(
            random_positive_query(&schema, &cfg),
            random_positive_query(&schema, &cfg)
        );
        assert_eq!(
            random_division_query(&schema, &cfg),
            random_division_query(&schema, &cfg)
        );
    }
}
