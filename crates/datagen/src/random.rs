//! Random incomplete databases over a simple binary/unary schema.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relmodel::{Database, Schema, Tuple, Value};

/// Configuration for [`random_database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomDbConfig {
    /// Tuples per relation.
    pub tuples_per_relation: usize,
    /// Size of the constant pool values are drawn from.
    pub domain_size: usize,
    /// Number of distinct marked nulls available; each value position is a
    /// null with probability `null_rate_percent`/100, drawn from this pool
    /// (so nulls repeat, making the database naïve rather than Codd).
    pub distinct_nulls: usize,
    /// Per-position probability (in percent) of placing a null.
    pub null_rate_percent: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDbConfig {
    fn default() -> Self {
        RandomDbConfig {
            tuples_per_relation: 8,
            domain_size: 5,
            distinct_nulls: 2,
            null_rate_percent: 20,
            seed: 0,
        }
    }
}

/// The schema used by the random generator: `R(a, b)`, `S(a)`, `T(a, b)`.
pub fn random_schema() -> Schema {
    Schema::builder()
        .relation("R", &["a", "b"])
        .relation("S", &["a"])
        .relation("T", &["a", "b"])
        .build()
}

/// Generates a random incomplete database over [`random_schema`].
pub fn random_database(config: &RandomDbConfig) -> Database {
    random_database_with_null_free(config, &[])
}

/// [`random_database`], except the relations named in `null_free` receive no
/// nulls at all (their positions always draw constants). This gives fuzz
/// harnesses databases with a *shaped* null census — the input the static
/// analyzer's groundness reasoning is about: a query whose unsound core
/// touches only null-free relations is provably world-invariant even though
/// the database as a whole is incomplete.
pub fn random_database_with_null_free(config: &RandomDbConfig, null_free: &[&str]) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = random_schema();
    let mut db = Database::new(schema.clone());
    for rs in schema.iter() {
        let complete = null_free.contains(&rs.name.as_str());
        for _ in 0..config.tuples_per_relation {
            let tuple: Tuple = (0..rs.arity())
                .map(|_| {
                    if complete {
                        random_constant(&mut rng, config)
                    } else {
                        random_value(&mut rng, config)
                    }
                })
                .collect();
            db.insert(&rs.name, tuple)
                .expect("generated tuples match the schema");
        }
    }
    db
}

/// The join-friendly schema used by [`random_database_with_null_rate`]:
/// `R(a, b)`, `S(b, c)`, equi-joinable on `b`.
pub fn null_rate_schema() -> Schema {
    Schema::builder()
        .relation("R", &["a", "b"])
        .relation("S", &["b", "c"])
        .build()
}

/// Generates a mostly-ground join workload with a swept null rate: `rows`
/// tuples `R(i, i)` and `S(i, 2i)` (so `R ⋈ S` on `b` matches 1:1), where
/// each value position is independently replaced by a marked null with
/// probability `null_rate_percent`/100, drawn from a pool of `rows/10`
/// (at least one) distinct nulls.
///
/// This is the workload the columnar executor's ground/symbolic run split
/// is about: at 0–1% nulls nearly every row rides the vectorized hash
/// path, and the bench sweep in `benches/join.rs` measures how the
/// advantage decays as the rate climbs toward 50%.
pub fn random_database_with_null_rate(rows: usize, null_rate_percent: u32, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = null_rate_schema();
    let mut db = Database::new(schema);
    let pool = (rows / 10).max(1) as u64;
    let value = |v: i64, rng: &mut StdRng| {
        if rng.gen_range(0..100u32) < null_rate_percent.min(100) {
            Value::null(rng.gen_range(0..pool))
        } else {
            Value::int(v)
        }
    };
    for i in 0..rows as i64 {
        let r = Tuple::new(vec![value(i, &mut rng), value(i, &mut rng)]);
        db.insert("R", r).expect("R tuples match the schema");
        let s = Tuple::new(vec![value(i, &mut rng), value(2 * i, &mut rng)]);
        db.insert("S", s).expect("S tuples match the schema");
    }
    db
}

fn random_value(rng: &mut StdRng, config: &RandomDbConfig) -> Value {
    let use_null =
        config.distinct_nulls > 0 && rng.gen_range(0..100u32) < config.null_rate_percent.min(100);
    if use_null {
        Value::null(rng.gen_range(0..config.distinct_nulls as u64))
    } else {
        random_constant(rng, config)
    }
}

fn random_constant(rng: &mut StdRng, config: &RandomDbConfig) -> Value {
    Value::int(rng.gen_range(0..config.domain_size.max(1) as i64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_sizes_and_null_pool() {
        let cfg = RandomDbConfig {
            tuples_per_relation: 10,
            distinct_nulls: 3,
            ..Default::default()
        };
        let db = random_database(&cfg);
        // Set semantics may merge duplicates, so sizes are at most the request.
        assert!(db.relation("R").unwrap().len() <= 10);
        assert!(db.null_ids().len() <= 3);
        assert!(db.null_ids().iter().all(|n| n.0 < 3));
    }

    #[test]
    fn zero_null_rate_gives_complete_database() {
        let cfg = RandomDbConfig {
            null_rate_percent: 0,
            ..Default::default()
        };
        assert!(random_database(&cfg).is_complete());
    }

    #[test]
    fn all_nulls_when_rate_is_full() {
        let cfg = RandomDbConfig {
            null_rate_percent: 100,
            distinct_nulls: 4,
            ..Default::default()
        };
        let db = random_database(&cfg);
        assert!(db.constants().is_empty());
    }

    #[test]
    fn null_free_relations_stay_complete_while_others_carry_nulls() {
        let cfg = RandomDbConfig {
            null_rate_percent: 100,
            distinct_nulls: 4,
            ..Default::default()
        };
        let db = random_database_with_null_free(&cfg, &["S", "T"]);
        for name in ["S", "T"] {
            assert!(
                db.relation(name).unwrap().is_complete(),
                "{name} was asked to be null-free"
            );
        }
        assert!(!db.relation("R").unwrap().is_complete());
        // The empty exclusion list is exactly the plain generator.
        assert_eq!(
            random_database_with_null_free(&cfg, &[]),
            random_database(&cfg)
        );
    }

    #[test]
    fn null_rate_sweep_behaves_at_the_extremes() {
        let complete = random_database_with_null_rate(100, 0, 7);
        assert!(complete.is_complete());
        assert_eq!(complete.relation("R").unwrap().len(), 100);
        assert_eq!(complete.relation("S").unwrap().len(), 100);

        let sparse = random_database_with_null_rate(100, 1, 7);
        let nulls = sparse.null_ids().len();
        assert!(nulls >= 1, "1% of 400 positions should place a null");
        assert!(nulls <= 10, "pool is bounded by rows/10");

        let half = random_database_with_null_rate(100, 50, 7);
        assert!(!half.is_complete());
        // Determinism per seed, sensitivity to it.
        assert_eq!(
            random_database_with_null_rate(50, 10, 3),
            random_database_with_null_rate(50, 10, 3)
        );
        assert_ne!(
            random_database_with_null_rate(50, 10, 3),
            random_database_with_null_rate(50, 10, 4)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            random_database(&RandomDbConfig::default()),
            random_database(&RandomDbConfig::default())
        );
        assert_ne!(
            random_database(&RandomDbConfig::default()),
            random_database(&RandomDbConfig {
                seed: 99,
                ..Default::default()
            })
        );
    }
}
