//! # rand (offline stand-in)
//!
//! This build environment has no network access, so the real `rand` crate
//! cannot be fetched. This workspace-local crate provides the *small subset*
//! of the `rand 0.8` API that the workspace actually uses — `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, and [`Rng::gen_bool`] — with a deterministic SplitMix64 generator.
//!
//! Determinism is the only contract the workspace relies on (every generator
//! in `datagen` is seeded), so swapping this shim for the real crate later
//! only changes *which* pseudo-random streams the seeds denote, not any
//! correctness property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic, seedable generator (SplitMix64 under the hood; the
    /// real crate uses ChaCha12 — the distribution guarantees we rely on are
    /// the same: uniform 64-bit outputs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub use rngs::StdRng;

/// Seeding interface, mirroring `rand::SeedableRng` for the one constructor
/// the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        StdRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }
}

/// Core 64-bit output, mirroring `rand::RngCore`.
pub trait RngCore {
    /// The next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood 2014).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A range that can be sampled uniformly, mirroring `rand`'s
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    // Rejection sampling to avoid modulo bias (unobservable at the scales the
    // workspace uses, but cheap to do right).
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of precision, same construction as rand's `f64` sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..5).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..5).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..5).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&w));
            let x = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads = {heads}");
    }
}
