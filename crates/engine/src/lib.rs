//! # engine — the single front door for certain-answer evaluation
//!
//! The paper's "how to fix it" message is a dispatch rule: **classify the
//! query, then use naïve evaluation where it is provably exact** (UCQs under
//! OWA and CWA, `RA_cwa` under CWA — Section 6) **and fall back to more
//! expensive or explicitly approximate machinery elsewhere**. This crate is
//! that rule as an API. Instead of hand-picking among `eval_naive`,
//! `eval_3vl`, `certain_answer_worlds`, … at every call site, callers say:
//!
//! ```
//! use engine::{Engine, Guarantee, StrategyKind};
//! use relmodel::builder::orders_and_payments_example;
//! use relmodel::Semantics;
//!
//! let db = orders_and_payments_example();
//! let report = Engine::new(&db)
//!     .semantics(Semantics::Cwa)
//!     .plan_text("project[#0](Order)")
//!     .unwrap();
//! assert_eq!(report.strategy, StrategyKind::NaiveExact);
//! assert_eq!(report.guarantee, Guarantee::Exact);
//! assert_eq!(report.answers.len(), 2);
//! ```
//!
//! and get back a [`CertainReport`]: the answers **plus** the strategy that
//! produced them, the query's class, the guarantee the answers carry
//! (exact / sound / complete / none), and per-phase timing. SQL's silent
//! wrong answers — the failure gallery of the paper's introduction — become
//! an explicitly requested baseline ([`Engine::baseline_3vl`]) whose report
//! says `no-guarantee` out loud.
//!
//! ## Dispatch rule
//!
//! | class      | semantics | default strategy        | guarantee |
//! |------------|-----------|-------------------------|-----------|
//! | positive   | OWA / CWA | naïve evaluation        | exact     |
//! | `RA_cwa`   | CWA       | naïve evaluation        | exact     |
//! | `RA_cwa`   | OWA       | naïve evaluation        | complete  |
//! | full RA    | CWA       | symbolic c-tables       | exact     |
//! | full RA    | OWA       | certain⁺ pair evaluation| none      |
//!
//! The symbolic strategy ([`releval::symbolic`]) evaluates the query with
//! the Imieliński–Lipski c-table algebra and extracts certain answers with
//! a certainty solver — exact under CWA for *every* class, polynomial per
//! output tuple, no world enumerated. It punts explicitly (null-bearing
//! `Values` literals; solver clause budget), in which case the engine falls
//! back to the streaming world oracle within the `max_nulls` / `max_worlds`
//! budget and then to certain⁺ pair evaluation, recording the reason in
//! [`EngineStats::fallback`]. (`certain⁺` is [`releval::approx`]:
//! under/over-approximating pair evaluation with null unification —
//! polynomial, and sound under CWA where exact certain answers are
//! coNP-hard.)
//!
//! ## Consistent query answering
//!
//! Inconsistency is incompleteness's twin: a database violating its
//! schema's integrity constraints denotes the set of its subset-minimal
//! *repairs*, and [`Semantics::ConsistentAnswers`] asks for what survives
//! every repair (each repair read under CWA for its nulls). The dispatch
//! rule has the same classify-and-degrade shape as everything above:
//!
//! * **no violations** — the database's only repair is itself: delegate to
//!   the certain-answer pipeline wholesale (same strategies, same
//!   guarantees);
//! * **violations, small conflict graph** — stream the subset-minimal
//!   repairs ([`StrategyKind::RepairEnumeration`], budget = repairs
//!   visited, early exit on ∅) and intersect exact per-repair certain
//!   answers: `Exact`;
//! * **otherwise** — evaluate once over the repair interval `[conflict-free
//!   core, db − doomed]` with the certain⁺ pair executor
//!   ([`StrategyKind::ConflictFreeCore`]): polynomial, `Sound` for every
//!   class, with the blown budget recorded in [`EngineStats::fallback`]
//!   exactly like a symbolic punt.
//!
//! In [`EngineOptions::exhaustive`] mode the remaining non-exact rows
//! upgrade to possible-world enumeration while the database fits the
//! `max_nulls` / `max_worlds` budget, and degrade back to the table above —
//! with [`EngineStats::degraded`] set — when it does not. The planner is
//! therefore never *accidentally* exponential. Enumeration is `exact` under
//! CWA, where the worlds *are* `[[D]]_cwa`; under OWA only finitely many of
//! the infinitely many supersets can be visited, so for non-monotone classes
//! the enumerated intersection is an over-approximation and is reported as
//! `complete`, not `exact`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod options;
mod report;
mod semantics;

pub use context::DbContext;
pub use options::EngineOptions;
pub use report::{
    AnalysisReport, AnalyzerStats, CertainReport, EngineStats, ExplainAnalyze, FallbackReason,
    Guarantee, RepairAbort, StrategyKind,
};
pub use semantics::Semantics;

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use relalgebra::analysis;
use relalgebra::ast::RaExpr;
use relalgebra::classify::{has_incomplete_values, QueryClass};
use relalgebra::plan::PlannedQuery;
use relalgebra::typecheck::TypeError;
use releval::exec::columnar::approx::execute_approx_counted_with_morsel;
use releval::exec::columnar::{execute_counted_with_morsel, execute_profiled_with_morsel};
use releval::exec::{NodeProfile, OpStats};
use releval::split::inline_ground_subtrees;
use releval::strategy::{Strategy, ThreeValuedEvaluation};
use releval::symbolic::{symbolic_certain_answer, SymbolicOutcome};
use releval::worlds::{estimated_world_count, stream_certain_answer, ShardProfile};
use releval::EvalError;
use relmodel::Database;
use repairs::{core_consistent_answer, stream_consistent_answer, ConflictGraph, RepairError};

/// Errors from the engine front door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A textual query failed to parse or typecheck.
    Text(qparser::PlanTextError),
    /// An expression failed to typecheck against the database schema.
    Type(TypeError),
    /// The selected strategy failed (world budget, incomplete input, …).
    Eval(EvalError),
    /// A forced repair enumeration failed (repair budget, per-repair world
    /// budget); the planner-chosen path degrades instead of erring.
    Repair(RepairError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Text(e) => write!(f, "{e}"),
            EngineError::Type(e) => write!(f, "type error: {e}"),
            EngineError::Eval(e) => write!(f, "evaluation error: {e}"),
            EngineError::Repair(e) => write!(f, "consistent-answer error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RepairError> for EngineError {
    fn from(e: RepairError) -> Self {
        EngineError::Repair(e)
    }
}

impl From<qparser::PlanTextError> for EngineError {
    fn from(e: qparser::PlanTextError) -> Self {
        EngineError::Text(e)
    }
}

impl From<TypeError> for EngineError {
    fn from(e: TypeError) -> Self {
        EngineError::Type(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

/// The classify-and-dispatch evaluation engine over one database.
///
/// The engine is generic over *how it holds* the database: any
/// `Borrow<Database>` works, so a borrow-scoped `Engine::new(&db)` and a
/// long-lived `Engine::over(Arc<Database>)` run the identical dispatch. The
/// precomputed per-database facts (null count, census, lazy conflict graph)
/// live in an [`Arc<DbContext>`] so a snapshot-owning service can build the
/// context once and hand it to every request-scoped engine via
/// [`Engine::with_context`] — N queries on one snapshot then measure the
/// database once and build the conflict graph exactly once.
///
/// Construction via [`Engine::new`]/[`Engine::over`] measures the database
/// (two linear scans); via [`Engine::with_context`] it is free. Configure by
/// chaining [`Engine::semantics`] and [`Engine::options`].
#[derive(Debug, Clone)]
pub struct Engine<D: Borrow<Database> = Database> {
    db: D,
    semantics: Semantics,
    options: EngineOptions,
    /// The precomputed dispatch facts for `db` — owned alone by this engine
    /// when self-measured, shared with a snapshot when injected.
    ctx: Arc<DbContext>,
}

impl<'db> Engine<&'db Database> {
    /// An engine borrowing `db`, defaulting to CWA semantics and the
    /// conservative default [`EngineOptions`] — the one-shot front door.
    pub fn new(db: &'db Database) -> Self {
        Engine::over(db)
    }
}

impl<D: Borrow<Database>> Engine<D> {
    /// An engine over any owned or borrowed database handle (`&Database`,
    /// `Database`, `Arc<Database>`, …), measuring its dispatch context
    /// itself.
    pub fn over(db: D) -> Self {
        let ctx = Arc::new(DbContext::of(db.borrow()));
        Engine::with_context(db, ctx)
    }

    /// An engine over `db` reusing an already measured [`DbContext`].
    /// Construction does no database work at all — this is the request path
    /// of a snapshot-owning service. `ctx` **must** have been measured from
    /// this same database; a mismatched context silently mis-dispatches
    /// (wrong census, stale conflict graph), so the pairing is the caller's
    /// contract (a cheap invariant is debug-asserted).
    pub fn with_context(db: D, ctx: Arc<DbContext>) -> Self {
        debug_assert_eq!(
            ctx.nulls(),
            db.borrow().null_ids().len(),
            "DbContext must be measured from the engine's own database"
        );
        Engine {
            db,
            semantics: Semantics::Cwa,
            options: EngineOptions::default(),
            ctx,
        }
    }

    /// The database behind whatever handle the engine holds.
    fn db(&self) -> &Database {
        self.db.borrow()
    }

    /// The precomputed dispatch context (shared, when the engine was built
    /// with [`Engine::with_context`]).
    pub fn context(&self) -> &Arc<DbContext> {
        &self.ctx
    }

    /// The morsel size the columnar executors run under: the explicit
    /// [`EngineOptions::morsel_rows`] when set, else the environment seed
    /// (re-read per call — services pin it explicitly instead).
    fn morsel(&self) -> usize {
        self.options
            .morsel_rows
            .unwrap_or_else(relmodel::batch::morsel_rows)
    }

    /// The cached conflict hypergraph; `None` when the schema declares no
    /// constraints.
    fn conflict_graph(&self) -> Option<&ConflictGraph> {
        self.ctx.conflict_graph(self.db())
    }

    /// Selects the semantics queries are answered under. Accepts the base
    /// [`relmodel::Semantics`] (CWA / OWA certain answers) or the engine's
    /// own [`Semantics`] (adding [`Semantics::ConsistentAnswers`]).
    pub fn semantics(mut self, semantics: impl Into<Semantics>) -> Self {
        self.semantics = semantics.into();
        self
    }

    /// Shorthand for `semantics(Semantics::ConsistentAnswers)`: answer with
    /// what survives every subset-minimal repair of the database.
    pub fn consistent_answers(self) -> Self {
        self.semantics(Semantics::ConsistentAnswers)
    }

    /// The possible-world semantics strategy execution reads nulls under
    /// (consistent answering evaluates each repair under CWA).
    fn base(&self) -> relmodel::Semantics {
        self.semantics.base()
    }

    /// The engine [`Semantics`] dispatch decisions are taken under: the
    /// declared one, with `ConsistentAnswers` lowered to `Cwa` when the
    /// certain-answer pipeline is the delegate (a consistent database's
    /// only repair is itself).
    fn dispatch_semantics(&self) -> Semantics {
        Semantics::from(self.base())
    }

    /// Replaces the planner options.
    pub fn options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// The database the engine answers over.
    pub fn database(&self) -> &Database {
        self.db()
    }

    /// Classifies, dispatches, executes, and reports on `query`.
    pub fn plan(&self, query: &RaExpr) -> Result<CertainReport, EngineError> {
        let started = Instant::now();
        let plan = PlannedQuery::new(query.clone(), self.db().schema())?;
        self.finish(plan, started)
    }

    /// [`Engine::plan`] for textual queries: parse, typecheck, classify,
    /// dispatch, execute — one call from text to guaranteed answers.
    pub fn plan_text(&self, query: &str) -> Result<CertainReport, EngineError> {
        let started = Instant::now();
        let plan = qparser::parse_and_plan(query, self.db().schema())?;
        self.finish(plan, started)
    }

    /// [`Engine::plan`] for a query that is already typechecked against this
    /// database's schema.
    pub fn plan_prepared(&self, plan: &PlannedQuery) -> Result<CertainReport, EngineError> {
        let started = Instant::now();
        self.finish(plan.clone(), started)
    }

    /// Executes `query` with a caller-chosen strategy instead of the
    /// planner's choice. The report's guarantee is still computed honestly
    /// for the query's class — forcing [`StrategyKind::NaiveExact`] on a full
    /// RA query yields `no-guarantee`, not `exact`.
    pub fn plan_with(
        &self,
        strategy: StrategyKind,
        query: &RaExpr,
    ) -> Result<CertainReport, EngineError> {
        let started = Instant::now();
        let plan = PlannedQuery::new(query.clone(), self.db().schema())?;
        let plan_time = started.elapsed();
        let decision = Decision {
            strategy,
            guarantee: strategy.guarantee(plan.class(), self.semantics),
            class: plan.class(),
            forced: true,
            ..Decision::default()
        };
        let mut report = self.execute(plan, decision, plan_time, started)?;
        // Forced dispatch skips the analyzer, so there is no dispatch phase
        // to time inside the plan span.
        wrap_trace(&mut report, None);
        Ok(report)
    }

    /// The paper's "what SQL does" baseline through the front door: evaluates
    /// under three-valued logic and reports it as such, with no guarantee.
    pub fn baseline_3vl(&self, query: &RaExpr) -> Result<CertainReport, EngineError> {
        self.plan_with(StrategyKind::ThreeValuedBaseline, query)
    }

    /// Possible-world ground truth through the front door (subject to the
    /// engine's world budget — errs rather than degrading, since the caller
    /// asked for the truth and nothing else).
    pub fn ground_truth(&self, query: &RaExpr) -> Result<CertainReport, EngineError> {
        self.plan_with(StrategyKind::WorldsGroundTruth, query)
    }

    /// The planner's decision for a query of the given class over this
    /// database, without executing anything: which strategy would run, and
    /// what guarantee the answer would carry.
    pub fn select_strategy(&self, query: &RaExpr, class: QueryClass) -> (StrategyKind, Guarantee) {
        let decision = self.decide(query, class);
        (decision.strategy, decision.guarantee)
    }

    /// The dispatch semantics a given (possibly reduced) plan is executed
    /// under: the declared one, lowered from OWA to CWA when the query is
    /// monotone (monotonicity makes the two certain answers coincide).
    fn effective_semantics(&self, query: &RaExpr) -> Semantics {
        if self.base() == relmodel::Semantics::Owa
            && analysis::analyze(query, self.ctx.census()).root().monotone
        {
            Semantics::Cwa
        } else {
            self.dispatch_semantics()
        }
    }

    /// Statically analyzes `query` against this engine's database — no
    /// execution. The report carries the analyzer's root facts, the
    /// dispatch the planner *would* take (strategy and guarantee, identical
    /// to [`Engine::select_strategy`]), the lint diagnostics (`QL…` codes),
    /// and an annotated plan rendering.
    pub fn analyze(&self, query: &RaExpr) -> Result<AnalysisReport, EngineError> {
        let plan = PlannedQuery::new(query.clone(), self.db().schema())?;
        Ok(self.analysis_report(&plan))
    }

    /// [`Engine::analyze`] for textual queries.
    pub fn analyze_text(&self, query: &str) -> Result<AnalysisReport, EngineError> {
        let plan = qparser::parse_and_plan(query, self.db().schema())?;
        Ok(self.analysis_report(&plan))
    }

    fn analysis_report(&self, plan: &PlannedQuery) -> AnalysisReport {
        let analysis = analysis::analyze(plan.expr(), self.ctx.census());
        let facts = analysis.root().clone();
        let decision = self.decide(plan.expr(), plan.class());
        let diagnostics = analysis::lint(plan.expr(), self.ctx.census(), Some(self.db().schema()));
        let annotated = analysis::annotate(plan.expr(), self.ctx.census());
        AnalysisReport {
            class: plan.class(),
            certainty_preserving: facts.certainty_preserving(self.base()),
            facts,
            strategy: decision.strategy,
            guarantee: decision.guarantee,
            diagnostics,
            annotated,
        }
    }

    fn finish(&self, plan: PlannedQuery, started: Instant) -> Result<CertainReport, EngineError> {
        // Tracing disabled costs exactly this branch: no timers start, no
        // spans allocate anywhere below.
        let decide_started = self.options.trace.then(Instant::now);
        let decision = self.decide(plan.expr(), plan.class());
        let dispatch_time = decide_started.map(|t| t.elapsed());
        let (plan, decision) = if decision.split {
            self.inline_ground(plan, decision)
        } else {
            (plan, decision)
        };
        // Subtree inlining is preparation work, so it counts toward the
        // plan phase, not strategy execution.
        let plan_time = started.elapsed();
        let mut report = self.execute(plan, decision, plan_time, started)?;
        wrap_trace(&mut report, dispatch_time);
        Ok(report)
    }

    /// Performs the subtree split a [`Decision`] with `split` requested:
    /// evaluates the maximal ground proper subtrees plainly, inlines them as
    /// complete literals, and re-plans the reduced query. The dispatch is
    /// **not** revisited — the decision was already taken on the analyzer's
    /// split class, so preview ([`Engine::select_strategy`]) and execution
    /// always agree.
    fn inline_ground(&self, plan: PlannedQuery, decision: Decision) -> (PlannedQuery, Decision) {
        let outcome = inline_ground_subtrees(plan.expr(), self.db(), self.ctx.census());
        if outcome.inlined == 0 {
            return (plan, decision);
        }
        match PlannedQuery::new(outcome.expr, self.db().schema()) {
            Ok(reduced) => {
                let analyzer = decision.analyzer.map(|a| AnalyzerStats {
                    inlined_subtrees: outcome.inlined,
                    ..a
                });
                (
                    reduced,
                    Decision {
                        analyzer,
                        ..decision
                    },
                )
            }
            // Defensive: a subtree of a typechecked query re-plans cleanly;
            // if it ever did not, run the original plan unchanged.
            Err(_) => (plan, decision),
        }
    }

    fn decide(&self, query: &RaExpr, class: QueryClass) -> Decision {
        if self.semantics == Semantics::ConsistentAnswers {
            return self.decide_consistent(query, class);
        }
        self.decide_certain(query, class)
    }

    /// The consistent-answer dispatch: delegate when the database is clean,
    /// enumerate repairs while the conflict graph is small, degrade to the
    /// conflict-free-core approximation (with the reason on the report)
    /// beyond that.
    fn decide_consistent(&self, query: &RaExpr, class: QueryClass) -> Decision {
        let Some(graph) = self.conflict_graph().filter(|g| !g.is_conflict_free()) else {
            // No violations: the only repair is the database itself, so the
            // consistent answer *is* the CWA certain answer — delegate to
            // the whole certain-answer pipeline, guarantees included.
            let violations = Some(0);
            return Decision {
                violations,
                ..self.decide_certain(query, class)
            };
        };
        let violations = Some(graph.violation_count());
        let conflict_tuples = Some(graph.conflict_tuples());
        let estimated = graph.estimated_repairs();
        let budget = self.options.repair_options.max_repairs;
        if estimated <= budget {
            Decision {
                strategy: StrategyKind::RepairEnumeration,
                guarantee: StrategyKind::RepairEnumeration.guarantee(class, self.semantics),
                class,
                estimated_repairs: Some(estimated),
                violations,
                conflict_tuples,
                ..Decision::default()
            }
        } else {
            // The explicit degradation the repair budget exists for: one
            // polynomial pass over the repair interval instead of an
            // exponential enumeration, labelled `Sound` and explained.
            Decision {
                strategy: StrategyKind::ConflictFreeCore,
                guarantee: StrategyKind::ConflictFreeCore.guarantee(class, self.semantics),
                class,
                estimated_repairs: Some(estimated),
                violations,
                conflict_tuples,
                degraded: true,
                fallback: Some(FallbackReason::RepairBudget { estimated, budget }),
                ..Decision::default()
            }
        }
    }

    /// The certain-answer dispatch, taken under [`Engine::dispatch_semantics`]
    /// (so a consistent-answer delegate behaves exactly like a CWA engine),
    /// refined by the static analyzer:
    ///
    /// * **certainty preservation** — a query the analyzer proves naïve-exact
    ///   (by class, by groundness under CWA, or by groundness + monotonicity
    ///   under OWA) dispatches to [`StrategyKind::NaiveExact`] with
    ///   [`Guarantee::Exact`], even beyond the class-based theorem;
    /// * **OWA-as-CWA** — a monotone query has `certain_owa = certain_cwa`,
    ///   so under OWA the planner may use the CWA machinery (symbolic,
    ///   worlds) at full strength;
    /// * **subtree splitting** — when the unsound region is a proper subtree,
    ///   the ground remainder is evaluated plainly and inlined
    ///   ([`releval::split`]), and the dispatch is taken on the analyzer's
    ///   [`relalgebra::analysis::NodeFacts::split_class`]: a mixed query
    ///   whose non-monotone core is ground upgrades all the way to
    ///   `NaiveExact`/`Exact`.
    fn decide_certain(&self, query: &RaExpr, class: QueryClass) -> Decision {
        let analysis = analysis::analyze(query, self.ctx.census());
        let facts = analysis.root();
        let class_sound = class.naive_evaluation_sound(self.base());
        let analyzer = AnalyzerStats {
            ground: facts.ground,
            monotone: facts.monotone,
            upgraded: false,
            owa_as_cwa: false,
            inlined_subtrees: 0,
        };
        if class_sound || facts.certainty_preserving(self.base()) {
            return Decision {
                strategy: StrategyKind::NaiveExact,
                guarantee: Guarantee::Exact,
                class,
                analyzer: Some(AnalyzerStats {
                    upgraded: !class_sound,
                    ..analyzer
                }),
                ..Decision::default()
            };
        }
        // For a monotone query the OWA certain answer equals the CWA one,
        // so the planner may dispatch under the CWA rules at full strength.
        let owa_as_cwa = self.base() == relmodel::Semantics::Owa && facts.monotone;
        let semantics = if owa_as_cwa {
            Semantics::Cwa
        } else {
            self.dispatch_semantics()
        };
        let analyzer = AnalyzerStats {
            owa_as_cwa,
            ..analyzer
        };
        // Subtree splitting: sound whenever the split-off region has the
        // same value in every (effective-CWA) world.
        let split = semantics == Semantics::Cwa && analysis.has_inlinable_subtree();
        let dispatch_class = if split { facts.split_class } else { class };
        if split && dispatch_class.naive_evaluation_sound(relmodel::Semantics::Cwa) {
            // After inlining the ground regions, what remains is in the
            // naïve-exact fragment: the mixed-query upgrade.
            return Decision {
                strategy: StrategyKind::NaiveExact,
                guarantee: Guarantee::Exact,
                class,
                split: true,
                analyzer: Some(AnalyzerStats {
                    upgraded: true,
                    ..analyzer
                }),
                ..Decision::default()
            };
        }
        // Beyond the naïve theorem, the symbolic c-table strategy is the
        // planner's first choice under (effective) CWA: exact, polynomial
        // per output tuple, no world enumeration. (Under OWA its answer is
        // only an over-approximation for non-monotone classes, so the
        // planner keeps the pre-symbolic rules there.)
        if self.options.symbolic && semantics == Semantics::Cwa {
            if !has_incomplete_values(query) {
                return Decision {
                    strategy: StrategyKind::SymbolicCTable,
                    guarantee: StrategyKind::SymbolicCTable.guarantee(class, semantics),
                    class,
                    split,
                    analyzer: Some(analyzer),
                    ..Decision::default()
                };
            }
            // Null-bearing `Values` literals would make the c-table algebra
            // conflate literal and database nulls: rule symbolic out at
            // planning time and record why. The fallback policy is the same
            // as for an execution-time solver punt — the world oracle within
            // budget, then the approximation — so both punt kinds honour the
            // one documented contract.
            return Decision {
                class,
                split,
                analyzer: Some(analyzer),
                ..self.enumerate_or_approximate(
                    query,
                    class,
                    semantics,
                    Some(FallbackReason::Symbolic(
                        releval::symbolic::PuntReason::NullValuesLiteral,
                    )),
                    true,
                )
            };
        }
        Decision {
            class,
            split,
            analyzer: Some(analyzer),
            ..self.enumerate_or_approximate(query, class, semantics, None, self.options.exhaustive)
        }
    }

    /// The pre-symbolic decision logic: possible-world enumeration within
    /// budget when `allow_worlds`, otherwise (or beyond budget, with
    /// [`EngineStats::degraded`] set) the sound approximation. Also the
    /// landing path when the symbolic strategy punts — the fallback reason
    /// carries the reason into the report. `semantics` is the *effective*
    /// dispatch semantics (OWA lowered to CWA for monotone queries).
    fn enumerate_or_approximate(
        &self,
        query: &RaExpr,
        class: QueryClass,
        semantics: Semantics,
        fallback_reason: Option<FallbackReason>,
        allow_worlds: bool,
    ) -> Decision {
        let fallback = StrategyKind::SoundApproximation;
        if !allow_worlds {
            return Decision {
                strategy: fallback,
                guarantee: fallback.guarantee(class, semantics),
                class,
                fallback: fallback_reason,
                ..Decision::default()
            };
        }
        let estimate = estimated_world_count(query, self.db(), &self.options.world_options);
        let within_budget = self.ctx.nulls() <= self.options.max_nulls
            && estimate <= self.options.world_options.max_worlds;
        if within_budget {
            Decision {
                strategy: StrategyKind::WorldsGroundTruth,
                guarantee: StrategyKind::WorldsGroundTruth.guarantee(class, semantics),
                class,
                estimated_worlds: Some(estimate),
                fallback: fallback_reason,
                ..Decision::default()
            }
        } else {
            // The explicit degradation the budget exists for: report the
            // approximation instead of hanging on an exponential enumeration.
            Decision {
                strategy: fallback,
                guarantee: fallback.guarantee(class, semantics),
                class,
                estimated_worlds: Some(estimate),
                degraded: true,
                fallback: fallback_reason,
                ..Decision::default()
            }
        }
    }

    fn execute(
        &self,
        plan: PlannedQuery,
        decision: Decision,
        plan_time: std::time::Duration,
        started: Instant,
    ) -> Result<CertainReport, EngineError> {
        let execute_started = Instant::now();
        // (worlds visited, early exit, threads, peak worlds in flight,
        // worlds batched)
        let mut world_exec: Option<(u128, bool, usize, usize, u128)> = None;
        // (condition atoms, solver calls, simplification wins)
        let mut symbolic_exec: Option<(usize, usize, usize)> = None;
        // (repairs visited, early exit, repairs batched)
        let mut repair_exec: Option<(u128, bool, u128)> = None;
        // Physical-operator telemetry from whichever executor ran.
        let mut physical_ops: Option<OpStats> = None;
        // Per-worker wall-clock of an enumeration fold, for the trace.
        let mut shard_profiles: Vec<ShardProfile> = Vec::new();
        // The conflict graph the repair strategies run against: the cached
        // one, or (for a forced repair strategy on a constraint-free
        // schema) the empty graph, whose single repair is the database.
        let empty_graph = ConflictGraph::default();
        let (answers, object_answer) = match decision.strategy {
            StrategyKind::SymbolicCTable => {
                match symbolic_certain_answer(&plan, self.db(), &self.options.symbolic_options) {
                    SymbolicOutcome::Answered(exec) => {
                        symbolic_exec = Some((
                            exec.condition_atoms,
                            exec.solver_calls,
                            exec.simplification_wins,
                        ));
                        physical_ops = Some(exec.op_stats);
                        (exec.answers, None)
                    }
                    SymbolicOutcome::Punted(reason) => {
                        if decision.forced {
                            // The caller asked for symbolic and nothing else:
                            // surface the punt as a typed error, like the
                            // forced ground-truth door does with its budget.
                            return Err(EngineError::Eval(EvalError::SymbolicPunt(reason)));
                        }
                        // Fall back to the streaming world oracle within
                        // budget (then to the sound approximation), with the
                        // reason on the report. The guarantee is computed
                        // under the same effective semantics the symbolic
                        // choice was (OWA lowered to CWA for a monotone
                        // plan — re-derived here because `plan` may be the
                        // reduced, post-inlining query).
                        let effective = self.effective_semantics(plan.expr());
                        let fallback = self.enumerate_or_approximate(
                            plan.expr(),
                            plan.class(),
                            effective,
                            Some(FallbackReason::Symbolic(reason)),
                            true,
                        );
                        let fallback = Decision {
                            class: decision.class,
                            analyzer: decision.analyzer,
                            violations: decision.violations,
                            ..fallback
                        };
                        return self.execute(plan, fallback, plan_time, started);
                    }
                }
            }
            StrategyKind::RepairEnumeration => {
                let graph = self.conflict_graph().unwrap_or(&empty_graph);
                match stream_consistent_answer(
                    &plan,
                    self.db(),
                    graph,
                    &self.options.repair_options,
                ) {
                    Ok(exec) => {
                        repair_exec =
                            Some((exec.repairs_visited, exec.early_exit, exec.repairs_batched));
                        physical_ops = Some(exec.op_stats);
                        shard_profiles = exec.shards;
                        (exec.answers, None)
                    }
                    Err(e) => {
                        if decision.forced {
                            // The caller asked for enumeration and nothing
                            // else: surface the failure as a typed error.
                            return Err(EngineError::Repair(e));
                        }
                        // Degrade to the polynomial core approximation with
                        // the abort — and its cause — on the report: the
                        // runtime twin of the planning-time repair-budget
                        // fallback.
                        let abort = match e {
                            RepairError::BudgetExceeded { repairs, budget } => {
                                RepairAbort::RepairBudget { repairs, budget }
                            }
                            RepairError::Eval(EvalError::WorldBudgetExceeded {
                                worlds,
                                budget,
                            }) => RepairAbort::PerRepairWorldBudget { worlds, budget },
                            RepairError::Eval(_) => RepairAbort::PerRepairEvaluation,
                        };
                        let fallback = Decision {
                            strategy: StrategyKind::ConflictFreeCore,
                            guarantee: StrategyKind::ConflictFreeCore
                                .guarantee(plan.class(), self.semantics),
                            degraded: true,
                            fallback: Some(FallbackReason::RepairEnumerationAborted(abort)),
                            forced: false,
                            ..decision
                        };
                        return self.execute(plan, fallback, plan_time, started);
                    }
                }
            }
            StrategyKind::ConflictFreeCore => {
                let graph = self.conflict_graph().unwrap_or(&empty_graph);
                let exec = core_consistent_answer(&plan, self.db(), graph);
                physical_ops = Some(exec.op_stats);
                (exec.answers, Some(exec.pair.certain))
            }
            StrategyKind::NaiveExact => {
                let (object, ops) =
                    execute_counted_with_morsel(plan.physical(), self.db(), self.morsel());
                physical_ops = Some(ops);
                (object.complete_part(), Some(object))
            }
            StrategyKind::ThreeValuedBaseline => {
                let raw = ThreeValuedEvaluation.eval_unchecked(&plan, self.db(), self.base())?;
                (raw.complete_part(), Some(raw))
            }
            StrategyKind::WorldsGroundTruth => {
                // Bypasses the `Strategy` facade for the telemetry it cannot
                // carry: worlds visited, early exit, thread count, peak
                // worlds in flight.
                let exec = stream_certain_answer(
                    &plan,
                    self.db(),
                    self.base(),
                    &self.options.world_options,
                )?;
                world_exec = Some((
                    exec.worlds_visited,
                    exec.early_exit,
                    exec.threads,
                    exec.peak_worlds_in_flight,
                    exec.worlds_batched,
                ));
                physical_ops = Some(exec.op_stats);
                shard_profiles = exec.shards;
                (exec.answers, None)
            }
            StrategyKind::SoundApproximation => {
                if plan.class() == QueryClass::RaCwa && self.base() == relmodel::Semantics::Owa {
                    // Naïve evaluation computes the CWA certain answer for
                    // RA_cwa (Section 6.2), which contains the OWA one: a
                    // provable over-approximation, reported as `complete`.
                    let (naive, ops) =
                        execute_counted_with_morsel(plan.physical(), self.db(), self.morsel());
                    physical_ops = Some(ops);
                    (naive.complete_part(), Some(naive))
                } else {
                    // Pair evaluation: the certain⁺ under-approximation.
                    let (approx, ops) = execute_approx_counted_with_morsel(
                        plan.physical(),
                        self.db(),
                        self.morsel(),
                    );
                    physical_ops = Some(ops);
                    (approx.certain.complete_part(), Some(approx.certain))
                }
            }
        };
        let execute_time = execute_started.elapsed();
        // The execute span is assembled here, at the literal the fallback
        // recursions bottom out in, so a degraded run traces the strategy
        // that actually answered. The entry points wrap it into the root
        // "query" span after this returns.
        let trace = self.options.trace.then(|| {
            let mut strategy = obs::Span::with_duration(decision.strategy.name(), execute_time);
            if let Some((visited, early_exit, threads, _, batched)) = world_exec {
                strategy.push_field("worlds_visited", clamp_u64(visited));
                strategy.push_field("worlds_batched", clamp_u64(batched));
                strategy.push_field("world_threads", threads as u64);
                strategy.push_field("world_early_exit", u64::from(early_exit));
            }
            if let Some((atoms, calls, wins)) = symbolic_exec {
                strategy.push_field("condition_atoms", atoms as u64);
                strategy.push_field("solver_calls", calls as u64);
                strategy.push_field("simplification_wins", wins as u64);
            }
            if let Some((visited, early_exit, batched)) = repair_exec {
                strategy.push_field("repairs_visited", clamp_u64(visited));
                strategy.push_field("repairs_batched", clamp_u64(batched));
                strategy.push_field("repair_early_exit", u64::from(early_exit));
            }
            if let Some(ops) = &physical_ops {
                strategy.push_field("operators", ops.operators as u64);
                strategy.push_field("batches", ops.batches as u64);
                strategy.push_field("tables_built", ops.tables_built as u64);
                strategy.push_field("tables_reused", ops.tables_reused as u64);
            }
            for (index, shard) in shard_profiles.iter().enumerate() {
                let mut span = obs::Span::with_duration("shard", Duration::from_nanos(shard.nanos));
                span.push_field("index", index as u64);
                span.push_field("units_batched", clamp_u64(shard.units));
                strategy.push_child(span);
            }
            let mut execute_span = obs::Span::with_duration("execute", execute_time);
            execute_span.push_child(strategy);
            execute_span
        });
        Ok(CertainReport {
            answers,
            object_answer,
            strategy: decision.strategy,
            guarantee: decision.guarantee,
            class: decision.class,
            semantics: self.semantics,
            stats: EngineStats {
                plan_time,
                execute_time,
                total_time: started.elapsed(),
                nulls: self.ctx.nulls(),
                estimated_worlds: decision.estimated_worlds,
                worlds_enumerated: world_exec.map(|e| e.0),
                worlds_batched: world_exec.map(|e| e.4),
                degraded: decision.degraded,
                world_early_exit: world_exec.is_some_and(|e| e.1),
                world_threads: world_exec.map(|e| e.2),
                peak_worlds_in_flight: world_exec.map(|e| e.3),
                condition_atoms: symbolic_exec.map(|e| e.0),
                solver_calls: symbolic_exec.map(|e| e.1),
                simplification_wins: symbolic_exec.map(|e| e.2),
                fallback: decision.fallback,
                violations: decision.violations,
                conflict_tuples: decision.conflict_tuples,
                estimated_repairs: decision.estimated_repairs,
                repairs_enumerated: repair_exec.map(|e| e.0),
                repairs_batched: repair_exec.map(|e| e.2),
                repair_early_exit: repair_exec.is_some_and(|e| e.1),
                plan_text: plan.physical().explain(),
                physical_ops,
                analyzer: decision.analyzer,
                // The serving-layer fields: a direct engine call is always a
                // fresh computation against no snapshot; `serve` stamps them.
                cache_hit: false,
                plan_cache_hit: false,
                snapshot_version: None,
                trace,
            },
        })
    }

    /// `EXPLAIN ANALYZE`: lowers the query, runs it once through the
    /// profiled columnar executor, and returns the plan annotated with
    /// measured per-node rows, batches, table reuse, and inclusive
    /// wall-clock (Postgres-style: a parent's time covers its children's,
    /// so the root's time is the whole execution).
    ///
    /// The measured run is the shared ground physical core — the executor
    /// behind [`StrategyKind::NaiveExact`] and the naïve branch of
    /// [`StrategyKind::SoundApproximation`] — regardless of what the
    /// planner would dispatch this query to; it answers "where does the
    /// plan spend its time", not "what is the certain answer".
    pub fn explain_analyze(&self, query: &RaExpr) -> Result<ExplainAnalyze, EngineError> {
        let plan = PlannedQuery::new(query.clone(), self.db().schema())?;
        Ok(self.explain_analyze_prepared(&plan))
    }

    /// [`Engine::explain_analyze`] for textual queries.
    pub fn explain_analyze_text(&self, query: &str) -> Result<ExplainAnalyze, EngineError> {
        let plan = qparser::parse_and_plan(query, self.db().schema())?;
        Ok(self.explain_analyze_prepared(&plan))
    }

    /// [`Engine::explain_analyze`] for an already-planned query.
    pub fn explain_analyze_prepared(&self, plan: &PlannedQuery) -> ExplainAnalyze {
        let execute_started = Instant::now();
        let (answers, op_stats, profiles) =
            execute_profiled_with_morsel(plan.physical(), self.db(), self.morsel());
        let execute_time = execute_started.elapsed();
        let by_id: HashMap<u32, &NodeProfile> = profiles.iter().map(|p| (p.id, p)).collect();
        let mut annotated = plan.physical().explain_annotated(&mut |node| {
            by_id.get(&node.id()).map(|p| {
                format!(
                    "(rows={}, batches={}, tables_reused={}, time={:?})",
                    p.rows,
                    p.batches,
                    p.tables_reused,
                    Duration::from_nanos(p.nanos)
                )
            })
        });
        let footer = format!(
            "execute {:?} · {} answer row(s)\n{}",
            execute_time,
            answers.len(),
            op_stats.summary()
        );
        for line in footer.lines() {
            annotated.push_str("-- ");
            annotated.push_str(line);
            annotated.push('\n');
        }
        ExplainAnalyze {
            annotated,
            profiles,
            op_stats,
            execute_time,
            rows: answers.len(),
        }
    }
}

/// Saturating narrowing for trace fields (`u128` world/repair counters).
fn clamp_u64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Wraps a recorded execute span into the root `query` span, with the plan
/// phase (and the analyze + dispatch slice, when timed) attached — called by
/// the entry points once `execute` has returned, because fallback paths
/// recurse through `execute` and only the outermost call knows the whole
/// query's shape. No-op when tracing is off.
fn wrap_trace(report: &mut CertainReport, dispatch_time: Option<Duration>) {
    if let Some(execute_span) = report.stats.trace.take() {
        let mut plan_span = obs::Span::with_duration("plan", report.stats.plan_time);
        plan_span.push_field("nulls", report.stats.nulls as u64);
        if let Some(d) = dispatch_time {
            plan_span.push_child(obs::Span::with_duration("analyze+dispatch", d));
        }
        let mut root = obs::Span::with_duration("query", report.stats.total_time);
        root.push_child(plan_span);
        root.push_child(execute_span);
        report.stats.trace = Some(root);
    }
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    strategy: StrategyKind,
    guarantee: Guarantee,
    /// The class of the *original* query — what the report declares, even
    /// when subtree inlining hands the executor a reduced plan.
    class: QueryClass,
    /// Evaluate ground subtrees plainly and inline them before executing
    /// the strategy ([`releval::split`]).
    split: bool,
    /// What the analyzer contributed, for the report.
    analyzer: Option<AnalyzerStats>,
    estimated_worlds: Option<u128>,
    degraded: bool,
    /// Why the planner's first choice is not the one executing (symbolic
    /// rule-out or punt, repair budget, aborted enumeration).
    fallback: Option<FallbackReason>,
    /// Violations witnessed, when consistent answering dispatched.
    violations: Option<usize>,
    /// Conflict vertices, when consistent answering dispatched.
    conflict_tuples: Option<usize>,
    /// The Moon–Moser repair estimate, when enumeration was considered.
    estimated_repairs: Option<u128>,
    /// Caller-forced strategy: punts become errors instead of fallbacks.
    forced: bool,
}

/// The all-`None` baseline every decision starts from; `strategy` and
/// `guarantee` are always overridden at the construction site.
impl Default for Decision {
    fn default() -> Self {
        Decision {
            strategy: StrategyKind::NaiveExact,
            guarantee: Guarantee::NoGuarantee,
            class: QueryClass::FullRa,
            split: false,
            analyzer: None,
            estimated_worlds: None,
            degraded: false,
            fallback: None,
            violations: None,
            conflict_tuples: None,
            estimated_repairs: None,
            forced: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::builder::{difference_example, orders_and_payments_example};
    use relmodel::{DatabaseBuilder, Tuple, Value};

    #[test]
    fn positive_queries_dispatch_to_naive_exact() {
        let db = orders_and_payments_example();
        for semantics in [Semantics::Owa, Semantics::Cwa] {
            let report = Engine::new(&db)
                .semantics(semantics)
                .plan_text("project[#0](Order)")
                .unwrap();
            assert_eq!(report.strategy, StrategyKind::NaiveExact);
            assert_eq!(report.guarantee, Guarantee::Exact);
            assert_eq!(report.class, QueryClass::Positive);
            assert_eq!(report.answers.len(), 2);
            assert!(report.object_answer.is_some());
        }
    }

    #[test]
    fn division_is_exact_under_cwa_and_complete_under_owa() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .ints("S", &[10])
            .ints("S", &[20])
            .build();
        let q = qparser::parse("R divide S").unwrap();
        let cwa = Engine::new(&db).plan(&q).unwrap();
        assert_eq!(cwa.strategy, StrategyKind::NaiveExact);
        assert_eq!(cwa.guarantee, Guarantee::Exact);
        assert!(cwa.answers.contains(&Tuple::ints(&[1])));

        let owa = Engine::new(&db).semantics(Semantics::Owa).plan(&q).unwrap();
        assert_eq!(owa.strategy, StrategyKind::SoundApproximation);
        assert_eq!(owa.guarantee, Guarantee::Complete);
    }

    #[test]
    fn full_ra_defaults_to_symbolic_exact_under_cwa() {
        let db = orders_and_payments_example();
        let report = Engine::new(&db)
            .plan_text("project[#0](Order) minus project[#1](Pay)")
            .unwrap();
        assert_eq!(report.class, QueryClass::FullRa);
        assert_eq!(report.strategy, StrategyKind::SymbolicCTable);
        assert_eq!(report.guarantee, Guarantee::Exact);
        // The certain answer here is ∅ — and symbolic evaluation proves it
        // without enumerating a single world.
        assert!(report.answers.is_empty());
        assert!(report.stats.solver_calls.is_some());
        assert!(report.stats.condition_atoms.unwrap() > 0);
        assert!(report.stats.worlds_enumerated.is_none());
        assert!(report.stats.fallback.is_none());
        // Disabling symbolic restores the pre-symbolic sound approximation.
        let approx = Engine::new(&db)
            .options(EngineOptions::default().without_symbolic())
            .plan_text("project[#0](Order) minus project[#1](Pay)")
            .unwrap();
        assert_eq!(approx.strategy, StrategyKind::SoundApproximation);
        assert_eq!(approx.guarantee, Guarantee::Sound);
        assert!(approx.answers.is_empty());
        let naive = Engine::new(&db)
            .plan_with(
                StrategyKind::NaiveExact,
                &qparser::parse("project[#0](Order) minus project[#1](Pay)").unwrap(),
            )
            .unwrap();
        assert_eq!(naive.object_answer.unwrap().len(), 2);
        assert_eq!(naive.guarantee, Guarantee::NoGuarantee);
    }

    #[test]
    fn null_values_literals_fall_back_with_a_reason() {
        // The classifier's counterexample: a literal ⊥0 joined against the
        // database ⊥0. Symbolic evaluation would conflate them, so the
        // planner must pass it over — explicitly.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .build();
        let lit = RaExpr::values(relmodel::Relation::from_tuples(
            2,
            vec![Tuple::new(vec![Value::null(0), Value::int(7)])],
        ));
        let q = RaExpr::relation("R")
            .product(lit)
            .select(relalgebra::predicate::Predicate::eq(
                relalgebra::predicate::Operand::col(1),
                relalgebra::predicate::Operand::col(2),
            ))
            .project(vec![0, 3]);
        let report = Engine::new(&db).plan(&q).unwrap();
        // Same fallback chain as a solver punt: the world oracle, since this
        // one null fits the budget — exact, with the reason on the report.
        assert_eq!(report.strategy, StrategyKind::WorldsGroundTruth);
        assert_eq!(report.guarantee, Guarantee::Exact);
        assert_eq!(
            report.stats.fallback,
            Some(FallbackReason::Symbolic(
                releval::symbolic::PuntReason::NullValuesLiteral
            ))
        );
        assert!(report.answers.is_empty(), "certain answer is ∅ here");
        // Beyond the world budget the chain ends at the approximation,
        // explicitly degraded.
        let starved = Engine::new(&db)
            .options(EngineOptions::default().with_max_worlds(1))
            .plan(&q)
            .unwrap();
        assert_eq!(starved.strategy, StrategyKind::SoundApproximation);
        assert!(starved.stats.degraded);
        assert_eq!(
            starved.stats.fallback,
            Some(FallbackReason::Symbolic(
                releval::symbolic::PuntReason::NullValuesLiteral
            ))
        );
        // Forcing symbolic on the same query is a typed error, not a lie.
        let err = Engine::new(&db)
            .plan_with(StrategyKind::SymbolicCTable, &q)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Eval(EvalError::SymbolicPunt(
                releval::symbolic::PuntReason::NullValuesLiteral
            ))
        ));
    }

    #[test]
    fn solver_budget_punt_falls_back_to_worlds_with_a_reason() {
        // A nested difference tower blows a 1-clause solver budget; the
        // engine must fall back to the (budgeted) world oracle and still
        // answer exactly, with the punt on the report.
        let db = difference_example();
        let q = qparser::parse("(R minus S) minus (S minus R)").unwrap();
        let report = Engine::new(&db)
            .options(EngineOptions::default().with_max_dnf_clauses(1))
            .plan(&q)
            .unwrap();
        assert_eq!(report.strategy, StrategyKind::WorldsGroundTruth);
        assert_eq!(report.guarantee, Guarantee::Exact);
        assert!(matches!(
            report.stats.fallback,
            Some(FallbackReason::Symbolic(
                releval::symbolic::PuntReason::SolverBudget { budget: 1, .. }
            ))
        ));
        assert!(report.stats.worlds_enumerated.is_some());
        // With the default budget the same query stays symbolic and agrees.
        let symbolic = Engine::new(&db).plan(&q).unwrap();
        assert_eq!(symbolic.strategy, StrategyKind::SymbolicCTable);
        assert_eq!(symbolic.answers, report.answers);
    }

    #[test]
    fn exhaustive_mode_upgrades_to_ground_truth_within_budget() {
        let db = orders_and_payments_example();
        // Even in exhaustive mode the symbolic strategy answers first; rule
        // it out to exercise the enumeration path.
        let engine = Engine::new(&db).options(EngineOptions::exhaustive().without_symbolic());
        let report = engine
            .plan_text("project[#0](Order) minus project[#1](Pay)")
            .unwrap();
        assert_eq!(report.strategy, StrategyKind::WorldsGroundTruth);
        assert_eq!(report.guarantee, Guarantee::Exact);
        assert!(report.answers.is_empty());
        assert!(report.stats.worlds_enumerated.is_some());
        assert!(!report.stats.degraded);
    }

    #[test]
    fn budget_degrades_explicitly_instead_of_hanging() {
        let mut b = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"]);
        for i in 0..12u64 {
            b = b.tuple("S", vec![Value::null(i)]);
        }
        b = b.ints("R", &[1]);
        let db = b.build();
        let engine = Engine::new(&db).options(
            EngineOptions::exhaustive()
                .with_max_nulls(4)
                .without_symbolic(),
        );
        let report = engine.plan_text("R minus S").unwrap();
        assert_eq!(report.strategy, StrategyKind::SoundApproximation);
        assert!(report.stats.degraded);
        assert!(report.stats.estimated_worlds.unwrap() > 1_000_000);
        // The forced ground-truth path errs (rather than degrading) when the
        // streaming fold cannot converge within the visit budget: `R union S`
        // keeps the tuple (1) in every world's answer, so the intersection
        // never empties and no early exit can rescue the enumeration.
        let starved = Engine::new(&db).options(
            EngineOptions::exhaustive()
                .with_max_nulls(4)
                .with_max_worlds(100),
        );
        let err = starved
            .ground_truth(&qparser::parse("R union S").unwrap())
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Eval(EvalError::WorldBudgetExceeded { .. })
        ));
    }

    #[test]
    fn early_exit_answers_queries_the_budget_would_refuse() {
        // Same exponential world space, but the certain answer of `R minus S`
        // is provably ∅ the moment one world values a null of S to 1 — and
        // the very first world does. The streaming fold early-exits after a
        // handful of worlds where the materializing path would have needed
        // 14^12 of them.
        let mut b = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"]);
        for i in 0..12u64 {
            b = b.tuple("S", vec![Value::null(i)]);
        }
        b = b.ints("R", &[1]);
        let db = b.build();
        let engine = Engine::new(&db).options(EngineOptions::exhaustive().with_max_worlds(100));
        let report = engine
            .ground_truth(&qparser::parse("R minus S").unwrap())
            .unwrap();
        assert!(report.answers.is_empty());
        assert!(report.stats.world_early_exit);
        assert!(report.stats.worlds_enumerated.unwrap() < 100);
        assert!(report.stats.world_threads.unwrap() >= 1);
        assert!(report.stats.peak_worlds_in_flight.unwrap() >= report.stats.world_threads.unwrap());
        assert_eq!(
            report.stats.worlds_batched, report.stats.worlds_enumerated,
            "every visited world went through the batched overlay path"
        );
    }

    #[test]
    fn owa_enumeration_never_claims_exact_beyond_the_monotone_fragment() {
        // Finite OWA enumeration visits only some of the infinitely many
        // supersets, so for a non-monotone query its intersection may keep
        // tuples the true certain answer loses: R = {1}, S = ∅ — a world may
        // add 1 to S, so certain(R − S) = ∅ under OWA, yet minimal-world
        // enumeration answers {1}. The report must say `complete`, not
        // `exact`.
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"])
            .ints("R", &[1])
            .build();
        let engine = Engine::new(&db)
            .semantics(Semantics::Owa)
            .options(EngineOptions::exhaustive());
        let report = engine.plan_text("R minus S").unwrap();
        assert_eq!(report.strategy, StrategyKind::WorldsGroundTruth);
        assert_eq!(report.guarantee, Guarantee::Complete);
        assert_eq!(report.answers.len(), 1);
        // Letting worlds grow exposes the shrinkage the label must allow for.
        let grown = Engine::new(&db)
            .semantics(Semantics::Owa)
            .options(
                EngineOptions::exhaustive()
                    .with_world_options(releval::worlds::WorldOptions::with_owa_extra(1)),
            )
            .plan_text("R minus S")
            .unwrap();
        assert!(grown.answers.is_empty());
        // Positive queries stay exact: minimal worlds attain the intersection.
        let pos = engine.plan_with(
            StrategyKind::WorldsGroundTruth,
            &qparser::parse("R").unwrap(),
        );
        assert_eq!(pos.unwrap().guarantee, Guarantee::Exact);
    }

    #[test]
    fn worlds_visited_reflects_early_exit_not_the_estimate() {
        // `R minus R` is ∅ in the very first world, so the streaming fold
        // stops immediately: the honest visit count must undercut the
        // planner's |domain|^|nulls| estimate.
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .tuple("R", vec![Value::null(0)])
            .tuple("R", vec![Value::null(1)])
            .build();
        let engine = Engine::new(&db).options(EngineOptions::exhaustive().without_symbolic());
        let report = engine.plan_text("R minus R").unwrap();
        let visited = report.stats.worlds_enumerated.unwrap();
        let estimated = report.stats.estimated_worlds.unwrap();
        assert!(report.stats.world_early_exit);
        assert!(
            visited < estimated,
            "early exit must show: {visited} visited of {estimated} estimated"
        );
    }

    #[test]
    fn baseline_reports_what_sql_would_say_with_no_guarantee() {
        let db = orders_and_payments_example();
        let q = qparser::parse("project[#0](select[#1 = 'oid1' or #1 != 'oid1'](Pay))").unwrap();
        let report = Engine::new(&db).baseline_3vl(&q).unwrap();
        assert_eq!(report.strategy, StrategyKind::ThreeValuedBaseline);
        assert_eq!(report.guarantee, Guarantee::NoGuarantee);
        assert!(
            report.object_answer.unwrap().is_empty(),
            "3VL drops the tautology row"
        );
        // Ground truth through the same door disagrees — and is labelled exact.
        let truth = Engine::new(&db).ground_truth(&q).unwrap();
        assert_eq!(truth.answers.len(), 1);
        assert_eq!(truth.guarantee, Guarantee::Exact);
    }

    #[test]
    fn forcing_naive_on_full_ra_reports_no_guarantee() {
        let db = difference_example();
        let q = qparser::parse("R minus S").unwrap();
        let report = Engine::new(&db)
            .plan_with(StrategyKind::NaiveExact, &q)
            .unwrap();
        assert_eq!(report.strategy, StrategyKind::NaiveExact);
        assert_eq!(report.guarantee, Guarantee::NoGuarantee);
        assert_eq!(
            report.answers.len(),
            2,
            "naïve over-reports, and the label warns about it"
        );
    }

    #[test]
    fn certain_true_respects_guarantees() {
        let db = orders_and_payments_example();
        // "Is some order certainly unpaid?" — Boolean query, ground truth: yes.
        let q = qparser::parse("project[#0](Order) minus project[#1](Pay)")
            .unwrap()
            .project(vec![]);
        let exhaustive = Engine::new(&db).options(EngineOptions::exhaustive());
        assert_eq!(exhaustive.plan(&q).unwrap().certain_true(), Some(true));
        // The *default* engine now concludes the same symbolically — the
        // disjunctive fact world enumeration needed every world for.
        let default_report = Engine::new(&db).plan(&q).unwrap();
        assert_eq!(default_report.strategy, StrategyKind::SymbolicCTable);
        assert_eq!(default_report.certain_true(), Some(true));
        // The sound approximation returns ∅ for this query: too weak to
        // conclude either way, and the report says so.
        let approx = Engine::new(&db)
            .options(EngineOptions::default().without_symbolic())
            .plan(&q)
            .unwrap();
        assert_eq!(approx.certain_true(), None);
        // SQL's baseline can conclude nothing at all.
        assert_eq!(
            Engine::new(&db).baseline_3vl(&q).unwrap().certain_true(),
            None
        );
    }

    #[test]
    fn select_strategy_previews_without_executing() {
        let db = orders_and_payments_example();
        let engine = Engine::new(&db);
        let q = qparser::parse("project[#0](Order)").unwrap();
        assert_eq!(
            engine.select_strategy(&q, QueryClass::Positive),
            (StrategyKind::NaiveExact, Guarantee::Exact)
        );
        let hard = qparser::parse("project[#0](Order) minus project[#1](Pay)").unwrap();
        assert_eq!(
            engine.select_strategy(&hard, QueryClass::FullRa),
            (StrategyKind::SymbolicCTable, Guarantee::Exact)
        );
        let engine_owa = Engine::new(&db).semantics(Semantics::Owa);
        assert_eq!(
            engine_owa.select_strategy(&hard, QueryClass::FullRa),
            (StrategyKind::SoundApproximation, Guarantee::NoGuarantee)
        );
    }

    #[test]
    fn division_arity_underflow_is_rejected_not_a_panic() {
        // Regression: `dividend.arity() - divisor.arity()` in the leaf
        // evaluator would underflow (and panic) if a wider divisor ever
        // reached it. The type checker must reject such plans — through
        // every front door — with `InvalidDivision`, never by panicking.
        let db = DatabaseBuilder::new()
            .relation("Narrow", &["a"])
            .relation("Wide", &["a", "b", "c"])
            .ints("Narrow", &[1])
            .build();
        let engine = Engine::new(&db);
        for query in ["Narrow divide Wide", "Narrow divide Narrow"] {
            let err = engine.plan_text(query).unwrap_err();
            assert!(
                err.to_string().contains("division"),
                "`{query}` must fail with a division type error, got: {err}"
            );
        }
        // The same guard through the non-textual door, as a typed error.
        let q = RaExpr::relation("Narrow").divide(RaExpr::relation("Wide"));
        assert!(matches!(
            engine.plan(&q),
            Err(EngineError::Type(
                relalgebra::typecheck::TypeError::InvalidDivision {
                    dividend: 1,
                    divisor: 3
                }
            ))
        ));
    }

    #[test]
    fn errors_are_classified() {
        let db = orders_and_payments_example();
        let engine = Engine::new(&db);
        assert!(matches!(
            engine.plan_text("project[#0]("),
            Err(EngineError::Text(_))
        ));
        assert!(matches!(
            engine.plan(&RaExpr::relation("Nope")),
            Err(EngineError::Type(_))
        ));
        let e = engine.plan_text("Nope").unwrap_err();
        assert!(e.to_string().contains("Nope"));
    }

    /// R(k, v) with key k: a dirty pair for k = 1, a clean tuple for k = 2.
    fn dirty_db() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 30])
            .build()
    }

    #[test]
    fn consistent_database_delegates_to_the_certain_pipeline() {
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[2, 30])
            .build();
        let report = Engine::new(&db)
            .consistent_answers()
            .plan_text("project[#1](R)")
            .unwrap();
        assert_eq!(report.strategy, StrategyKind::NaiveExact);
        assert_eq!(report.guarantee, Guarantee::Exact);
        assert_eq!(report.semantics, Semantics::ConsistentAnswers);
        assert_eq!(report.stats.violations, Some(0), "checked and clean");
        assert_eq!(report.answers.len(), 2);
        // Full RA over a clean *complete* database: the analyzer sees a
        // ground query, so the delegate upgrades past symbolic all the way
        // to naïve evaluation — exact, because every world agrees with the
        // database itself.
        let hard = Engine::new(&db)
            .consistent_answers()
            .plan_text("project[#0](R) minus project[#1](R)")
            .unwrap();
        assert_eq!(hard.strategy, StrategyKind::NaiveExact);
        assert_eq!(hard.guarantee, Guarantee::Exact);
        assert!(hard.stats.analyzer.unwrap().ground);
        assert!(hard.stats.analyzer.unwrap().upgraded);
    }

    #[test]
    fn violations_dispatch_to_repair_enumeration_exact() {
        let db = dirty_db();
        let report = Engine::new(&db)
            .consistent_answers()
            .plan_text("project[#1](R)")
            .unwrap();
        assert_eq!(report.strategy, StrategyKind::RepairEnumeration);
        assert_eq!(report.guarantee, Guarantee::Exact);
        assert_eq!(report.stats.violations, Some(1));
        assert_eq!(report.stats.conflict_tuples, Some(2));
        assert_eq!(report.stats.estimated_repairs, Some(2));
        assert_eq!(report.stats.repairs_enumerated, Some(2));
        assert_eq!(
            report.stats.repairs_batched,
            Some(2),
            "complete input: both repairs take the mask path"
        );
        assert!(!report.stats.degraded);
        assert!(report.stats.fallback.is_none());
        // Only v = 30 survives both repairs.
        assert_eq!(report.answers.len(), 1);
        assert!(report.answers.contains(&Tuple::ints(&[30])));
        // The same query under plain CWA sees the dirty data as-is.
        let cwa = Engine::new(&db).plan_text("project[#1](R)").unwrap();
        assert_eq!(cwa.answers.len(), 3);
    }

    #[test]
    fn repair_budget_degrades_to_the_core_with_a_reason() {
        let db = dirty_db();
        let report = Engine::new(&db)
            .consistent_answers()
            .options(EngineOptions::default().with_max_repairs(1))
            .plan_text("project[#1](R)")
            .unwrap();
        assert_eq!(report.strategy, StrategyKind::ConflictFreeCore);
        assert_eq!(report.guarantee, Guarantee::Sound);
        assert!(report.stats.degraded);
        assert_eq!(
            report.stats.fallback,
            Some(FallbackReason::RepairBudget {
                estimated: 2,
                budget: 1
            })
        );
        // The core answer is a subset of the exact consistent answer — here
        // it happens to coincide.
        assert_eq!(report.answers.len(), 1);
        assert!(report.answers.contains(&Tuple::ints(&[30])));
        assert!(report.object_answer.is_some());
    }

    #[test]
    fn forced_repair_enumeration_errors_instead_of_degrading() {
        let db = dirty_db();
        let engine = Engine::new(&db)
            .consistent_answers()
            .options(EngineOptions::default().with_max_repairs(1));
        let err = engine
            .plan_with(
                StrategyKind::RepairEnumeration,
                &qparser::parse("project[#1](R)").unwrap(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Repair(repairs::RepairError::BudgetExceeded { budget: 1, .. })
        ));
        // On a constraint-free schema a forced enumeration folds the single
        // trivial repair — the database itself — with no guarantee attached
        // to the certain-answer question it was not asked.
        let clean = relmodel::builder::orders_and_payments_example();
        let report = Engine::new(&clean)
            .plan_with(
                StrategyKind::RepairEnumeration,
                &qparser::parse("project[#0](Order)").unwrap(),
            )
            .unwrap();
        assert_eq!(report.stats.repairs_enumerated, Some(1));
        assert_eq!(report.guarantee, Guarantee::NoGuarantee);
    }

    #[test]
    fn aborted_enumeration_degrades_with_its_cause_on_the_report() {
        // Repairs of this database carry two nulls each, and the null-
        // bearing Values literal rules symbolic out per repair, so every
        // per-repair evaluation must go through the world oracle — which a
        // 1-world budget starves. The engine must degrade to the core with
        // the per-repair world budget named as the cause.
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .tuple("R", vec![Value::int(3), Value::null(1)])
            .build();
        let lit = RaExpr::values(relmodel::Relation::from_tuples(
            2,
            vec![Tuple::new(vec![Value::null(0), Value::int(7)])],
        ));
        // R ∪ literal: the literal keeps every per-repair intersection
        // nonempty, so no early exit can rescue the starved inner budget.
        let q = RaExpr::relation("R").union(lit);
        let mut repair_options = repairs::RepairOptions::default();
        repair_options.world_options.max_worlds = 1;
        let report = Engine::new(&db)
            .consistent_answers()
            .options(EngineOptions::default().with_repair_options(repair_options))
            .plan(&q)
            .unwrap();
        assert_eq!(report.strategy, StrategyKind::ConflictFreeCore);
        assert_eq!(report.guarantee, Guarantee::Sound);
        assert!(report.stats.degraded);
        assert!(
            matches!(
                report.stats.fallback,
                Some(FallbackReason::RepairEnumerationAborted(
                    RepairAbort::PerRepairWorldBudget { budget: 1, .. }
                ))
            ),
            "cause must survive onto the report: {:?}",
            report.stats.fallback
        );
    }

    #[test]
    fn nulls_and_violations_compose() {
        // The k = 1 pair conflicts; the surviving repairs each carry a null,
        // so the per-repair answers flow through the certain-answer
        // machinery: k = 2 is certain in every world of every repair, while
        // no v value is.
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .tuple("R", vec![Value::int(2), Value::null(1)])
            .build();
        let engine = Engine::new(&db).consistent_answers();
        let keys = engine.plan_text("project[#0](R)").unwrap();
        assert_eq!(keys.strategy, StrategyKind::RepairEnumeration);
        assert_eq!(keys.guarantee, Guarantee::Exact);
        assert_eq!(keys.answers.len(), 2);
        let vals = engine.plan_text("project[#1](R)").unwrap();
        assert!(vals.answers.is_empty());
        assert!(vals.stats.repair_early_exit || vals.stats.repairs_enumerated == Some(2));
    }

    #[test]
    fn stats_record_phases_and_nulls() {
        let db = orders_and_payments_example();
        let report = Engine::new(&db).plan_text("project[#0](Order)").unwrap();
        assert_eq!(report.stats.nulls, 1);
        assert!(report.stats.total_time >= report.stats.execute_time);
        assert!(report.to_string().contains("naive-exact"));
    }

    #[test]
    fn tracing_is_off_by_default_and_records_phase_spans_when_on() {
        let db = orders_and_payments_example();
        let untraced = Engine::new(&db).plan_text("project[#0](Order)").unwrap();
        assert!(untraced.stats.trace.is_none(), "tracing is opt-in");

        let engine = Engine::new(&db).options(EngineOptions::default().with_trace(true));
        for (query, strategy) in [
            ("project[#0](Order)", StrategyKind::NaiveExact),
            (
                "project[#0](Order) minus project[#1](Pay)",
                StrategyKind::SymbolicCTable,
            ),
        ] {
            let report = engine.plan_text(query).unwrap();
            assert_eq!(report.strategy, strategy);
            let trace = report.stats.trace.as_ref().expect("trace requested");
            assert_eq!(trace.name, "query");
            let plan = trace.find("plan").expect("plan phase span");
            assert_eq!(plan.field_value("nulls"), Some(1));
            assert!(
                plan.find("analyze+dispatch").is_some(),
                "planner dispatch is timed inside the plan span"
            );
            let execute = trace.find("execute").expect("execute phase span");
            assert!(
                execute.find(strategy.name()).is_some(),
                "the strategy that answered names its span: {trace:?}"
            );
            assert!(trace.duration >= execute.duration);
            assert_eq!(trace.duration, report.stats.total_time);
        }
    }

    #[test]
    fn worlds_trace_carries_per_shard_spans() {
        let db = orders_and_payments_example();
        let report = Engine::new(&db)
            .options(EngineOptions::exhaustive().with_trace(true))
            .ground_truth(&qparser::parse("project[#0](Order)").unwrap())
            .unwrap();
        assert_eq!(report.strategy, StrategyKind::WorldsGroundTruth);
        let trace = report.stats.trace.as_ref().expect("trace requested");
        let strategy = trace
            .find("worlds-ground-truth")
            .expect("strategy span present");
        assert_eq!(
            strategy.field_value("worlds_visited"),
            report.stats.worlds_enumerated.map(|w| w as u64)
        );
        let shards: Vec<_> = strategy
            .children
            .iter()
            .filter(|s| s.name == "shard")
            .collect();
        assert_eq!(
            shards.len(),
            report.stats.world_threads.unwrap(),
            "one shard span per worker"
        );
        assert_eq!(shards[0].field_value("index"), Some(0));
    }

    #[test]
    fn explain_analyze_annotates_every_node_and_times_nest() {
        let db = orders_and_payments_example();
        let engine = Engine::new(&db);
        let ea = engine
            .explain_analyze_text("project[#0](select[#0 = #2](product(Order, Pay)))")
            .unwrap();
        // Every operator line carries a measurement annotation.
        for line in ea.annotated.lines().filter(|l| !l.starts_with("-- ")) {
            assert!(
                line.contains("(rows=") && line.contains("time="),
                "unannotated operator line: {line}"
            );
        }
        assert!(ea.annotated.contains("-- execute"));
        // Profiles cover the whole plan; the root (id 0) completes last and
        // its inclusive time bounds every node's and sits within the
        // measured execution.
        let root = *ea.root_profile().expect("non-empty plan");
        assert_eq!(root.id, 0);
        assert_eq!(
            ea.profiles.len(),
            ea.annotated
                .lines()
                .filter(|l| !l.starts_with("-- "))
                .count()
        );
        for p in &ea.profiles {
            assert!(p.nanos <= root.nanos, "inclusive times nest: {p:?}");
        }
        assert!(root.nanos <= ea.execute_time.as_nanos() as u64);
        assert_eq!(root.rows, ea.rows);
        // The measured run is the naïve ground core: its answer matches the
        // naïve dispatch for this (exact-fragment) query.
        let report = engine
            .plan_text("project[#0](select[#0 = #2](product(Order, Pay)))")
            .unwrap();
        assert_eq!(ea.rows, report.answers.len());
    }

    #[test]
    fn summaries_render_on_one_line() {
        let db = orders_and_payments_example();
        let report = Engine::new(&db)
            .plan_text("project[#0](Order) minus project[#1](Pay)")
            .unwrap();
        let line = report.summary();
        assert!(line.contains("symbolic-ctable"));
        assert!(line.contains("exact"));
        assert!(line.contains("solver calls"));
        assert!(!line.contains('\n'));
        assert!(!report.stats.summary().contains('\n'));
    }
}
