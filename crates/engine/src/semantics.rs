//! The answer semantics the engine evaluates under.
//!
//! [`relmodel::Semantics`] names the two possible-world readings of an
//! incomplete database (CWA / OWA). The engine adds a third mode on top:
//! **consistent query answering**, where the world-space is the set of
//! subset-minimal repairs of a constraint-violating database (each repair
//! read under CWA for its nulls). The engine enum subsumes the base one —
//! [`crate::Engine::semantics`] accepts either via `Into`, so existing
//! `semantics(Semantics::Owa)` call sites keep working unchanged.

use std::fmt;

use relmodel::Semantics as BaseSemantics;

/// What question a query answer is an answer *to*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// Closed-world certain answers: `⋂ Q(v(D))` over valuations `v`.
    Cwa,
    /// Open-world certain answers: worlds may also grow new tuples.
    Owa,
    /// Consistent answers: `⋂ certain_cwa(Q, R)` over the subset-minimal
    /// repairs `R` of the database against its schema's integrity
    /// constraints. On a consistent database this coincides with [`Cwa`]
    /// (the only repair is the database itself), and the engine delegates
    /// accordingly.
    ///
    /// [`Cwa`]: Semantics::Cwa
    ConsistentAnswers,
}

impl Semantics {
    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Semantics::Cwa => BaseSemantics::Cwa.name(),
            Semantics::Owa => BaseSemantics::Owa.name(),
            Semantics::ConsistentAnswers => "consistent-answers",
        }
    }

    /// The possible-world semantics nulls are read under: consistent
    /// answering evaluates each repair under CWA.
    pub fn base(self) -> BaseSemantics {
        match self {
            Semantics::Owa => BaseSemantics::Owa,
            Semantics::Cwa | Semantics::ConsistentAnswers => BaseSemantics::Cwa,
        }
    }

    /// Is this the consistent-answers mode?
    pub fn is_consistent_answers(self) -> bool {
        matches!(self, Semantics::ConsistentAnswers)
    }
}

impl From<BaseSemantics> for Semantics {
    fn from(s: BaseSemantics) -> Self {
        match s {
            BaseSemantics::Cwa => Semantics::Cwa,
            BaseSemantics::Owa => Semantics::Owa,
        }
    }
}

impl PartialEq<BaseSemantics> for Semantics {
    fn eq(&self, other: &BaseSemantics) -> bool {
        *self == Semantics::from(*other)
    }
}

impl PartialEq<Semantics> for BaseSemantics {
    fn eq(&self, other: &Semantics) -> bool {
        other == self
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_and_conversions() {
        assert_eq!(Semantics::from(BaseSemantics::Owa), Semantics::Owa);
        assert_eq!(Semantics::ConsistentAnswers.base(), BaseSemantics::Cwa);
        assert_eq!(Semantics::Owa.base(), BaseSemantics::Owa);
        assert!(Semantics::Cwa == BaseSemantics::Cwa);
        assert!(BaseSemantics::Owa == Semantics::Owa);
        assert!(Semantics::ConsistentAnswers != BaseSemantics::Cwa);
        assert_eq!(
            Semantics::ConsistentAnswers.to_string(),
            "consistent-answers"
        );
    }
}
