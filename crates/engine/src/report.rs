//! Guarantee-carrying results: what the engine answered, how, and what the
//! answer is worth.

use std::fmt;
use std::time::Duration;

use relalgebra::analysis::{Diagnostic, NodeFacts};
use relalgebra::classify::QueryClass;
use releval::exec::{NodeProfile, OpStats};
use releval::symbolic::PuntReason;
use relmodel::Relation;

use crate::Semantics;

/// The strategy the engine dispatched a query to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Naïve evaluation on the fragment where the paper proves it exact
    /// (UCQs under either semantics, `RA_cwa` under CWA).
    NaiveExact,
    /// Possible-world enumeration — the classical intersection-based certain
    /// answer, exponential in the number of nulls. Selected automatically
    /// only in [`crate::EngineOptions::exhaustive`] mode, within budget.
    WorldsGroundTruth,
    /// SQL's three-valued logic, as a *baseline*: what a SQL engine would
    /// return. Never selected automatically; request it explicitly to
    /// reproduce the paper's §1 failure gallery through the same front door.
    ThreeValuedBaseline,
    /// The polynomial fallback beyond the exact fragment: certain⁺/possible?
    /// pair evaluation with null unification (`releval::approx`), sound under
    /// CWA — or naïve evaluation alone where that yields a provable
    /// over-approximation (`RA_cwa` under OWA).
    SoundApproximation,
    /// The symbolic c-table strategy (`releval::symbolic`): lift to a
    /// conditional database, evaluate with the Imieliński–Lipski algebra,
    /// extract certain answers with the certainty solver. **Exact** under
    /// CWA for every query class, polynomial per output tuple; selected by
    /// default for the classes naïve evaluation cannot cover under CWA.
    SymbolicCTable,
    /// Consistent answers by streaming enumeration of subset-minimal
    /// repairs (`repairs::fold`): the certain answer that survives every
    /// repair. Exact under [`Semantics::ConsistentAnswers`]; selected when
    /// the database has violations and the conflict graph's repair estimate
    /// fits the repair budget.
    RepairEnumeration,
    /// The conflict-free-core approximation (`repairs::core_approx`):
    /// certain⁺ pair evaluation over the repair interval `[core, db −
    /// doomed]` — polynomial and sound for every query class; the fallback
    /// when the repair space exceeds its budget.
    ConflictFreeCore,
}

impl StrategyKind {
    /// Every strategy, in declaration order — the registry the serving
    /// layer's metrics pre-allocate their per-strategy histograms over.
    pub const ALL: [StrategyKind; 7] = [
        StrategyKind::NaiveExact,
        StrategyKind::WorldsGroundTruth,
        StrategyKind::ThreeValuedBaseline,
        StrategyKind::SoundApproximation,
        StrategyKind::SymbolicCTable,
        StrategyKind::RepairEnumeration,
        StrategyKind::ConflictFreeCore,
    ];

    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::NaiveExact => "naive-exact",
            StrategyKind::WorldsGroundTruth => "worlds-ground-truth",
            StrategyKind::ThreeValuedBaseline => "sql-3vl-baseline",
            StrategyKind::SoundApproximation => "sound-approximation",
            StrategyKind::SymbolicCTable => "symbolic-ctable",
            StrategyKind::RepairEnumeration => "repair-enumeration",
            StrategyKind::ConflictFreeCore => "conflict-free-core",
        }
    }

    /// The guarantee this strategy can honestly attach to its answer for a
    /// query of the given class under the given semantics. Accepts either
    /// the engine's [`Semantics`] or the base [`relmodel::Semantics`].
    pub fn guarantee(self, class: QueryClass, semantics: impl Into<Semantics>) -> Guarantee {
        use Semantics as S;
        let semantics = semantics.into();
        match self {
            // Under CWA the enumerated worlds are exactly `[[D]]_cwa`, so the
            // intersection is the certain answer by definition. Under OWA the
            // enumeration visits finitely many of the infinitely many
            // supersets: for monotone (positive) queries the minimal worlds
            // already attain the intersection, but beyond that fragment
            // intersecting *fewer* worlds can only over-approximate — no
            // false negatives, hence `Complete`. Under the consistent-answer
            // question, an answer computed while ignoring the constraints
            // promises nothing.
            StrategyKind::WorldsGroundTruth => match (class, semantics) {
                (_, S::Cwa) | (QueryClass::Positive, S::Owa) => Guarantee::Exact,
                (_, S::Owa) => Guarantee::Complete,
                (_, S::ConsistentAnswers) => Guarantee::NoGuarantee,
            },
            StrategyKind::ThreeValuedBaseline => Guarantee::NoGuarantee,
            StrategyKind::NaiveExact => {
                if semantics == S::ConsistentAnswers {
                    Guarantee::NoGuarantee
                } else if class.naive_evaluation_sound(semantics.base()) {
                    Guarantee::Exact
                } else if class == QueryClass::RaCwa && semantics == S::Owa {
                    // naïve = certain_cwa ⊇ certain_owa: an over-approximation.
                    Guarantee::Complete
                } else {
                    Guarantee::NoGuarantee
                }
            }
            // The symbolic strategy computes the CWA certain answer exactly
            // (strong representation + a complete solver). Under OWA that
            // answer is exact for the monotone fragment (minimal worlds
            // attain the intersection) and an over-approximation beyond it
            // (CWA worlds are a subset of OWA worlds), mirroring the
            // enumeration guarantee row for row.
            StrategyKind::SymbolicCTable => match (class, semantics) {
                (_, S::Cwa) | (QueryClass::Positive, S::Owa) => Guarantee::Exact,
                (_, S::Owa) => Guarantee::Complete,
                (_, S::ConsistentAnswers) => Guarantee::NoGuarantee,
            },
            StrategyKind::SoundApproximation => match (class, semantics) {
                // naïve alone: certain_cwa over-approximates certain_owa.
                (QueryClass::RaCwa, S::Owa) => Guarantee::Complete,
                // Under OWA, certain answers for full RA are undecidable; no
                // finite evaluation can promise anything.
                (QueryClass::FullRa, S::Owa) => Guarantee::NoGuarantee,
                // Certain answers over the dirty database say nothing about
                // what survives its repairs.
                (_, S::ConsistentAnswers) => Guarantee::NoGuarantee,
                // Exact fragment (under-claims: the answer is in fact exact
                // before the ∩) and full RA under CWA.
                _ => Guarantee::Sound,
            },
            // The repair fold intersects exact per-repair CWA certain
            // answers over the complete repair space: exact for every class
            // — but only as an answer to the consistent-answer question.
            StrategyKind::RepairEnumeration => match semantics {
                S::ConsistentAnswers => Guarantee::Exact,
                S::Cwa | S::Owa => Guarantee::NoGuarantee,
            },
            // Every complete tuple on the interval pair's certain side holds
            // in every world of every repair: sound for every class.
            StrategyKind::ConflictFreeCore => match semantics {
                S::ConsistentAnswers => Guarantee::Sound,
                S::Cwa | S::Owa => Guarantee::NoGuarantee,
            },
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a [`CertainReport`]'s answer set is worth, relative to the classical
/// certain answer `certain(Q, D)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Guarantee {
    /// `answers = certain(Q, D)`.
    Exact,
    /// `answers ⊆ certain(Q, D)`: no false positives, possibly incomplete.
    Sound,
    /// `answers ⊇ certain(Q, D)`: no false negatives, possibly over-full.
    Complete,
    /// No relationship promised (e.g. raw SQL 3VL output).
    NoGuarantee,
}

impl Guarantee {
    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Guarantee::Exact => "exact",
            Guarantee::Sound => "sound",
            Guarantee::Complete => "complete",
            Guarantee::NoGuarantee => "no-guarantee",
        }
    }

    /// May a tuple in the answer set be trusted to be certain?
    pub fn answers_are_certain(self) -> bool {
        matches!(self, Guarantee::Exact | Guarantee::Sound)
    }

    /// Is every certain tuple guaranteed to appear in the answer set?
    pub fn answers_are_complete(self) -> bool {
        matches!(self, Guarantee::Exact | Guarantee::Complete)
    }
}

impl fmt::Display for Guarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why the planner's first-choice strategy is not the one that answered —
/// one structured enum for every fallback the engine can take, rendered via
/// [`fmt::Display`] so reports stay readable without tests ever matching on
/// string fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The symbolic c-table strategy was ruled out at planning time or
    /// punted during execution; the wrapped [`PuntReason`] says why.
    Symbolic(PuntReason),
    /// The conflict graph's repair estimate exceeded the repair budget, so
    /// consistent answering degraded to the conflict-free-core
    /// approximation without enumerating.
    RepairBudget {
        /// The Moon–Moser repair-count estimate.
        estimated: u128,
        /// The configured `max_repairs` budget.
        budget: u128,
    },
    /// Repair enumeration was attempted but aborted, and the engine
    /// degraded to the conflict-free-core approximation; the wrapped
    /// [`RepairAbort`] says what stopped the fold.
    RepairEnumerationAborted(RepairAbort),
}

/// What stopped an attempted repair enumeration mid-fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAbort {
    /// The repair-visit budget fired. (Unreachable from the planner's own
    /// dispatch — the Moon–Moser estimate gating enumeration upper-bounds
    /// the visit count — but an explicitly configured fold can hit it.)
    RepairBudget {
        /// Repairs visited when the budget fired.
        repairs: u128,
        /// The configured maximum.
        budget: u128,
    },
    /// A per-repair certain-answer evaluation blew its world budget (an
    /// incomplete repair whose symbolic evaluation punted).
    PerRepairWorldBudget {
        /// Worlds visited inside the failing repair.
        worlds: u128,
        /// The configured per-repair maximum.
        budget: u128,
    },
    /// A per-repair evaluation failed for another reason (empty valuation
    /// domain, …).
    PerRepairEvaluation,
}

impl fmt::Display for RepairAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairAbort::RepairBudget { repairs, budget } => {
                write!(f, "{repairs} repairs visited exceed the budget of {budget}")
            }
            RepairAbort::PerRepairWorldBudget { worlds, budget } => write!(
                f,
                "a repair's world enumeration visited {worlds} worlds, exceeding the budget of {budget}"
            ),
            RepairAbort::PerRepairEvaluation => {
                write!(f, "a per-repair evaluation failed")
            }
        }
    }
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackReason::Symbolic(reason) => write!(f, "symbolic strategy punted: {reason}"),
            FallbackReason::RepairBudget { estimated, budget } => write!(
                f,
                "estimated {estimated} repairs exceed the budget of {budget}"
            ),
            FallbackReason::RepairEnumerationAborted(abort) => {
                write!(f, "repair enumeration aborted: {abort}")
            }
        }
    }
}

impl FallbackReason {
    /// The symbolic punt, when that is what the fallback was.
    pub fn symbolic_punt(&self) -> Option<PuntReason> {
        match self {
            FallbackReason::Symbolic(reason) => Some(*reason),
            _ => None,
        }
    }
}

/// What the static analyzer contributed to one dispatch: the facts the
/// decision turned on and the upgrades it licensed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalyzerStats {
    /// The whole query is ground (world-invariant given the null census).
    pub ground: bool,
    /// The whole query is instance-monotone.
    pub monotone: bool,
    /// The analyzer upgraded the verdict beyond the class-based theorem:
    /// the class alone did not license `NaiveExact`/`Exact`, but groundness
    /// (or subtree inlining) did.
    pub upgraded: bool,
    /// Under OWA, monotonicity let the planner dispatch with the CWA rules
    /// (`certain_owa = certain_cwa` for monotone queries).
    pub owa_as_cwa: bool,
    /// Ground proper subtrees evaluated plainly and inlined as complete
    /// literals before strategy execution.
    pub inlined_subtrees: usize,
}

/// The result of [`crate::Engine::analyze`]: the static verdict on a query
/// over this engine's database — no evaluation performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// The syntactic class the classifier assigns.
    pub class: QueryClass,
    /// The analyzer's whole-query facts (groundness, monotonicity,
    /// per-column nullability, split class, …).
    pub facts: NodeFacts,
    /// Is naïve evaluation provably exact for this query on this database
    /// under the engine's semantics?
    pub certainty_preserving: bool,
    /// The strategy the planner would dispatch to.
    pub strategy: StrategyKind,
    /// The guarantee that dispatch would carry.
    pub guarantee: Guarantee,
    /// Lint findings (`QL001` …), plan order, constraint findings last.
    pub diagnostics: Vec<Diagnostic>,
    /// The logical plan annotated with per-node facts and lint codes.
    pub annotated: String,
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "class: {} | dispatch: {} ({})",
            self.class, self.strategy, self.guarantee
        )?;
        write!(f, "{}", self.annotated)?;
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Per-phase timing and planner telemetry for one engine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Time to parse (if textual), typecheck and classify the query.
    pub plan_time: Duration,
    /// Time spent executing the selected strategy.
    pub execute_time: Duration,
    /// End-to-end time of the engine call.
    pub total_time: Duration,
    /// Number of distinct marked nulls in the database.
    pub nulls: usize,
    /// The planner's `|domain|^|nulls|` world-count estimate, when ground
    /// truth was considered.
    pub estimated_worlds: Option<u128>,
    /// Worlds actually **visited** by the streaming fold, when the worlds
    /// strategy ran. Early exit can make this far smaller than the estimate.
    pub worlds_enumerated: Option<u128>,
    /// Of the visited worlds, how many were evaluated as valuation overlays
    /// through the batched split executor (stable subresults and hash
    /// tables shared across the shard) rather than materialized databases,
    /// when the worlds strategy ran. Equal to
    /// [`EngineStats::worlds_enumerated`] on the default path.
    pub worlds_batched: Option<u128>,
    /// True when exhaustive mode was requested but the budget forced the
    /// planner to degrade to the sound approximation.
    pub degraded: bool,
    /// Did the streaming world fold stop early because its running
    /// intersection emptied? Early exit only ever fires on an empty certain
    /// answer, so a `true` here never costs correctness.
    pub world_early_exit: bool,
    /// Worker threads the streaming world fold sharded valuations across,
    /// when the worlds strategy ran.
    pub world_threads: Option<usize>,
    /// Upper bound on worlds concurrently materialized by the fold (one per
    /// worker, plus one OWA extension per worker), when the worlds strategy
    /// ran — the O(threads) memory face of the streaming engine.
    pub peak_worlds_in_flight: Option<usize>,
    /// The static analyzer's contribution to the dispatch, when the planner
    /// consulted it (every certain-answer dispatch; `None` for forced
    /// strategies and the repair strategies).
    pub analyzer: Option<AnalyzerStats>,
    /// Condition atoms across the conditional answer table, when the
    /// symbolic strategy ran — the paper's "hardly meaningful to humans"
    /// size measure, and the polynomial cost face of the symbolic engine.
    pub condition_atoms: Option<usize>,
    /// Certainty-solver questions asked, when the symbolic strategy ran —
    /// the honest "units evaluated" figure to set against
    /// [`EngineStats::worlds_enumerated`].
    pub solver_calls: Option<usize>,
    /// Solver questions settled by structural simplification alone (no DNF
    /// built), when the symbolic strategy ran.
    pub simplification_wins: Option<usize>,
    /// Why the planner's first choice was not the strategy that answered —
    /// a symbolic punt, a blown repair budget, an aborted enumeration: the
    /// explicit fallback trail. `None` when the first choice answered.
    pub fallback: Option<FallbackReason>,
    /// Constraint violations witnessed in the database, when consistent
    /// answering ran (`Some(0)` means the constraints were checked and the
    /// database is clean).
    pub violations: Option<usize>,
    /// Tuples in at least one binary conflict edge, when consistent
    /// answering ran.
    pub conflict_tuples: Option<usize>,
    /// The planner's Moon–Moser repair-count estimate, when repair
    /// enumeration was considered.
    pub estimated_repairs: Option<u128>,
    /// Repairs actually visited by the streaming fold, when the
    /// repair-enumeration strategy ran.
    pub repairs_enumerated: Option<u128>,
    /// Of the visited repairs, how many were evaluated as survival masks
    /// through the batched split executor, when the repair-enumeration
    /// strategy ran. Equal to [`EngineStats::repairs_enumerated`] for
    /// complete inputs; zero when nulls force the materializing path.
    pub repairs_batched: Option<u128>,
    /// Did the repair fold stop early because its running intersection
    /// emptied? Early exit only ever fires on an empty consistent answer.
    pub repair_early_exit: bool,
    /// The `EXPLAIN` rendering of the physical plan the strategies execute —
    /// join fusion, pushdowns and all. Filled for every planned query.
    pub plan_text: String,
    /// Physical-operator telemetry (operators run, hash joins, build/probe
    /// rows, symbolic fallback pairs), when a physical-executing strategy
    /// ran. For the worlds strategy this aggregates across every per-world
    /// execution; `None` for the 3VL baseline, which keeps its own
    /// deliberately naïve interpreter.
    pub physical_ops: Option<OpStats>,
    /// The report was served from a service's certain-answer result cache
    /// (no strategy executed for this call; the timing fields describe the
    /// original computation). Always `false` for a direct [`crate::Engine`]
    /// call — only `serve::CertainService` sets it.
    pub cache_hit: bool,
    /// The plan came from a service's plan cache (parse + typecheck + lower
    /// were skipped for this call). Always `false` for a direct engine call.
    pub plan_cache_hit: bool,
    /// The snapshot version the answer was computed against, when a
    /// snapshot-versioned service answered. `None` for a direct engine call.
    pub snapshot_version: Option<u64>,
    /// The query's span tree — phase timings (plan, analyze + dispatch,
    /// execute), the executed strategy with its counters as span fields, and
    /// one child span per worker shard of an enumeration fold. Recorded only
    /// when [`crate::EngineOptions::trace`] is on; `None` otherwise, so the
    /// disabled path allocates nothing.
    pub trace: Option<obs::Span>,
}

impl EngineStats {
    /// A one-line rendering of the run: phase times, enumeration/cache
    /// flags, and the degradation marker — the log-line counterpart of the
    /// full `Debug` dump, used by the serve tour and the bench harness.
    pub fn summary(&self) -> String {
        use fmt::Write as _;
        let mut out = format!(
            "plan {:?} · exec {:?} · total {:?}",
            self.plan_time, self.execute_time, self.total_time
        );
        if let Some(worlds) = self.worlds_enumerated {
            let _ = write!(out, " · worlds {worlds}");
        }
        if let Some(calls) = self.solver_calls {
            let _ = write!(out, " · solver calls {calls}");
        }
        if let Some(repairs) = self.repairs_enumerated {
            let _ = write!(out, " · repairs {repairs}");
        }
        if self.degraded {
            out.push_str(" · degraded");
        }
        if self.cache_hit {
            out.push_str(" · cache hit");
        } else if self.plan_cache_hit {
            out.push_str(" · plan cache hit");
        }
        if let Some(version) = self.snapshot_version {
            let _ = write!(out, " · v{version}");
        }
        out
    }
}

/// The result of [`crate::Engine::explain_analyze`]: the physical plan with
/// measured per-node execution spliced into each operator line, plus the raw
/// profiles for programmatic use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainAnalyze {
    /// The annotated `EXPLAIN` rendering — each operator line carries
    /// `(rows=…, batches=…, tables_reused=…, time=…)` — followed by a
    /// `-- `-prefixed footer with the whole run's time, answer size, and
    /// aggregate operator telemetry.
    pub annotated: String,
    /// The per-node profiles, in completion (post) order — the root last.
    /// Times are inclusive of each node's subtree.
    pub profiles: Vec<NodeProfile>,
    /// Aggregate operator telemetry for the measured run.
    pub op_stats: OpStats,
    /// Wall-clock of the measured execution (the root profile's time is
    /// within this; the difference is final result materialization).
    pub execute_time: Duration,
    /// Rows in the measured (naïve, set-semantics) answer.
    pub rows: usize,
}

impl ExplainAnalyze {
    /// The profile of the plan's root node, when the plan is non-empty.
    pub fn root_profile(&self) -> Option<&NodeProfile> {
        self.profiles.last()
    }
}

impl fmt::Display for ExplainAnalyze {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.annotated)
    }
}

/// The engine's answer to a query: the tuples, the strategy that produced
/// them, and the guarantee they carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertainReport {
    /// The (classical, null-free) certain-answer estimate — exactly what the
    /// [`Guarantee`] says it is.
    pub answers: Relation,
    /// The raw evaluator output, where the strategy has one: the object-level
    /// naïve answer (nulls included) for [`StrategyKind::NaiveExact`], the
    /// literal SQL answer for [`StrategyKind::ThreeValuedBaseline`].
    pub object_answer: Option<Relation>,
    /// Which evaluator answered.
    pub strategy: StrategyKind,
    /// What the answer set is worth.
    pub guarantee: Guarantee,
    /// The syntactic class the classifier assigned.
    pub class: QueryClass,
    /// The possible-world semantics the query was answered under.
    pub semantics: Semantics,
    /// Per-phase timing and planner telemetry.
    pub stats: EngineStats,
}

impl CertainReport {
    /// For Boolean (arity-0) queries: is the query certainly true / certainly
    /// false, insofar as the guarantee allows concluding it?
    ///
    /// * `Some(true)` — the answer set is nonempty and carries no false
    ///   positives, so the query holds in every world.
    /// * `Some(false)` — the answer set is empty and carries no false
    ///   negatives, so the query fails in some world.
    /// * `None` — the guarantee is too weak to conclude either.
    pub fn certain_true(&self) -> Option<bool> {
        if !self.answers.is_empty() && self.guarantee.answers_are_certain() {
            Some(true)
        } else if self.answers.is_empty() && self.guarantee.answers_are_complete() {
            Some(false)
        } else {
            None
        }
    }

    /// One line saying what was answered and how: strategy, guarantee,
    /// answer size, and the stats summary. The serve and observe tours print
    /// this instead of hand-assembling the same fields.
    pub fn summary(&self) -> String {
        format!(
            "{} | {} | {} tuple(s) | {}",
            self.strategy,
            self.guarantee,
            self.answers.len(),
            self.stats.summary()
        )
    }
}

impl fmt::Display for CertainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} | {} | {} | {} tuple(s) in {:?}]",
            self.answers,
            self.strategy,
            self.guarantee,
            self.class,
            self.answers.len(),
            self.stats.total_time
        )
    }
}
