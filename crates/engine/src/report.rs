//! Guarantee-carrying results: what the engine answered, how, and what the
//! answer is worth.

use std::fmt;
use std::time::Duration;

use relalgebra::classify::QueryClass;
use releval::exec::OpStats;
use releval::symbolic::PuntReason;
use relmodel::{Relation, Semantics};

/// The strategy the engine dispatched a query to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Naïve evaluation on the fragment where the paper proves it exact
    /// (UCQs under either semantics, `RA_cwa` under CWA).
    NaiveExact,
    /// Possible-world enumeration — the classical intersection-based certain
    /// answer, exponential in the number of nulls. Selected automatically
    /// only in [`crate::EngineOptions::exhaustive`] mode, within budget.
    WorldsGroundTruth,
    /// SQL's three-valued logic, as a *baseline*: what a SQL engine would
    /// return. Never selected automatically; request it explicitly to
    /// reproduce the paper's §1 failure gallery through the same front door.
    ThreeValuedBaseline,
    /// The polynomial fallback beyond the exact fragment: certain⁺/possible?
    /// pair evaluation with null unification (`releval::approx`), sound under
    /// CWA — or naïve evaluation alone where that yields a provable
    /// over-approximation (`RA_cwa` under OWA).
    SoundApproximation,
    /// The symbolic c-table strategy (`releval::symbolic`): lift to a
    /// conditional database, evaluate with the Imieliński–Lipski algebra,
    /// extract certain answers with the certainty solver. **Exact** under
    /// CWA for every query class, polynomial per output tuple; selected by
    /// default for the classes naïve evaluation cannot cover under CWA.
    SymbolicCTable,
}

impl StrategyKind {
    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::NaiveExact => "naive-exact",
            StrategyKind::WorldsGroundTruth => "worlds-ground-truth",
            StrategyKind::ThreeValuedBaseline => "sql-3vl-baseline",
            StrategyKind::SoundApproximation => "sound-approximation",
            StrategyKind::SymbolicCTable => "symbolic-ctable",
        }
    }

    /// The guarantee this strategy can honestly attach to its answer for a
    /// query of the given class under the given semantics.
    pub fn guarantee(self, class: QueryClass, semantics: Semantics) -> Guarantee {
        match self {
            // Under CWA the enumerated worlds are exactly `[[D]]_cwa`, so the
            // intersection is the certain answer by definition. Under OWA the
            // enumeration visits finitely many of the infinitely many
            // supersets: for monotone (positive) queries the minimal worlds
            // already attain the intersection, but beyond that fragment
            // intersecting *fewer* worlds can only over-approximate — no
            // false negatives, hence `Complete`.
            StrategyKind::WorldsGroundTruth => match (class, semantics) {
                (_, Semantics::Cwa) | (QueryClass::Positive, Semantics::Owa) => Guarantee::Exact,
                (_, Semantics::Owa) => Guarantee::Complete,
            },
            StrategyKind::ThreeValuedBaseline => Guarantee::NoGuarantee,
            StrategyKind::NaiveExact => {
                if class.naive_evaluation_sound(semantics) {
                    Guarantee::Exact
                } else if class == QueryClass::RaCwa && semantics == Semantics::Owa {
                    // naïve = certain_cwa ⊇ certain_owa: an over-approximation.
                    Guarantee::Complete
                } else {
                    Guarantee::NoGuarantee
                }
            }
            // The symbolic strategy computes the CWA certain answer exactly
            // (strong representation + a complete solver). Under OWA that
            // answer is exact for the monotone fragment (minimal worlds
            // attain the intersection) and an over-approximation beyond it
            // (CWA worlds are a subset of OWA worlds), mirroring the
            // enumeration guarantee row for row.
            StrategyKind::SymbolicCTable => match (class, semantics) {
                (_, Semantics::Cwa) | (QueryClass::Positive, Semantics::Owa) => Guarantee::Exact,
                (_, Semantics::Owa) => Guarantee::Complete,
            },
            StrategyKind::SoundApproximation => match (class, semantics) {
                // naïve alone: certain_cwa over-approximates certain_owa.
                (QueryClass::RaCwa, Semantics::Owa) => Guarantee::Complete,
                // Under OWA, certain answers for full RA are undecidable; no
                // finite evaluation can promise anything.
                (QueryClass::FullRa, Semantics::Owa) => Guarantee::NoGuarantee,
                // Exact fragment (under-claims: the answer is in fact exact
                // before the ∩) and full RA under CWA.
                _ => Guarantee::Sound,
            },
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a [`CertainReport`]'s answer set is worth, relative to the classical
/// certain answer `certain(Q, D)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Guarantee {
    /// `answers = certain(Q, D)`.
    Exact,
    /// `answers ⊆ certain(Q, D)`: no false positives, possibly incomplete.
    Sound,
    /// `answers ⊇ certain(Q, D)`: no false negatives, possibly over-full.
    Complete,
    /// No relationship promised (e.g. raw SQL 3VL output).
    NoGuarantee,
}

impl Guarantee {
    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Guarantee::Exact => "exact",
            Guarantee::Sound => "sound",
            Guarantee::Complete => "complete",
            Guarantee::NoGuarantee => "no-guarantee",
        }
    }

    /// May a tuple in the answer set be trusted to be certain?
    pub fn answers_are_certain(self) -> bool {
        matches!(self, Guarantee::Exact | Guarantee::Sound)
    }

    /// Is every certain tuple guaranteed to appear in the answer set?
    pub fn answers_are_complete(self) -> bool {
        matches!(self, Guarantee::Exact | Guarantee::Complete)
    }
}

impl fmt::Display for Guarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-phase timing and planner telemetry for one engine run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Time to parse (if textual), typecheck and classify the query.
    pub plan_time: Duration,
    /// Time spent executing the selected strategy.
    pub execute_time: Duration,
    /// End-to-end time of the engine call.
    pub total_time: Duration,
    /// Number of distinct marked nulls in the database.
    pub nulls: usize,
    /// The planner's `|domain|^|nulls|` world-count estimate, when ground
    /// truth was considered.
    pub estimated_worlds: Option<u128>,
    /// Worlds actually **visited** by the streaming fold, when the worlds
    /// strategy ran. Early exit can make this far smaller than the estimate.
    pub worlds_enumerated: Option<u128>,
    /// True when exhaustive mode was requested but the budget forced the
    /// planner to degrade to the sound approximation.
    pub degraded: bool,
    /// Did the streaming world fold stop early because its running
    /// intersection emptied? Early exit only ever fires on an empty certain
    /// answer, so a `true` here never costs correctness.
    pub world_early_exit: bool,
    /// Worker threads the streaming world fold sharded valuations across,
    /// when the worlds strategy ran.
    pub world_threads: Option<usize>,
    /// Upper bound on worlds concurrently materialized by the fold (one per
    /// worker, plus one OWA extension per worker), when the worlds strategy
    /// ran — the O(threads) memory face of the streaming engine.
    pub peak_worlds_in_flight: Option<usize>,
    /// Condition atoms across the conditional answer table, when the
    /// symbolic strategy ran — the paper's "hardly meaningful to humans"
    /// size measure, and the polynomial cost face of the symbolic engine.
    pub condition_atoms: Option<usize>,
    /// Certainty-solver questions asked, when the symbolic strategy ran —
    /// the honest "units evaluated" figure to set against
    /// [`EngineStats::worlds_enumerated`].
    pub solver_calls: Option<usize>,
    /// Solver questions settled by structural simplification alone (no DNF
    /// built), when the symbolic strategy ran.
    pub simplification_wins: Option<usize>,
    /// Why the symbolic strategy was not the one that answered, when it was
    /// eligible but punted (or was ruled out at planning time): the explicit
    /// fallback trail. `None` when symbolic answered or was never in play.
    pub symbolic_fallback: Option<PuntReason>,
    /// The `EXPLAIN` rendering of the physical plan the strategies execute —
    /// join fusion, pushdowns and all. Filled for every planned query.
    pub plan_text: String,
    /// Physical-operator telemetry (operators run, hash joins, build/probe
    /// rows, symbolic fallback pairs), when a physical-executing strategy
    /// ran. For the worlds strategy this aggregates across every per-world
    /// execution; `None` for the 3VL baseline, which keeps its own
    /// deliberately naïve interpreter.
    pub physical_ops: Option<OpStats>,
}

/// The engine's answer to a query: the tuples, the strategy that produced
/// them, and the guarantee they carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertainReport {
    /// The (classical, null-free) certain-answer estimate — exactly what the
    /// [`Guarantee`] says it is.
    pub answers: Relation,
    /// The raw evaluator output, where the strategy has one: the object-level
    /// naïve answer (nulls included) for [`StrategyKind::NaiveExact`], the
    /// literal SQL answer for [`StrategyKind::ThreeValuedBaseline`].
    pub object_answer: Option<Relation>,
    /// Which evaluator answered.
    pub strategy: StrategyKind,
    /// What the answer set is worth.
    pub guarantee: Guarantee,
    /// The syntactic class the classifier assigned.
    pub class: QueryClass,
    /// The possible-world semantics the query was answered under.
    pub semantics: Semantics,
    /// Per-phase timing and planner telemetry.
    pub stats: EngineStats,
}

impl CertainReport {
    /// For Boolean (arity-0) queries: is the query certainly true / certainly
    /// false, insofar as the guarantee allows concluding it?
    ///
    /// * `Some(true)` — the answer set is nonempty and carries no false
    ///   positives, so the query holds in every world.
    /// * `Some(false)` — the answer set is empty and carries no false
    ///   negatives, so the query fails in some world.
    /// * `None` — the guarantee is too weak to conclude either.
    pub fn certain_true(&self) -> Option<bool> {
        if !self.answers.is_empty() && self.guarantee.answers_are_certain() {
            Some(true)
        } else if self.answers.is_empty() && self.guarantee.answers_are_complete() {
            Some(false)
        } else {
            None
        }
    }
}

impl fmt::Display for CertainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} | {} | {} | {} tuple(s) in {:?}]",
            self.answers,
            self.strategy,
            self.guarantee,
            self.class,
            self.answers.len(),
            self.stats.total_time
        )
    }
}
