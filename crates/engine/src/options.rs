//! Budgets and modes governing the planner's strategy choice.

use releval::symbolic::SymbolicOptions;
use releval::worlds::WorldOptions;
use repairs::RepairOptions;

/// Options controlling how far the engine may go for a query outside the
/// theorem-backed fragment.
///
/// With the default options the engine answers exactly where the paper
/// proves naïve evaluation correct, answers **symbolically** (c-tables +
/// certainty solver — exact, polynomial per output tuple) for the remaining
/// classes under CWA, and otherwise returns an explicitly-labelled
/// approximation. When the symbolic solver punts, the engine falls back to
/// possible-world enumeration *within* the `max_nulls` / `max_worlds`
/// budget, then to the sound approximation — with
/// [`crate::EngineStats::fallback`] and
/// [`crate::EngineStats::degraded`] saying so. Opting into
/// [`EngineOptions::exhaustive`] additionally allows enumeration as the
/// ground truth where neither theorem nor symbolic strategy applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Allow possible-world enumeration for queries no exact polynomial
    /// strategy covers. Off by default: enumeration is exponential in the
    /// number of nulls, which is exactly the cost the paper's fix avoids.
    pub exhaustive: bool,
    /// Allow the symbolic c-table strategy for queries whose class has no
    /// naïve guarantee under CWA. On by default: it is exact and polynomial
    /// per output tuple. Disable to reproduce the pre-symbolic planner (the
    /// benches do, to measure the gap).
    pub symbolic: bool,
    /// Solver budget for the symbolic strategy; the engine falls back when
    /// it fires.
    pub symbolic_options: SymbolicOptions,
    /// Ground-truth budget: refuse enumeration when the database has more
    /// distinct nulls than this.
    pub max_nulls: usize,
    /// Domain construction and world budget for enumeration, shared with
    /// [`releval::worlds`]. Its `max_worlds` field is the second budget axis.
    pub world_options: WorldOptions,
    /// Budgets for consistent query answering under
    /// [`crate::Semantics::ConsistentAnswers`]: repair enumeration is
    /// attempted while the conflict graph's repair estimate fits
    /// `repair_options.max_repairs`, and degrades to the conflict-free-core
    /// approximation beyond it.
    pub repair_options: RepairOptions,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            exhaustive: false,
            symbolic: true,
            symbolic_options: SymbolicOptions::default(),
            max_nulls: 8,
            world_options: WorldOptions::default(),
            repair_options: RepairOptions::default(),
        }
    }
}

impl EngineOptions {
    /// Options allowing ground-truth enumeration (within the default budget).
    pub fn exhaustive() -> Self {
        EngineOptions {
            exhaustive: true,
            ..EngineOptions::default()
        }
    }

    /// Disables the symbolic c-table strategy, restoring the pre-symbolic
    /// dispatch (approximation by default, enumeration in exhaustive mode).
    pub fn without_symbolic(mut self) -> Self {
        self.symbolic = false;
        self
    }

    /// Sets the symbolic solver's DNF clause budget.
    pub fn with_max_dnf_clauses(mut self, max_dnf_clauses: usize) -> Self {
        self.symbolic_options.max_dnf_clauses = max_dnf_clauses;
        self
    }

    /// Sets the maximum number of nulls for which enumeration is attempted.
    pub fn with_max_nulls(mut self, max_nulls: usize) -> Self {
        self.max_nulls = max_nulls;
        self
    }

    /// Sets the world-count budget for enumeration.
    pub fn with_max_worlds(mut self, max_worlds: u128) -> Self {
        self.world_options.max_worlds = max_worlds;
        self
    }

    /// Replaces the whole world-enumeration configuration.
    pub fn with_world_options(mut self, opts: WorldOptions) -> Self {
        self.world_options = opts;
        self
    }

    /// Sets the repair-visit budget for consistent query answering.
    pub fn with_max_repairs(mut self, max_repairs: u128) -> Self {
        self.repair_options.max_repairs = max_repairs;
        self
    }

    /// Replaces the whole repair-enumeration configuration.
    pub fn with_repair_options(mut self, opts: RepairOptions) -> Self {
        self.repair_options = opts;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_conservative() {
        let opts = EngineOptions::default();
        assert!(!opts.exhaustive);
        assert!(
            opts.symbolic,
            "the exact polynomial strategy is on by default"
        );
        assert!(opts.max_nulls >= 1);
        assert_eq!(opts.world_options, WorldOptions::default());
    }

    #[test]
    fn builders_compose() {
        let opts = EngineOptions::exhaustive()
            .with_max_nulls(3)
            .with_max_worlds(100)
            .with_max_dnf_clauses(7)
            .with_max_repairs(12)
            .without_symbolic();
        assert!(opts.exhaustive);
        assert!(!opts.symbolic);
        assert_eq!(opts.max_nulls, 3);
        assert_eq!(opts.world_options.max_worlds, 100);
        assert_eq!(opts.symbolic_options.max_dnf_clauses, 7);
        assert_eq!(opts.repair_options.max_repairs, 12);
    }
}
