//! Budgets and modes governing the planner's strategy choice.

use std::hash::{Hash, Hasher};

use releval::symbolic::SymbolicOptions;
use releval::worlds::WorldOptions;
use repairs::RepairOptions;

/// Options controlling how far the engine may go for a query outside the
/// theorem-backed fragment.
///
/// With the default options the engine answers exactly where the paper
/// proves naïve evaluation correct, answers **symbolically** (c-tables +
/// certainty solver — exact, polynomial per output tuple) for the remaining
/// classes under CWA, and otherwise returns an explicitly-labelled
/// approximation. When the symbolic solver punts, the engine falls back to
/// possible-world enumeration *within* the `max_nulls` / `max_worlds`
/// budget, then to the sound approximation — with
/// [`crate::EngineStats::fallback`] and
/// [`crate::EngineStats::degraded`] saying so. Opting into
/// [`EngineOptions::exhaustive`] additionally allows enumeration as the
/// ground truth where neither theorem nor symbolic strategy applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Allow possible-world enumeration for queries no exact polynomial
    /// strategy covers. Off by default: enumeration is exponential in the
    /// number of nulls, which is exactly the cost the paper's fix avoids.
    pub exhaustive: bool,
    /// Allow the symbolic c-table strategy for queries whose class has no
    /// naïve guarantee under CWA. On by default: it is exact and polynomial
    /// per output tuple. Disable to reproduce the pre-symbolic planner (the
    /// benches do, to measure the gap).
    pub symbolic: bool,
    /// Solver budget for the symbolic strategy; the engine falls back when
    /// it fires.
    pub symbolic_options: SymbolicOptions,
    /// Ground-truth budget: refuse enumeration when the database has more
    /// distinct nulls than this.
    pub max_nulls: usize,
    /// Domain construction and world budget for enumeration, shared with
    /// [`releval::worlds`]. Its `max_worlds` field is the second budget axis.
    pub world_options: WorldOptions,
    /// Budgets for consistent query answering under
    /// [`crate::Semantics::ConsistentAnswers`]: repair enumeration is
    /// attempted while the conflict graph's repair estimate fits
    /// `repair_options.max_repairs`, and degrades to the conflict-free-core
    /// approximation beyond it.
    pub repair_options: RepairOptions,
    /// Rows per morsel for the columnar executors. `None` (the default)
    /// reads the `MORSEL_ROWS` environment variable per call as the seed;
    /// long-lived services set this explicitly once at construction so
    /// batching is a per-service decision, not a process-global one.
    pub morsel_rows: Option<usize>,
    /// Record a per-query span tree ([`obs::Span`]) into
    /// [`crate::EngineStats::trace`]. Off by default: the disabled path is
    /// a handful of `bool` branches at phase boundaries — no timers, no
    /// allocation (the bench lane asserts < 5 % dispatch overhead).
    pub trace: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            exhaustive: false,
            symbolic: true,
            symbolic_options: SymbolicOptions::default(),
            max_nulls: 8,
            world_options: WorldOptions::default(),
            repair_options: RepairOptions::default(),
            morsel_rows: None,
            trace: false,
        }
    }
}

impl EngineOptions {
    /// Options allowing ground-truth enumeration (within the default budget).
    pub fn exhaustive() -> Self {
        EngineOptions {
            exhaustive: true,
            ..EngineOptions::default()
        }
    }

    /// Disables the symbolic c-table strategy, restoring the pre-symbolic
    /// dispatch (approximation by default, enumeration in exhaustive mode).
    pub fn without_symbolic(mut self) -> Self {
        self.symbolic = false;
        self
    }

    /// Sets the symbolic solver's DNF clause budget.
    pub fn with_max_dnf_clauses(mut self, max_dnf_clauses: usize) -> Self {
        self.symbolic_options.max_dnf_clauses = max_dnf_clauses;
        self
    }

    /// Sets the maximum number of nulls for which enumeration is attempted.
    pub fn with_max_nulls(mut self, max_nulls: usize) -> Self {
        self.max_nulls = max_nulls;
        self
    }

    /// Sets the world-count budget for enumeration.
    pub fn with_max_worlds(mut self, max_worlds: u128) -> Self {
        self.world_options.max_worlds = max_worlds;
        self
    }

    /// Replaces the whole world-enumeration configuration.
    pub fn with_world_options(mut self, opts: WorldOptions) -> Self {
        self.world_options = opts;
        self
    }

    /// Sets the repair-visit budget for consistent query answering.
    pub fn with_max_repairs(mut self, max_repairs: u128) -> Self {
        self.repair_options.max_repairs = max_repairs;
        self
    }

    /// Replaces the whole repair-enumeration configuration.
    pub fn with_repair_options(mut self, opts: RepairOptions) -> Self {
        self.repair_options = opts;
        self
    }

    /// Pins the columnar executors' morsel size explicitly (services call
    /// this once with their env-seeded size at construction).
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> Self {
        self.morsel_rows = Some(morsel_rows.max(1));
        self
    }

    /// Turns per-query trace recording on or off (see
    /// [`EngineOptions::trace`]).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// A stable fingerprint of **every** option field, for result-cache
    /// keys: two option sets share a cached answer only when the
    /// fingerprints match, so a report computed under a starved budget (and
    /// honestly degraded to `Sound`) can never be served to a caller whose
    /// larger budget would have earned `Exact`. Equal options always yield
    /// equal fingerprints; distinct options collide only with ordinary
    /// 64-bit hash probability.
    pub fn fingerprint(&self) -> u64 {
        fn world(h: &mut impl Hasher, w: &WorldOptions) {
            w.extra_fresh.hash(h);
            w.max_owa_extra.hash(h);
            w.max_worlds.hash(h);
            w.threads.hash(h);
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.exhaustive.hash(&mut h);
        self.symbolic.hash(&mut h);
        self.symbolic_options.max_dnf_clauses.hash(&mut h);
        self.max_nulls.hash(&mut h);
        world(&mut h, &self.world_options);
        self.repair_options.max_repairs.hash(&mut h);
        self.repair_options.threads.hash(&mut h);
        world(&mut h, &self.repair_options.world_options);
        self.repair_options
            .symbolic_options
            .max_dnf_clauses
            .hash(&mut h);
        self.morsel_rows.hash(&mut h);
        self.trace.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_conservative() {
        let opts = EngineOptions::default();
        assert!(!opts.exhaustive);
        assert!(
            opts.symbolic,
            "the exact polynomial strategy is on by default"
        );
        assert!(opts.max_nulls >= 1);
        assert_eq!(opts.world_options, WorldOptions::default());
        assert!(!opts.trace, "tracing is opt-in");
    }

    #[test]
    fn builders_compose() {
        let opts = EngineOptions::exhaustive()
            .with_max_nulls(3)
            .with_max_worlds(100)
            .with_max_dnf_clauses(7)
            .with_max_repairs(12)
            .with_morsel_rows(64)
            .with_trace(true)
            .without_symbolic();
        assert!(opts.exhaustive);
        assert!(!opts.symbolic);
        assert!(opts.trace);
        assert_eq!(opts.max_nulls, 3);
        assert_eq!(opts.world_options.max_worlds, 100);
        assert_eq!(opts.symbolic_options.max_dnf_clauses, 7);
        assert_eq!(opts.repair_options.max_repairs, 12);
        assert_eq!(opts.morsel_rows, Some(64));
        assert_eq!(
            EngineOptions::default().with_morsel_rows(0).morsel_rows,
            Some(1),
            "zero clamps to 1"
        );
    }

    #[test]
    fn fingerprint_separates_every_budget_axis() {
        let base = EngineOptions::default();
        assert_eq!(base.fingerprint(), EngineOptions::default().fingerprint());
        let variants = [
            EngineOptions::exhaustive(),
            base.without_symbolic(),
            base.with_max_nulls(3),
            base.with_max_worlds(100),
            base.with_max_dnf_clauses(7),
            base.with_max_repairs(12),
            base.with_morsel_rows(64),
            base.with_trace(true),
        ];
        for v in &variants {
            assert_ne!(
                base.fingerprint(),
                v.fingerprint(),
                "changed options must change the fingerprint: {v:?}"
            );
        }
        // The budget-upgrade hazard specifically: a starved world budget and
        // the default budget must never share a result-cache line.
        assert_ne!(base.with_max_worlds(1).fingerprint(), base.fingerprint(),);
    }
}
