//! Budgets and modes governing the planner's strategy choice.

use releval::worlds::WorldOptions;

/// Options controlling how far the engine may go for a query outside the
/// theorem-backed fragment.
///
/// With the default options the engine is **never exponential**: it answers
/// exactly where the paper proves naïve evaluation correct, and otherwise
/// returns an explicitly-labelled approximation. Opting into
/// [`EngineOptions::exhaustive`] allows possible-world enumeration as the
/// ground truth for hard queries, *within* the `max_nulls` / `max_worlds`
/// budget; when the budget would be blown, the planner degrades back to the
/// sound approximation and says so ([`crate::EngineStats::degraded`]) rather
/// than hanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Allow possible-world enumeration for queries whose class has no naïve
    /// guarantee. Off by default: enumeration is exponential in the number of
    /// nulls, which is exactly the cost the paper's fix avoids.
    pub exhaustive: bool,
    /// Ground-truth budget: refuse enumeration when the database has more
    /// distinct nulls than this.
    pub max_nulls: usize,
    /// Domain construction and world budget for enumeration, shared with
    /// [`releval::worlds`]. Its `max_worlds` field is the second budget axis.
    pub world_options: WorldOptions,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            exhaustive: false,
            max_nulls: 8,
            world_options: WorldOptions::default(),
        }
    }
}

impl EngineOptions {
    /// Options allowing ground-truth enumeration (within the default budget).
    pub fn exhaustive() -> Self {
        EngineOptions {
            exhaustive: true,
            ..EngineOptions::default()
        }
    }

    /// Sets the maximum number of nulls for which enumeration is attempted.
    pub fn with_max_nulls(mut self, max_nulls: usize) -> Self {
        self.max_nulls = max_nulls;
        self
    }

    /// Sets the world-count budget for enumeration.
    pub fn with_max_worlds(mut self, max_worlds: u128) -> Self {
        self.world_options.max_worlds = max_worlds;
        self
    }

    /// Replaces the whole world-enumeration configuration.
    pub fn with_world_options(mut self, opts: WorldOptions) -> Self {
        self.world_options = opts;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_conservative() {
        let opts = EngineOptions::default();
        assert!(!opts.exhaustive);
        assert!(opts.max_nulls >= 1);
        assert_eq!(opts.world_options, WorldOptions::default());
    }

    #[test]
    fn builders_compose() {
        let opts = EngineOptions::exhaustive()
            .with_max_nulls(3)
            .with_max_worlds(100);
        assert!(opts.exhaustive);
        assert_eq!(opts.max_nulls, 3);
        assert_eq!(opts.world_options.max_worlds, 100);
    }
}
