//! Per-database dispatch context: the facts the engine precomputes about a
//! database, factored out of [`crate::Engine`] so they can **outlive** any
//! one engine.
//!
//! A borrow-scoped `Engine::new(&db)` used to own the null count, null
//! census, and (lazily) the conflict graph itself — so a service answering N
//! requests over one unchanged database through N short-lived engines
//! re-scanned the database N times and rebuilt the conflict graph N times.
//! [`DbContext`] is those facts as a shareable object: a snapshot owns one
//! `Arc<DbContext>` next to its `Arc<Database>`, every request-scoped engine
//! is built with [`crate::Engine::with_context`], and the conflict graph is
//! built **exactly once per snapshot** no matter how many queries run — a
//! claim [`DbContext::conflict_graph_builds`] lets tests prove by counter
//! rather than by timing.
//!
//! The context is only meaningful for the database it was measured from;
//! [`crate::Engine::with_context`] documents (and debug-asserts) that
//! pairing. All fields are immutable after construction except the lazily
//! initialized conflict graph, which sits behind a [`OnceLock`] so
//! concurrent readers race safely: one wins the build, everyone shares it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use relalgebra::analysis::NullCensus;
use relmodel::Database;
use repairs::ConflictGraph;

/// Precomputed dispatch facts about one database: null count, null census,
/// and the lazily built, cached conflict graph — shareable across engines so
/// a snapshot-owning service measures each database exactly once.
#[derive(Debug, Default)]
pub struct DbContext {
    /// Distinct nulls, counted once: budget checks and report stats need it
    /// per query, and re-scanning the database per call would dominate
    /// dispatch cost on large instances.
    nulls: usize,
    /// The per-relation null census, measured once: the static analyzer's
    /// ground truth for null-free reach, consulted on every dispatch.
    census: NullCensus,
    /// The conflict hypergraph against the schema's integrity constraints,
    /// built lazily on the first consistent-answer dispatch and shared for
    /// the context's lifetime. The violation scan — quadratic in the worst
    /// key group — is only consulted under consistent-answer semantics, so
    /// plain CWA/OWA traffic over constraint-bearing schemas never pays for
    /// it. `Some(None)` once resolved for a constraint-free schema.
    conflicts: OnceLock<Option<ConflictGraph>>,
    /// How many times the conflict graph was actually built (0 or 1 per
    /// context; the counter exists so tests can assert the "exactly once
    /// per snapshot" contract).
    conflict_builds: AtomicUsize,
}

impl DbContext {
    /// Measures `db`: one pass for the null ids, one for the census. The
    /// conflict graph is *not* built here — it waits for the first
    /// consistent-answer dispatch.
    pub fn of(db: &Database) -> Self {
        DbContext {
            nulls: db.null_ids().len(),
            census: NullCensus::of_database(db),
            conflicts: OnceLock::new(),
            conflict_builds: AtomicUsize::new(0),
        }
    }

    /// Distinct marked nulls in the measured database.
    pub fn nulls(&self) -> usize {
        self.nulls
    }

    /// The per-relation null census of the measured database.
    pub fn census(&self) -> &NullCensus {
        &self.census
    }

    /// The cached conflict hypergraph of `db` (which must be the database
    /// this context was measured from); `None` when the schema declares no
    /// constraints. The first call builds, every later call shares.
    pub fn conflict_graph(&self, db: &Database) -> Option<&ConflictGraph> {
        self.conflicts
            .get_or_init(|| {
                db.schema().has_constraints().then(|| {
                    self.conflict_builds.fetch_add(1, Ordering::Relaxed);
                    ConflictGraph::build(db)
                })
            })
            .as_ref()
    }

    /// How many times [`DbContext::conflict_graph`] actually ran
    /// `ConflictGraph::build` — at most 1 for any context, however many
    /// queries (or threads) asked. Under `OnceLock` contention several
    /// threads may *compute* candidate values but exactly one is published;
    /// the counter is incremented inside the initializer, so a transient
    /// value above 1 is possible only while racers are still inside
    /// `get_or_init`; after any winning call returns it is stable.
    pub fn conflict_graph_builds(&self) -> usize {
        self.conflict_builds.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::DatabaseBuilder;

    #[test]
    fn conflict_graph_builds_once_and_counts() {
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .build();
        let ctx = DbContext::of(&db);
        assert_eq!(ctx.conflict_graph_builds(), 0, "lazy until first use");
        let first = ctx.conflict_graph(&db).expect("schema has a key");
        assert_eq!(first.violation_count(), 1);
        for _ in 0..10 {
            assert!(ctx.conflict_graph(&db).is_some());
        }
        assert_eq!(ctx.conflict_graph_builds(), 1, "ten asks, one build");
    }

    #[test]
    fn constraint_free_schema_resolves_to_none() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .ints("R", &[1])
            .build();
        let ctx = DbContext::of(&db);
        assert!(ctx.conflict_graph(&db).is_none());
        assert_eq!(ctx.conflict_graph_builds(), 0, "nothing to build");
        assert_eq!(ctx.nulls(), 0);
    }
}
