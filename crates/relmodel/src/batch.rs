//! Columnar batches: the morsel-driven representation of relations.
//!
//! A [`ColumnBatch`] stores a block of rows column-by-column — one
//! `Vec<Value>` per attribute — with a **validity sidecar** per column: the
//! sorted list of row indices whose value is a marked null. The sidecar is
//! what makes the paper's "route the ground fraction to the fast path" idea
//! cheap at batch granularity: [`ColumnBatch::ground_split`] partitions a
//! batch into its ground and symbolic *runs* in `O(k + nulls)` when any key
//! column carries nulls, and in `O(k)` (no allocation, no scan) when none
//! does — the overwhelmingly common case on mostly-ground data.
//!
//! Batches are the unit of work of the vectorized executor in `releval`:
//! operators consume input batches in *morsels* (fixed-size row ranges, see
//! [`morsel_rows`] and [`morsel_ranges`]) so inner loops stay in cache, and
//! read values in place via [`ColumnBatch::value`] / [`Column::values`] —
//! no per-row `Tuple` is materialized on the hot path. Conversion to and
//! from the set-semantics [`Relation`] happens once per execution at the
//! leaves and the root.
//!
//! Row-id arithmetic is `u32`: a batch holds at most `u32::MAX` rows, far
//! beyond any workload this workspace generates, and half-width ids keep
//! the executor's hash-table chains and selection vectors dense.

use std::ops::Range;

use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::valuation::Valuation;
use crate::value::Value;

/// Environment knob naming the morsel size (rows per execution chunk).
pub const MORSEL_ROWS_ENV: &str = "MORSEL_ROWS";

/// Default rows per morsel: large enough to amortize per-chunk bookkeeping,
/// small enough that a morsel's columns stay cache-resident.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// The environment-seeded morsel size: `MORSEL_ROWS` from the environment,
/// else [`DEFAULT_MORSEL_ROWS`]. Always at least 1.
///
/// The environment is consulted on **every call** — deliberately not cached
/// in a process-global `OnceLock`. A global read-once value made a later
/// `std::env::set_var` silently a no-op and let parallel tests sweeping
/// morsel sizes race on first-read order. Long-lived services read this once
/// at *service* construction and thread the size through explicit exec
/// options (`execute_counted_with_morsel` and friends); the env lookup here
/// is only the default seed for one-shot callers, and its cost is noise
/// against any query execution.
pub fn morsel_rows() -> usize {
    std::env::var(MORSEL_ROWS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_MORSEL_ROWS)
}

/// Iterator over the morsel row ranges of a batch of `len` rows: contiguous
/// chunks of at most `rows_per_morsel` rows. `len == 0` yields no ranges.
pub fn morsel_ranges(len: usize, rows_per_morsel: usize) -> impl Iterator<Item = Range<usize>> {
    let step = rows_per_morsel.max(1);
    (0..len)
        .step_by(step)
        .map(move |start| start..(start + step).min(len))
}

/// One column of a batch: its values plus the validity sidecar — the sorted
/// row indices holding marked nulls. A column with an empty sidecar is
/// *ground*: every hash/compare loop over it is exact under every null
/// semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Column {
    values: Vec<Value>,
    null_rows: Vec<u32>,
}

impl Column {
    fn with_capacity(rows: usize) -> Self {
        Column {
            values: Vec::with_capacity(rows),
            null_rows: Vec::new(),
        }
    }

    /// The column's values, in row order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The validity sidecar: sorted row indices whose value is a null.
    pub fn null_rows(&self) -> &[u32] {
        &self.null_rows
    }

    /// Does the column contain no nulls?
    pub fn is_ground(&self) -> bool {
        self.null_rows.is_empty()
    }

    fn push(&mut self, v: Value) {
        if v.is_null() {
            self.null_rows.push(self.values.len() as u32);
        }
        self.values.push(v);
    }

    fn clear(&mut self) {
        self.values.clear();
        self.null_rows.clear();
    }

    fn append(&mut self, other: &Column) {
        let offset = self.values.len() as u32;
        self.null_rows
            .extend(other.null_rows.iter().map(|&r| r + offset));
        self.values.extend(other.values.iter().cloned());
    }
}

/// The ground/symbolic partition of a batch's rows with respect to a set of
/// key columns — the `SplitIndex` idea lifted to batch granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunSplit {
    /// Every key column's sidecar is empty: the whole batch is one ground
    /// run. No row list is materialized — callers iterate `0..len` directly.
    AllGround,
    /// Some key column carries nulls: explicit ground and symbolic runs
    /// (disjoint, in row order, together covering the batch).
    Mixed {
        /// Rows whose key columns are all constants.
        ground: Vec<u32>,
        /// Rows with at least one null in a key column — the per-row
        /// fallback's share of the batch.
        symbolic: Vec<u32>,
    },
}

impl RunSplit {
    /// Rows in the symbolic run.
    pub fn symbolic_len(&self) -> usize {
        match self {
            RunSplit::AllGround => 0,
            RunSplit::Mixed { symbolic, .. } => symbolic.len(),
        }
    }

    /// Rows in the ground run, given the batch length.
    pub fn ground_len(&self, batch_len: usize) -> usize {
        batch_len - self.symbolic_len()
    }

    /// Is the whole batch one ground run?
    pub fn is_all_ground(&self) -> bool {
        matches!(self, RunSplit::AllGround)
    }
}

/// A block of rows stored column-by-column. See the [module docs](self).
///
/// Invariants: every column holds exactly `len` values, and each column's
/// sidecar lists exactly its null rows, sorted ascending.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnBatch {
    len: usize,
    columns: Vec<Column>,
}

impl ColumnBatch {
    /// An empty batch of the given arity.
    pub fn new(arity: usize) -> Self {
        Self::with_capacity(arity, 0)
    }

    /// An empty batch of the given arity, with row capacity reserved in
    /// every column.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        ColumnBatch {
            len: 0,
            columns: (0..arity).map(|_| Column::with_capacity(rows)).collect(),
        }
    }

    /// Transposes a relation into a batch (the once-per-execution leaf
    /// conversion). Row order follows the relation's deterministic
    /// iteration order.
    pub fn from_relation(rel: &Relation) -> Self {
        Self::from_rows(rel.arity(), rel.iter())
    }

    /// Transposes borrowed tuples into a batch.
    pub fn from_rows<'a>(arity: usize, rows: impl IntoIterator<Item = &'a Tuple>) -> Self {
        let mut batch = ColumnBatch::new(arity);
        for t in rows {
            batch.push_tuple(t);
        }
        batch
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the batch empty (no rows)?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column at an index.
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }

    /// The value at (column, row), in place — no clone.
    #[inline]
    pub fn value(&self, col: usize, row: usize) -> &Value {
        &self.columns[col].values[row]
    }

    /// Appends a row by cloning a tuple's values.
    pub fn push_tuple(&mut self, t: &Tuple) {
        debug_assert_eq!(t.arity(), self.arity());
        for (c, v) in self.columns.iter_mut().zip(t.values()) {
            c.push(v.clone());
        }
        self.bump();
    }

    /// Appends a row from owned values. The iterator must yield exactly
    /// `arity` values.
    pub fn push_row(&mut self, values: impl IntoIterator<Item = Value>) {
        let mut it = values.into_iter();
        for c in &mut self.columns {
            c.push(it.next().expect("push_row: fewer values than columns"));
        }
        debug_assert!(it.next().is_none(), "push_row: more values than columns");
        self.bump();
    }

    /// Appends the projection of `src`'s row onto `cols` (one output column
    /// per entry of `cols`, in order).
    pub fn push_gather(&mut self, src: &ColumnBatch, row: usize, cols: &[usize]) {
        debug_assert_eq!(cols.len(), self.arity());
        for (c, &sc) in self.columns.iter_mut().zip(cols) {
            c.push(src.columns[sc].values[row].clone());
        }
        self.bump();
    }

    /// Appends the concatenation of a row of `left` and a row of `right`
    /// (the join/product output row).
    pub fn push_concat(
        &mut self,
        left: &ColumnBatch,
        lrow: usize,
        right: &ColumnBatch,
        rrow: usize,
    ) {
        debug_assert_eq!(self.arity(), left.arity() + right.arity());
        let (for_left, for_right) = self.columns.split_at_mut(left.arity());
        for (c, src) in for_left.iter_mut().zip(&left.columns) {
            c.push(src.values[lrow].clone());
        }
        for (c, src) in for_right.iter_mut().zip(&right.columns) {
            c.push(src.values[rrow].clone());
        }
        self.bump();
    }

    fn bump(&mut self) {
        debug_assert!(self.len < u32::MAX as usize, "batch row ids are u32");
        self.len += 1;
    }

    /// Are all of the row's values at `cols` constants?
    pub fn key_is_ground(&self, row: usize, cols: &[usize]) -> bool {
        cols.iter().all(|&c| self.columns[c].values[row].is_const())
    }

    /// Are all of the row's values constants?
    pub fn row_is_ground(&self, row: usize) -> bool {
        self.columns.iter().all(|c| c.values[row].is_const())
    }

    /// Syntactic equality of this batch's row and another batch's row on
    /// paired key columns (`cols[i]` here against `other_cols[i]` there).
    pub fn keys_equal(
        &self,
        row: usize,
        cols: &[usize],
        other: &ColumnBatch,
        other_row: usize,
        other_cols: &[usize],
    ) -> bool {
        debug_assert_eq!(cols.len(), other_cols.len());
        cols.iter()
            .zip(other_cols)
            .all(|(&a, &b)| self.columns[a].values[row] == other.columns[b].values[other_row])
    }

    /// Syntactic equality of two full rows (same arity assumed).
    pub fn rows_equal(&self, row: usize, other: &ColumnBatch, other_row: usize) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.columns
            .iter()
            .zip(&other.columns)
            .all(|(a, b)| a.values[row] == b.values[other_row])
    }

    /// Partitions the batch's rows into ground and symbolic runs with
    /// respect to `cols`. When every key column's sidecar is empty this is
    /// `O(cols)` — no scan, no allocation ([`RunSplit::AllGround`]);
    /// otherwise the sidecars drive an `O(len)` partition.
    pub fn ground_split(&self, cols: &[usize]) -> RunSplit {
        if cols.iter().all(|&c| self.columns[c].is_ground()) {
            return RunSplit::AllGround;
        }
        let mut is_symbolic = vec![false; self.len];
        for &c in cols {
            for &r in &self.columns[c].null_rows {
                is_symbolic[r as usize] = true;
            }
        }
        let mut ground = Vec::new();
        let mut symbolic = Vec::new();
        for (r, &s) in is_symbolic.iter().enumerate() {
            if s {
                symbolic.push(r as u32);
            } else {
                ground.push(r as u32);
            }
        }
        RunSplit::Mixed { ground, symbolic }
    }

    /// A new batch holding the given rows of this one, in the given order
    /// (the selection-vector materialization step).
    pub fn gather(&self, rows: &[u32]) -> ColumnBatch {
        let mut out = ColumnBatch::with_capacity(self.arity(), rows.len());
        self.gather_into(rows, &mut out);
        out
    }

    /// Appends the given rows of this batch onto `out`, in the given order —
    /// the **selection-mask** application step, into a caller-owned scratch
    /// batch so per-element loops (one mask per repair) reuse one allocation.
    pub fn gather_into(&self, rows: &[u32], out: &mut ColumnBatch) {
        debug_assert_eq!(self.arity(), out.arity());
        for (c, src) in out.columns.iter_mut().zip(&self.columns) {
            for &r in rows {
                c.push(src.values[r as usize].clone());
            }
        }
        out.len += rows.len();
    }

    /// Appends every row of `other` (same arity) onto this batch.
    pub fn append(&mut self, other: &ColumnBatch) {
        debug_assert_eq!(self.arity(), other.arity());
        for (c, src) in self.columns.iter_mut().zip(&other.columns) {
            c.append(src);
        }
        self.len += other.len;
    }

    /// Drops every row, keeping column capacity — the scratch-batch reset
    /// between elements of a per-world/per-repair loop.
    pub fn clear(&mut self) {
        for c in &mut self.columns {
            c.clear();
        }
        self.len = 0;
    }

    /// Materializes one row as a tuple (used off the hot path: symbolic
    /// fallbacks and root conversion).
    pub fn tuple_at(&self, row: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.values[row].clone()).collect())
    }

    /// Converts the batch back to a set-semantics relation (the root
    /// conversion; duplicates, if any, merge here).
    pub fn to_relation(&self) -> Relation {
        Relation::from_tuples(self.arity(), (0..self.len).map(|r| self.tuple_at(r)))
    }
}

/// The valuation-overlay view of a relation's batch: the rows partitioned
/// **once** into the ground part (world-invariant — every CWA/OWA world
/// contains these rows verbatim) and the symbolic part (rows carrying marked
/// nulls, whose image varies per valuation).
///
/// This is the enumeration-side analogue of [`RunSplit`]: instead of routing
/// morsels inside one execution, it lets a *fold over worlds* execute the
/// ground part once and re-derive only the symbolic image per world —
/// [`OverlayBatch::resolve_into`] writes `v(symbolic rows)` into a
/// caller-owned scratch batch, so the per-world cost is `O(symbolic rows)`,
/// not `O(batch)`.
#[derive(Debug, Clone)]
pub struct OverlayBatch {
    stable: ColumnBatch,
    symbolic: ColumnBatch,
}

impl OverlayBatch {
    /// Partitions `base` into its ground (stable) and symbolic rows.
    pub fn new(base: &ColumnBatch) -> Self {
        let all: Vec<usize> = (0..base.arity()).collect();
        match base.ground_split(&all) {
            RunSplit::AllGround => OverlayBatch {
                stable: base.clone(),
                symbolic: ColumnBatch::new(base.arity()),
            },
            RunSplit::Mixed { ground, symbolic } => OverlayBatch {
                stable: base.gather(&ground),
                symbolic: base.gather(&symbolic),
            },
        }
    }

    /// The ground rows — identical in every world.
    pub fn stable(&self) -> &ColumnBatch {
        &self.stable
    }

    /// The null-carrying rows, unresolved.
    pub fn symbolic(&self) -> &ColumnBatch {
        &self.symbolic
    }

    /// Does the base batch carry no nulls at all?
    pub fn is_all_ground(&self) -> bool {
        self.symbolic.is_empty()
    }

    /// Appends the valuation image of every symbolic row onto `out` (the
    /// caller's scratch). The valuation must cover every null of the batch.
    /// No deduplication happens here — resolved rows may collide with stable
    /// rows or each other exactly as [`crate::database::Database::apply`]'s
    /// set semantics would merge them; set-level consumers dedup downstream.
    pub fn resolve_into(&self, v: &Valuation, out: &mut ColumnBatch) {
        debug_assert_eq!(self.symbolic.arity(), out.arity());
        for row in 0..self.symbolic.len() {
            out.push_row(
                self.symbolic
                    .columns
                    .iter()
                    .map(|c| v.apply_value(&c.values[row])),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> ColumnBatch {
        ColumnBatch::from_rows(
            2,
            [
                Tuple::ints(&[1, 10]),
                Tuple::new(vec![Value::int(2), Value::null(0)]),
                Tuple::ints(&[3, 30]),
            ]
            .iter(),
        )
    }

    #[test]
    fn transpose_round_trips_through_relation() {
        let rel = Relation::from_tuples(
            2,
            vec![
                Tuple::ints(&[1, 10]),
                Tuple::new(vec![Value::int(2), Value::null(0)]),
            ],
        );
        let b = ColumnBatch::from_relation(&rel);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.to_relation(), rel);
    }

    #[test]
    fn sidecar_tracks_null_rows_per_column() {
        let b = batch();
        assert!(b.column(0).is_ground());
        assert_eq!(b.column(1).null_rows(), &[1]);
        assert!(b.key_is_ground(0, &[0, 1]));
        assert!(!b.key_is_ground(1, &[1]));
        assert!(b.row_is_ground(2));
        assert!(!b.row_is_ground(1));
    }

    #[test]
    fn ground_split_fast_path_and_partition() {
        let b = batch();
        assert_eq!(b.ground_split(&[0]), RunSplit::AllGround);
        assert!(b.ground_split(&[0]).is_all_ground());
        match b.ground_split(&[0, 1]) {
            RunSplit::Mixed { ground, symbolic } => {
                assert_eq!(ground, vec![0, 2]);
                assert_eq!(symbolic, vec![1]);
            }
            RunSplit::AllGround => panic!("column 1 carries a null"),
        }
        let split = b.ground_split(&[1]);
        assert_eq!(split.symbolic_len(), 1);
        assert_eq!(split.ground_len(b.len()), 2);
    }

    #[test]
    fn push_gather_and_concat_maintain_the_sidecar() {
        let b = batch();
        let mut proj = ColumnBatch::new(1);
        proj.push_gather(&b, 1, &[1]);
        assert_eq!(proj.value(0, 0), &Value::null(0));
        assert_eq!(proj.column(0).null_rows(), &[0]);

        let mut joined = ColumnBatch::new(4);
        joined.push_concat(&b, 1, &b, 0);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined.tuple_at(0).values()[1], Value::null(0));
        assert_eq!(joined.column(1).null_rows(), &[0]);
        assert!(joined.column(3).is_ground());
    }

    #[test]
    fn gather_selects_rows_in_order() {
        let b = batch();
        let g = b.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.tuple_at(0), Tuple::ints(&[3, 30]));
        assert_eq!(g.tuple_at(1), Tuple::ints(&[1, 10]));
        assert!(g.column(1).is_ground());
        let symbolic = b.gather(&[1]);
        assert_eq!(symbolic.column(1).null_rows(), &[0]);
    }

    #[test]
    fn row_and_key_equality_are_syntactic() {
        let b = batch();
        let other = batch();
        assert!(b.rows_equal(1, &other, 1), "⊥0 equals itself syntactically");
        assert!(!b.rows_equal(0, &other, 2));
        assert!(!b.keys_equal(0, &[1], &other, 2, &[0]), "10 ≠ 3");
    }

    #[test]
    fn keys_equal_pairs_columns_positionally() {
        let b = batch();
        // b row0 = (1, 10); compare col0 of row0 against col0 of row0.
        assert!(b.keys_equal(0, &[0], &b, 0, &[0]));
        assert!(!b.keys_equal(0, &[0], &b, 0, &[1]));
    }

    #[test]
    fn morsel_ranges_cover_exactly() {
        let ranges: Vec<_> = morsel_ranges(10, 4).collect();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        assert_eq!(morsel_ranges(0, 4).count(), 0);
        assert_eq!(morsel_ranges(3, 0).count(), 3, "zero clamps to 1");
        assert!(morsel_rows() >= 1);
    }

    #[test]
    fn morsel_rows_tracks_the_environment() {
        // Regression: the size was cached in a process-global `OnceLock`, so
        // a `set_var` after the first read silently no-opped. The env must
        // act as a live default seed. (Values stay ≥ 1 throughout so the
        // concurrent `morsel_ranges_cover_exactly` test is unaffected.)
        std::env::set_var(MORSEL_ROWS_ENV, "7");
        assert_eq!(morsel_rows(), 7);
        std::env::set_var(MORSEL_ROWS_ENV, "9");
        assert_eq!(morsel_rows(), 9, "a later set_var must take effect");
        std::env::set_var(MORSEL_ROWS_ENV, "0");
        assert_eq!(morsel_rows(), DEFAULT_MORSEL_ROWS, "zero is rejected");
        std::env::remove_var(MORSEL_ROWS_ENV);
        assert_eq!(morsel_rows(), DEFAULT_MORSEL_ROWS);
    }

    #[test]
    fn gather_into_append_and_clear_reuse_scratch() {
        let b = batch();
        let mut scratch = ColumnBatch::new(2);
        b.gather_into(&[2], &mut scratch);
        b.gather_into(&[1], &mut scratch);
        assert_eq!(scratch.len(), 2);
        assert_eq!(scratch.tuple_at(0), Tuple::ints(&[3, 30]));
        assert_eq!(scratch.column(1).null_rows(), &[1], "sidecar offsets hold");
        let mut out = b.clone();
        out.append(&scratch);
        assert_eq!(out.len(), 5);
        assert_eq!(out.column(1).null_rows(), &[1, 4]);
        scratch.clear();
        assert!(scratch.is_empty());
        assert!(scratch.column(1).is_ground(), "clear drops the sidecar too");
    }

    #[test]
    fn overlay_batch_partitions_and_resolves_per_valuation() {
        use crate::valuation::Valuation;
        use crate::value::{Constant, NullId};

        let overlay = OverlayBatch::new(&batch());
        assert_eq!(overlay.stable().len(), 2, "rows 0 and 2 are ground");
        assert_eq!(overlay.symbolic().len(), 1);
        assert!(!overlay.is_all_ground());
        let v = Valuation::from_pairs([(NullId(0), Constant::Int(99))]);
        let mut scratch = ColumnBatch::new(2);
        overlay.resolve_into(&v, &mut scratch);
        assert_eq!(scratch.len(), 1);
        assert_eq!(scratch.tuple_at(0), Tuple::ints(&[2, 99]));
        // The scratch accumulates across calls until cleared.
        overlay.resolve_into(&v, &mut scratch);
        assert_eq!(scratch.len(), 2);

        let ground = OverlayBatch::new(&ColumnBatch::from_rows(1, [Tuple::ints(&[5])].iter()));
        assert!(ground.is_all_ground());
        assert_eq!(ground.stable().len(), 1);
    }

    #[test]
    fn empty_and_zero_arity_batches() {
        let empty = ColumnBatch::new(3);
        assert!(empty.is_empty());
        assert_eq!(empty.to_relation(), Relation::new(3));
        // 0-ary batches still count rows (Boolean query answers).
        let mut b = ColumnBatch::new(0);
        b.push_row(std::iter::empty());
        b.push_tuple(&Tuple::empty());
        assert_eq!(b.len(), 2);
        let rel = b.to_relation();
        assert_eq!(rel.len(), 1, "set semantics merge the empty tuples");
    }
}
