//! Valuations of nulls: mappings `Null → Const`, and their enumeration over a
//! finite constant domain.
//!
//! A valuation `v` interprets each marked null by a constant. Applying `v` to
//! a database `D` yields `v(D)`, a complete database. The closed-world
//! semantics of `D` is the set of all such `v(D)`; the open-world semantics
//! additionally allows adding tuples (see [`crate::semantics`]).
//!
//! Certain answers require quantifying over *all* valuations, an infinite set.
//! For generic queries (all of relational algebra / FO) it suffices to range
//! over a finite domain containing the constants of the database and query
//! plus enough fresh constants to allow the nulls to be pairwise distinct and
//! distinct from everything else; [`ValuationEnumerator`] enumerates exactly
//! those valuations.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::value::{Constant, NullId, Value};

/// A (partial) mapping from nulls to constants.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Valuation {
    map: BTreeMap<NullId, Constant>,
}

impl Valuation {
    /// Creates the empty valuation.
    pub fn new() -> Self {
        Valuation::default()
    }

    /// Creates a valuation from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NullId, Constant)>) -> Self {
        Valuation {
            map: pairs.into_iter().collect(),
        }
    }

    /// Assigns a constant to a null (overwriting any previous assignment).
    pub fn assign(&mut self, null: NullId, constant: Constant) {
        self.map.insert(null, constant);
    }

    /// Looks up the constant assigned to a null.
    pub fn get(&self, null: NullId) -> Option<&Constant> {
        self.map.get(&null)
    }

    /// Is the valuation defined on this null?
    pub fn covers(&self, null: NullId) -> bool {
        self.map.contains_key(&null)
    }

    /// Does the valuation cover every null in the given set?
    pub fn covers_all<'a>(&self, nulls: impl IntoIterator<Item = &'a NullId>) -> bool {
        nulls.into_iter().all(|n| self.covers(*n))
    }

    /// Number of nulls assigned.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the valuation empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the assignments in null order.
    pub fn iter(&self) -> impl Iterator<Item = (&NullId, &Constant)> {
        self.map.iter()
    }

    /// Applies the valuation to a single value. Constants are unchanged; nulls
    /// are replaced if covered and left in place otherwise.
    pub fn apply_value(&self, value: &Value) -> Value {
        match value {
            Value::Const(_) => value.clone(),
            Value::Null(n) => match self.map.get(n) {
                Some(c) => Value::Const(c.clone()),
                None => value.clone(),
            },
        }
    }

    /// Is this valuation injective on its domain (distinct nulls mapped to
    /// distinct constants)?
    pub fn is_injective(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.map.values().all(|c| seen.insert(c.clone()))
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, c)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}↦{c}")?;
        }
        write!(f, "}}")
    }
}

/// Exhaustively enumerates all valuations of a fixed set of nulls into a fixed
/// finite set of constants.
///
/// The number of valuations is `|domain|^|nulls|`, so callers should keep the
/// null count small (this enumerator is the *ground truth* against which the
/// efficient algorithms are validated; its exponential cost is exactly the
/// complexity gap the paper discusses).
#[derive(Debug, Clone)]
pub struct ValuationEnumerator {
    nulls: Vec<NullId>,
    domain: Vec<Constant>,
    /// Mixed-radix counter over the domain, one digit per null; `None` once
    /// exhausted.
    counter: Option<Vec<usize>>,
    /// Valuations still to be produced (supports range sharding).
    remaining: u128,
}

impl ValuationEnumerator {
    /// Creates an enumerator over the given nulls and constant domain.
    ///
    /// If `nulls` is empty, exactly one (empty) valuation is produced. If the
    /// domain is empty but there are nulls, no valuation is produced.
    pub fn new(nulls: impl IntoIterator<Item = NullId>, domain: Vec<Constant>) -> Self {
        let nulls: Vec<NullId> = {
            let set: BTreeSet<NullId> = nulls.into_iter().collect();
            set.into_iter().collect()
        };
        let remaining = valuation_space_size(nulls.len(), domain.len());
        let counter = if remaining == 0 {
            None
        } else {
            Some(vec![0; nulls.len()])
        };
        ValuationEnumerator {
            nulls,
            domain,
            counter,
            remaining,
        }
    }

    /// Creates an enumerator over the sub-range `[start, end)` of the full
    /// valuation sequence, in the same order [`ValuationEnumerator::new`]
    /// uses. Shards of the form `[k·c, (k+1)·c)` therefore partition the
    /// space exactly, which is how the streaming world engine distributes
    /// valuations across worker threads.
    pub fn with_range(
        nulls: impl IntoIterator<Item = NullId>,
        domain: Vec<Constant>,
        start: u128,
        end: u128,
    ) -> Self {
        let mut e = ValuationEnumerator::new(nulls, domain);
        let total = e.count_total();
        let end = end.min(total);
        if start >= end {
            e.counter = None;
            e.remaining = 0;
            return e;
        }
        // Decode `start` into mixed-radix digits (least significant first,
        // matching the advance order of `next`).
        let radix = e.domain.len() as u128;
        if let Some(counter) = e.counter.as_mut() {
            let mut rest = start;
            for digit in counter.iter_mut() {
                *digit = (rest % radix) as usize;
                rest /= radix;
            }
        }
        e.remaining = end - start;
        e
    }

    /// Total number of valuations in the full space `|domain|^|nulls|`
    /// (regardless of any range restriction).
    pub fn count_total(&self) -> u128 {
        valuation_space_size(self.nulls.len(), self.domain.len())
    }

    /// Number of valuations this enumerator has yet to produce.
    pub fn count_remaining(&self) -> u128 {
        self.remaining
    }
}

/// `|domain|^|nulls|` (saturating), with the conventions every consumer of
/// the valuation space must agree on: zero nulls admit exactly one (empty)
/// valuation, and a nonzero null count over an empty domain admits none.
/// This is the single source of truth shared by [`ValuationEnumerator`],
/// world iteration, and the planner-side world-count estimates.
pub fn valuation_space_size(nulls: usize, domain: usize) -> u128 {
    if nulls == 0 {
        return 1;
    }
    if domain == 0 {
        return 0;
    }
    (domain as u128).saturating_pow(nulls as u32)
}

impl Iterator for ValuationEnumerator {
    type Item = Valuation;

    fn next(&mut self) -> Option<Valuation> {
        if self.remaining == 0 {
            self.counter = None;
            return None;
        }
        let counter = self.counter.as_mut()?;
        let valuation = Valuation::from_pairs(
            self.nulls
                .iter()
                .zip(counter.iter())
                .map(|(n, &d)| (*n, self.domain[d].clone())),
        );
        self.remaining -= 1;
        // advance the mixed-radix counter
        let mut i = 0;
        loop {
            if i == counter.len() {
                self.counter = None;
                break;
            }
            counter[i] += 1;
            if counter[i] < self.domain.len() {
                break;
            }
            counter[i] = 0;
            i += 1;
        }
        Some(valuation)
    }
}

/// Builds a "fresh constant" domain: the provided base constants plus `extra`
/// fresh string constants guaranteed not to collide with the base (they are of
/// the form `"_fresh_k"`; callers using that prefix themselves are out of
/// scope).
pub fn domain_with_fresh(base: &BTreeSet<Constant>, extra: usize) -> Vec<Constant> {
    let mut domain: Vec<Constant> = base.iter().cloned().collect();
    let mut k = 0;
    while domain.len() < base.len() + extra {
        let candidate = Constant::Str(format!("_fresh_{k}"));
        if !base.contains(&candidate) {
            domain.push(candidate);
        }
        k += 1;
    }
    domain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consts(ints: &[i64]) -> Vec<Constant> {
        ints.iter().map(|i| Constant::Int(*i)).collect()
    }

    #[test]
    fn empty_nulls_yields_single_empty_valuation() {
        let vs: Vec<_> = ValuationEnumerator::new(vec![], consts(&[1, 2])).collect();
        assert_eq!(vs.len(), 1);
        assert!(vs[0].is_empty());
    }

    #[test]
    fn empty_domain_with_nulls_yields_nothing() {
        let e = ValuationEnumerator::new(vec![NullId(0)], vec![]);
        assert_eq!(e.count_total(), 0);
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn enumerates_all_combinations() {
        let e = ValuationEnumerator::new(vec![NullId(0), NullId(1)], consts(&[1, 2, 3]));
        assert_eq!(e.count_total(), 9);
        let all: Vec<Valuation> = e.collect();
        assert_eq!(all.len(), 9);
        // all distinct
        let set: BTreeSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), 9);
        // each covers both nulls
        for v in &all {
            assert!(v.covers(NullId(0)) && v.covers(NullId(1)));
        }
    }

    #[test]
    fn ranges_partition_the_valuation_space() {
        let nulls = vec![NullId(0), NullId(1)];
        let full: Vec<Valuation> =
            ValuationEnumerator::new(nulls.clone(), consts(&[1, 2, 3])).collect();
        assert_eq!(full.len(), 9);
        let mut sharded: Vec<Valuation> = Vec::new();
        for (start, end) in [(0u128, 3u128), (3, 6), (6, 200)] {
            let shard =
                ValuationEnumerator::with_range(nulls.clone(), consts(&[1, 2, 3]), start, end);
            sharded.extend(shard);
        }
        assert_eq!(sharded, full, "contiguous ranges cover each valuation once");
        // Degenerate ranges.
        let empty = ValuationEnumerator::with_range(nulls.clone(), consts(&[1, 2]), 3, 3);
        assert_eq!(empty.count_remaining(), 0);
        assert_eq!(empty.count(), 0);
        let no_nulls = ValuationEnumerator::with_range(vec![], consts(&[1]), 0, 5);
        assert_eq!(no_nulls.count(), 1, "empty-null space has one valuation");
    }

    #[test]
    fn duplicate_nulls_are_deduplicated() {
        let e = ValuationEnumerator::new(vec![NullId(3), NullId(3)], consts(&[1, 2]));
        assert_eq!(e.count_total(), 2);
    }

    #[test]
    fn apply_value_behaviour() {
        let v = Valuation::from_pairs(vec![(NullId(0), Constant::Int(9))]);
        assert_eq!(v.apply_value(&Value::null(0)), Value::int(9));
        assert_eq!(v.apply_value(&Value::null(1)), Value::null(1));
        assert_eq!(v.apply_value(&Value::int(4)), Value::int(4));
        assert!(v.covers(NullId(0)));
        assert!(!v.covers(NullId(1)));
        assert!(v.covers_all(&[NullId(0)]));
        assert!(!v.covers_all(&[NullId(0), NullId(1)]));
    }

    #[test]
    fn injectivity() {
        let inj = Valuation::from_pairs(vec![
            (NullId(0), Constant::Int(1)),
            (NullId(1), Constant::Int(2)),
        ]);
        assert!(inj.is_injective());
        let non = Valuation::from_pairs(vec![
            (NullId(0), Constant::Int(1)),
            (NullId(1), Constant::Int(1)),
        ]);
        assert!(!non.is_injective());
    }

    #[test]
    fn fresh_domain_has_requested_size_and_no_collisions() {
        let base: BTreeSet<Constant> = vec![Constant::Int(1), Constant::Str("_fresh_0".into())]
            .into_iter()
            .collect();
        let d = domain_with_fresh(&base, 3);
        assert_eq!(d.len(), 5);
        let set: BTreeSet<_> = d.iter().cloned().collect();
        assert_eq!(
            set.len(),
            5,
            "fresh constants must not collide with the base"
        );
    }

    #[test]
    fn display() {
        let v = Valuation::from_pairs(vec![(NullId(1), Constant::Int(5))]);
        assert_eq!(v.to_string(), "{⊥1↦5}");
    }
}
