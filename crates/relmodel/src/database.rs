//! Databases: schema plus one relation instance per relation symbol.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::ModelError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::valuation::Valuation;
use crate::value::{Constant, NullId, Value};

/// An (incomplete) relational database: an instance of a [`Schema`] whose
/// relations may contain marked nulls.
///
/// Terminology following the paper:
/// * a **naïve database** is any such instance (nulls may repeat);
/// * a **Codd database** is one where every null occurs at most once
///   ([`Database::is_codd`]) — this models SQL's unmarked `NULL`;
/// * a **complete database** has no nulls at all ([`Database::is_complete`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Database {
    schema: Schema,
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database over the given schema (every relation empty).
    pub fn new(schema: Schema) -> Self {
        let relations = schema
            .iter()
            .map(|rs| (rs.name.clone(), Relation::new(rs.arity())))
            .collect();
        Database { schema, relations }
    }

    /// The schema of the database.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Looks up a relation by name, or returns an error.
    pub fn require(&self, name: &str) -> Result<&Relation, ModelError> {
        self.relation(name)
            .ok_or_else(|| ModelError::UnknownRelation(name.to_owned()))
    }

    /// Mutable access to a relation by name.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Relation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Inserts a tuple into the named relation, checking arity.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool, ModelError> {
        let rs = self.schema.require(relation)?;
        if tuple.arity() != rs.arity() {
            return Err(ModelError::ArityMismatch {
                relation: relation.to_owned(),
                expected: rs.arity(),
                actual: tuple.arity(),
            });
        }
        Ok(self
            .relations
            .get_mut(relation)
            .expect("schema relation always has an instance")
            .insert(tuple))
    }

    /// Inserts many tuples into the named relation.
    pub fn insert_all(
        &mut self,
        relation: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<(), ModelError> {
        for t in tuples {
            self.insert(relation, t)?;
        }
        Ok(())
    }

    /// Replaces the instance of a relation wholesale (arity checked).
    pub fn set_relation(&mut self, name: &str, relation: Relation) -> Result<(), ModelError> {
        let rs = self.schema.require(name)?;
        if relation.arity() != rs.arity() && !relation.is_empty() {
            return Err(ModelError::ArityMismatch {
                relation: name.to_owned(),
                expected: rs.arity(),
                actual: relation.arity(),
            });
        }
        let fixed = if relation.is_empty() && relation.arity() != rs.arity() {
            Relation::new(rs.arity())
        } else {
            relation
        };
        self.relations.insert(name.to_owned(), fixed);
        Ok(())
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// All violations of the schema's integrity constraints, as witness
    /// tuples (see [`crate::constraint`] for the syntactic semantics over
    /// marked nulls).
    pub fn violations(&self) -> Vec<crate::constraint::Violation> {
        self.schema
            .constraints()
            .iter()
            .flat_map(|c| crate::constraint::violations_of(c, self))
            .collect()
    }

    /// Does the database satisfy every constraint of its schema?
    /// Early-exits on the first violation.
    pub fn is_consistent(&self) -> bool {
        self.schema
            .constraints()
            .iter()
            .all(|c| !crate::constraint::violates(c, self))
    }

    /// Is every relation free of nulls?
    pub fn is_complete(&self) -> bool {
        self.relations.values().all(Relation::is_complete)
    }

    /// Does every null occur at most once across the whole database?
    /// (Codd databases model SQL's unmarked nulls.)
    pub fn is_codd(&self) -> bool {
        let mut seen: BTreeSet<NullId> = BTreeSet::new();
        for rel in self.relations.values() {
            for t in rel.iter() {
                for v in t.values() {
                    if let Value::Null(n) = v {
                        if !seen.insert(*n) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// All nulls occurring in the database: `Null(D)`.
    pub fn null_ids(&self) -> BTreeSet<NullId> {
        self.relations
            .values()
            .flat_map(Relation::null_ids)
            .collect()
    }

    /// All constants occurring in the database: `Const(D)`.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.relations
            .values()
            .flat_map(Relation::constants)
            .collect()
    }

    /// The active domain `adom(D) = Const(D) ∪ Null(D)` as values.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut out: BTreeSet<Value> = self.constants().into_iter().map(Value::Const).collect();
        out.extend(self.null_ids().into_iter().map(Value::Null));
        out
    }

    /// The complete part `D_cmpl`: all tuples without nulls.
    pub fn complete_part(&self) -> Database {
        Database {
            schema: self.schema.clone(),
            relations: self
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), r.complete_part()))
                .collect(),
        }
    }

    /// Applies a valuation to every relation, producing `v(D)`.
    ///
    /// Returns an error if the valuation does not cover every null of the
    /// database (a valuation must be total on `Null(D)`).
    pub fn apply(&self, v: &Valuation) -> Result<Database, ModelError> {
        for n in self.null_ids() {
            if !v.covers(n) {
                return Err(ModelError::IncompleteValuation { null: n.0 });
            }
        }
        Ok(self.apply_partial(v))
    }

    /// Applies a (possibly partial) valuation, leaving uncovered nulls intact.
    pub fn apply_partial(&self, v: &Valuation) -> Database {
        Database {
            schema: self.schema.clone(),
            relations: self
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), r.apply(v)))
                .collect(),
        }
    }

    /// Applies an arbitrary mapping to nulls in every relation (used for
    /// homomorphisms and null renaming).
    pub fn map_nulls(&self, f: &mut impl FnMut(NullId) -> Value) -> Database {
        Database {
            schema: self.schema.clone(),
            relations: self
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), r.map_nulls(f)))
                .collect(),
        }
    }

    /// Renames every null by adding `offset` to its identifier; used to make
    /// the nulls of two databases disjoint.
    pub fn shift_nulls(&self, offset: u64) -> Database {
        let mut f = |n: NullId| Value::Null(NullId(n.0 + offset));
        self.map_nulls(&mut f)
    }

    /// The largest null identifier occurring in the database, if any.
    pub fn max_null_id(&self) -> Option<u64> {
        self.null_ids().iter().map(|n| n.0).max()
    }

    /// Tuple-wise union of two databases over mergeable schemas.
    pub fn union(&self, other: &Database) -> Result<Database, ModelError> {
        let schema = self.schema.merge(other.schema())?;
        let mut out = Database::new(schema);
        for (name, rel) in self.iter().chain(other.iter()) {
            for t in rel.iter() {
                out.insert(name, t.clone())?;
            }
        }
        Ok(out)
    }

    /// Is `self` a sub-instance of `other` (same schema, every tuple of every
    /// relation also present in `other`)?
    pub fn is_subinstance_of(&self, other: &Database) -> bool {
        self.schema == other.schema
            && self
                .iter()
                .all(|(name, rel)| other.relation(name).is_some_and(|o| rel.is_subset(o)))
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in self.iter() {
            writeln!(f, "{name} = {rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn orders_db() -> Database {
        // The running example of the paper's introduction.
        let schema = Schema::builder()
            .relation("Order", &["o_id", "product"])
            .relation("Pay", &["p_id", "order", "amount"])
            .build();
        let mut db = Database::new(schema);
        db.insert("Order", Tuple::strs(&["oid1", "pr1"])).unwrap();
        db.insert("Order", Tuple::strs(&["oid2", "pr2"])).unwrap();
        db.insert(
            "Pay",
            Tuple::new(vec![Value::str("pid1"), Value::null(0), Value::int(100)]),
        )
        .unwrap();
        db
    }

    #[test]
    fn construction_and_queries() {
        let db = orders_db();
        assert_eq!(db.total_tuples(), 3);
        assert!(!db.is_complete());
        assert!(db.is_codd());
        assert_eq!(db.null_ids().len(), 1);
        assert!(db.constants().contains(&Constant::Str("oid1".into())));
        assert_eq!(db.active_domain().len(), db.constants().len() + 1);
        assert!(db.relation("Order").is_some());
        assert!(db.relation("Nope").is_none());
        assert!(db.require("Nope").is_err());
    }

    #[test]
    fn arity_and_unknown_relation_errors() {
        let mut db = orders_db();
        assert!(matches!(
            db.insert("Order", Tuple::strs(&["x"])),
            Err(ModelError::ArityMismatch { .. })
        ));
        assert!(matches!(
            db.insert("Missing", Tuple::strs(&["x"])),
            Err(ModelError::UnknownRelation(_))
        ));
    }

    #[test]
    fn codd_vs_naive() {
        let schema = Schema::builder().relation("R", &["a", "b"]).build();
        let mut naive = Database::new(schema.clone());
        naive
            .insert("R", Tuple::new(vec![Value::null(0), Value::int(1)]))
            .unwrap();
        naive
            .insert("R", Tuple::new(vec![Value::int(2), Value::null(0)]))
            .unwrap();
        assert!(
            !naive.is_codd(),
            "repeated null ⊥0 makes this a naïve, non-Codd database"
        );

        let mut codd = Database::new(schema);
        codd.insert("R", Tuple::new(vec![Value::null(0), Value::int(1)]))
            .unwrap();
        codd.insert("R", Tuple::new(vec![Value::int(2), Value::null(1)]))
            .unwrap();
        assert!(codd.is_codd());
    }

    #[test]
    fn apply_requires_total_valuation() {
        let db = orders_db();
        assert!(db.apply(&Valuation::new()).is_err());
        let v = Valuation::from_pairs(vec![(NullId(0), Constant::Str("oid1".into()))]);
        let complete = db.apply(&v).unwrap();
        assert!(complete.is_complete());
        assert_eq!(complete.total_tuples(), 3);
    }

    #[test]
    fn complete_part_drops_null_tuples() {
        let db = orders_db();
        let c = db.complete_part();
        assert_eq!(c.relation("Order").unwrap().len(), 2);
        assert_eq!(c.relation("Pay").unwrap().len(), 0);
        assert!(c.is_complete());
    }

    #[test]
    fn shift_nulls_makes_disjoint_copies() {
        let db = orders_db();
        let shifted = db.shift_nulls(100);
        assert_eq!(shifted.null_ids().iter().next().unwrap().0, 100);
        assert_eq!(db.max_null_id(), Some(0));
        assert_eq!(shifted.max_null_id(), Some(100));
    }

    #[test]
    fn union_and_subinstance() {
        let db = orders_db();
        let mut bigger = db.clone();
        bigger
            .insert("Order", Tuple::strs(&["oid3", "pr3"]))
            .unwrap();
        assert!(db.is_subinstance_of(&bigger));
        assert!(!bigger.is_subinstance_of(&db));
        let u = db.union(&bigger).unwrap();
        assert_eq!(u.total_tuples(), 4);
    }

    #[test]
    fn set_relation_checks_arity() {
        let mut db = orders_db();
        let bad = Relation::from_tuples(1, vec![Tuple::strs(&["x"])]);
        assert!(db.set_relation("Order", bad).is_err());
        let good = Relation::from_tuples(2, vec![Tuple::strs(&["o", "p"])]);
        db.set_relation("Order", good).unwrap();
        assert_eq!(db.relation("Order").unwrap().len(), 1);
        // Empty relation with wrong arity is normalised to schema arity.
        db.set_relation("Order", Relation::new(0)).unwrap();
        assert_eq!(db.relation("Order").unwrap().arity(), 2);
    }
}
