//! Pretty-printing of relations and databases as aligned text tables, used by
//! the examples and the experiment binaries.

use crate::database::Database;
use crate::relation::Relation;

/// Renders a relation as an aligned ASCII table with the given header row.
///
/// The number of headers must match the arity (a 0-ary relation renders as a
/// single cell stating whether it is empty — the Boolean convention).
pub fn render_relation(headers: &[&str], relation: &Relation) -> String {
    if relation.arity() == 0 {
        return if relation.is_empty() {
            "(empty — false)".to_owned()
        } else {
            "(nonempty — true)".to_owned()
        };
    }
    assert_eq!(
        headers.len(),
        relation.arity(),
        "header count must match relation arity"
    );
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(relation.len() + 1);
    rows.push(headers.iter().map(|h| (*h).to_owned()).collect());
    for t in relation.iter() {
        rows.push(t.values().iter().map(|v| v.to_string()).collect());
    }
    render_rows(&rows)
}

/// Renders a whole database, one table per relation, using the schema's
/// attribute names as headers.
pub fn render_database(db: &Database) -> String {
    let mut out = String::new();
    for (name, rel) in db.iter() {
        let rs = db
            .schema()
            .relation(name)
            .expect("instance relations are in the schema");
        let headers: Vec<&str> = rs.attributes.iter().map(String::as_str).collect();
        out.push_str(name);
        out.push('\n');
        out.push_str(&render_relation(&headers, rel));
        out.push('\n');
    }
    out
}

/// Renders a generic grid of rows (first row is the header) with column
/// alignment and a separator line under the header.
pub fn render_rows(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            let pad = w - cell.chars().count();
            line.push_str("| ");
            line.push_str(cell);
            line.push_str(&" ".repeat(pad + 1));
        }
        line.push('|');
        out.push_str(&line);
        out.push('\n');
        if r == 0 {
            let mut sep = String::new();
            for w in &widths {
                sep.push('|');
                sep.push_str(&"-".repeat(w + 2));
            }
            sep.push('|');
            out.push_str(&sep);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::orders_and_payments_example;
    use crate::tuple::Tuple;
    use crate::value::Value;

    #[test]
    fn render_relation_aligns_columns() {
        let rel = Relation::from_tuples(
            2,
            vec![
                Tuple::new(vec![Value::str("long_value"), Value::int(1)]),
                Tuple::new(vec![Value::int(2), Value::null(0)]),
            ],
        );
        let s = render_relation(&["a", "b"], &rel);
        assert!(s.contains("long_value"));
        assert!(s.contains("⊥0"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, separator, two rows
    }

    #[test]
    fn render_boolean_relation() {
        let empty = Relation::new(0);
        assert!(render_relation(&[], &empty).contains("false"));
        let mut nonempty = Relation::new(0);
        nonempty.insert(Tuple::empty());
        assert!(render_relation(&[], &nonempty).contains("true"));
    }

    #[test]
    fn render_database_lists_all_relations() {
        let s = render_database(&orders_and_payments_example());
        assert!(s.contains("Order"));
        assert!(s.contains("Pay"));
        assert!(s.contains("oid1"));
        assert!(s.contains("⊥0"));
    }

    #[test]
    fn render_rows_empty() {
        assert_eq!(render_rows(&[]), "");
    }
}
