//! Tuples over `Const ∪ Null`.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Index;

use crate::valuation::Valuation;
use crate::value::{Constant, NullId, Value};

/// A tuple: an ordered sequence of [`Value`]s.
///
/// Tuples are ordered lexicographically, which gives relations (sets of
/// tuples) a deterministic iteration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// The empty (0-ary) tuple. Used for Boolean query answers.
    pub fn empty() -> Self {
        Tuple(Vec::new())
    }

    /// Creates a tuple of integer constants — handy in tests and examples.
    pub fn ints(values: &[i64]) -> Self {
        Tuple(values.iter().map(|i| Value::int(*i)).collect())
    }

    /// Creates a tuple of string constants.
    pub fn strs(values: &[&str]) -> Self {
        Tuple(values.iter().map(|s| Value::str(*s)).collect())
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Is this the 0-ary tuple?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The component values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// Component at a position, if within bounds.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Does the tuple contain no nulls?
    pub fn is_complete(&self) -> bool {
        self.0.iter().all(Value::is_const)
    }

    /// The set of nulls occurring in the tuple.
    pub fn null_ids(&self) -> BTreeSet<NullId> {
        self.0.iter().filter_map(Value::as_null).collect()
    }

    /// The set of constants occurring in the tuple.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.0
            .iter()
            .filter_map(|v| v.as_const().cloned())
            .collect()
    }

    /// Applies a valuation, replacing nulls by constants. Nulls the valuation
    /// does not cover are left in place (total application is checked at the
    /// database level).
    pub fn apply(&self, v: &Valuation) -> Tuple {
        Tuple(self.0.iter().map(|x| v.apply_value(x)).collect())
    }

    /// Projects the tuple onto the given positions (in the given order).
    /// Positions out of bounds are a programming error and panic.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Extracts the values at `positions` as a hashable key vector — the
    /// build/probe key of the hash-join and hash-division operators.
    /// Equality of keys is syntactic (`Value` equality), which is exactly
    /// naïve evaluation's comparison; evaluators with other null semantics
    /// pair this with [`Tuple::key_is_complete`] to route null-bearing keys
    /// to their symbolic fallback.
    pub fn key(&self, positions: &[usize]) -> Vec<Value> {
        positions.iter().map(|&i| self.0[i].clone()).collect()
    }

    /// Is every value at `positions` a constant? Hash lookups on such keys
    /// are exact under every null semantics; keys with nulls only admit
    /// syntactic hashing.
    pub fn key_is_complete(&self, positions: &[usize]) -> bool {
        positions.iter().all(|&i| self.0[i].is_const())
    }

    /// Concatenates two tuples (used by products and joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.0.clone();
        values.extend(other.0.iter().cloned());
        Tuple(values)
    }

    /// Renames nulls according to the mapping; nulls not in the mapping are
    /// unchanged. Used by the chase and by homomorphism application.
    pub fn map_nulls(&self, f: &mut impl FnMut(NullId) -> Value) -> Tuple {
        Tuple(
            self.0
                .iter()
                .map(|v| match v {
                    Value::Null(n) => f(*n),
                    c => c.clone(),
                })
                .collect(),
        )
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tuple::new(vec![Value::int(1), Value::null(0), Value::str("x")]);
        assert_eq!(t.arity(), 3);
        assert!(!t.is_complete());
        assert_eq!(t.get(1), Some(&Value::null(0)));
        assert_eq!(t.get(5), None);
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t.null_ids().len(), 1);
        assert_eq!(t.constants().len(), 2);
        assert_eq!(Tuple::empty().arity(), 0);
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn helpers_ints_strs() {
        assert_eq!(Tuple::ints(&[1, 2]).arity(), 2);
        assert!(Tuple::ints(&[1, 2]).is_complete());
        assert_eq!(Tuple::strs(&["a"]).values()[0], Value::str("a"));
    }

    #[test]
    fn project_and_concat() {
        let t = Tuple::ints(&[10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), Tuple::ints(&[30, 10]));
        assert_eq!(t.project(&[]), Tuple::empty());
        let u = Tuple::ints(&[40]);
        assert_eq!(t.concat(&u), Tuple::ints(&[10, 20, 30, 40]));
    }

    #[test]
    fn key_extraction_for_hash_operators() {
        let t = Tuple::new(vec![Value::int(1), Value::null(0), Value::str("x")]);
        assert_eq!(t.key(&[2, 0]), vec![Value::str("x"), Value::int(1)]);
        assert!(t.key_is_complete(&[0, 2]));
        assert!(!t.key_is_complete(&[0, 1]));
        assert!(t.key_is_complete(&[]));
        // Keys are plain value vectors: equal keys hash and compare equal.
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(t.key(&[0, 1]));
        assert!(set.contains(&vec![Value::int(1), Value::null(0)]));
    }

    #[test]
    fn apply_valuation() {
        let mut v = Valuation::new();
        v.assign(NullId(0), Constant::Int(7));
        let t = Tuple::new(vec![Value::null(0), Value::int(1), Value::null(1)]);
        let applied = t.apply(&v);
        assert_eq!(applied.values()[0], Value::int(7));
        assert_eq!(applied.values()[1], Value::int(1));
        // null 1 is untouched because the valuation does not cover it
        assert_eq!(applied.values()[2], Value::null(1));
    }

    #[test]
    fn map_nulls_renames() {
        let t = Tuple::new(vec![Value::null(0), Value::int(5), Value::null(0)]);
        let renamed = t.map_nulls(&mut |n| Value::Null(NullId(n.0 + 100)));
        assert_eq!(renamed.values()[0], Value::null(100));
        assert_eq!(renamed.values()[2], Value::null(100));
        assert_eq!(renamed.values()[1], Value::int(5));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Tuple::ints(&[1, 2]);
        let b = Tuple::ints(&[1, 3]);
        let c = Tuple::ints(&[2, 0]);
        assert!(a < b && b < c);
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::int(1), Value::null(2)]);
        assert_eq!(t.to_string(), "(1, ⊥2)");
    }
}
