//! Relational schemas: relation names with named, ordered attributes.

use std::collections::BTreeMap;
use std::fmt;

use crate::constraint::{CompareOp, Constraint};
use crate::error::ModelError;
use crate::value::Constant;

/// Schema of a single relation: its name and its attribute names (the arity is
/// the number of attributes).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RelationSchema {
    /// Relation name, e.g. `"Order"`.
    pub name: String,
    /// Ordered attribute names, e.g. `["o_id", "product"]`.
    pub attributes: Vec<String>,
}

impl RelationSchema {
    /// Creates a relation schema from a name and attribute names.
    ///
    /// Attribute names must be pairwise distinct.
    pub fn new(name: impl Into<String>, attributes: &[&str]) -> Result<Self, ModelError> {
        let name = name.into();
        let attrs: Vec<String> = attributes.iter().map(|a| (*a).to_owned()).collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(ModelError::DuplicateAttribute {
                    relation: name,
                    attribute: a.clone(),
                });
            }
        }
        Ok(RelationSchema {
            name,
            attributes: attrs,
        })
    }

    /// Arity (number of attributes).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of an attribute by name.
    pub fn attribute_index(&self, attr: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attr)
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attributes.join(", "))
    }
}

/// A relational schema: a set of relation names with associated arities (and
/// attribute names), plus the integrity constraints declared over them.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schema {
    relations: BTreeMap<String, RelationSchema>,
    #[cfg_attr(feature = "serde", serde(default))]
    constraints: Vec<Constraint>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Starts building a schema fluently.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Adds a relation schema; replaces any previous relation of the same name.
    pub fn add(&mut self, rel: RelationSchema) {
        self.relations.insert(rel.name.clone(), rel);
    }

    /// Looks up a relation schema by name.
    pub fn relation(&self, name: &str) -> Option<&RelationSchema> {
        self.relations.get(name)
    }

    /// Looks up a relation schema by name, or returns an error.
    pub fn require(&self, name: &str) -> Result<&RelationSchema, ModelError> {
        self.relation(name)
            .ok_or_else(|| ModelError::UnknownRelation(name.to_owned()))
    }

    /// Does the schema contain a relation with this name?
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterates over the relation schemas in name order.
    pub fn iter(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Relation names in name order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of relations in the schema.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Declares an integrity constraint, validating it against the schema's
    /// relations and attributes.
    pub fn add_constraint(&mut self, constraint: Constraint) -> Result<(), ModelError> {
        constraint.validate(self)?;
        if !self.constraints.contains(&constraint) {
            self.constraints.push(constraint);
        }
        Ok(())
    }

    /// The declared integrity constraints, in declaration order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Does the schema declare any integrity constraints?
    pub fn has_constraints(&self) -> bool {
        !self.constraints.is_empty()
    }

    /// Builds the union of two schemas; relations present in both must agree.
    /// Constraints from both sides are kept (deduplicated).
    pub fn merge(&self, other: &Schema) -> Result<Schema, ModelError> {
        let mut out = self.clone();
        for rel in other.iter() {
            if let Some(existing) = out.relation(&rel.name) {
                if existing != rel {
                    return Err(ModelError::SchemaMismatch {
                        relation: rel.name.clone(),
                    });
                }
            } else {
                out.add(rel.clone());
            }
        }
        for c in &other.constraints {
            if !out.constraints.contains(c) {
                out.constraints.push(c.clone());
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for rel in self.iter() {
            if !first {
                writeln!(f)?;
            }
            write!(f, "{rel}")?;
            first = false;
        }
        for c in &self.constraints {
            if !first {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

/// Fluent builder for [`Schema`].
#[derive(Debug, Default, Clone)]
pub struct SchemaBuilder {
    relations: Vec<RelationSchema>,
    constraints: Vec<Constraint>,
}

impl SchemaBuilder {
    /// Adds a relation with named attributes. Panics on duplicate attribute
    /// names (a programming error in the schema literal).
    pub fn relation(mut self, name: &str, attributes: &[&str]) -> Self {
        let rel = RelationSchema::new(name, attributes)
            .unwrap_or_else(|e| panic!("invalid relation schema {name}: {e}"));
        self.relations.push(rel);
        self
    }

    /// Declares a primary key on a relation (by attribute names).
    pub fn key(mut self, relation: &str, columns: &[&str]) -> Self {
        self.constraints.push(Constraint::Key {
            relation: relation.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
        });
        self
    }

    /// Declares a functional dependency `lhs → rhs` on a relation.
    pub fn fd(mut self, relation: &str, lhs: &[&str], rhs: &[&str]) -> Self {
        self.constraints.push(Constraint::FunctionalDependency {
            relation: relation.to_owned(),
            lhs: lhs.iter().map(|c| (*c).to_owned()).collect(),
            rhs: rhs.iter().map(|c| (*c).to_owned()).collect(),
        });
        self
    }

    /// Declares a unary denial constraint: no tuple may have a constant in
    /// `column` satisfying `column op value`.
    pub fn deny(mut self, relation: &str, column: &str, op: CompareOp, value: Constant) -> Self {
        self.constraints.push(Constraint::Denial {
            relation: relation.to_owned(),
            column: column.to_owned(),
            op,
            value,
        });
        self
    }

    /// Finishes building the schema. Panics if a declared constraint does
    /// not validate against the declared relations (a programming error in
    /// the schema literal).
    pub fn build(self) -> Schema {
        let mut schema = Schema::new();
        for rel in self.relations {
            schema.add(rel);
        }
        for c in self.constraints {
            schema
                .add_constraint(c.clone())
                .unwrap_or_else(|e| panic!("invalid constraint {c}: {e}"));
        }
        schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let schema = Schema::builder()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .build();
        assert_eq!(schema.len(), 2);
        assert!(schema.contains("R"));
        assert!(!schema.contains("T"));
        assert_eq!(schema.relation("R").unwrap().arity(), 2);
        assert_eq!(schema.relation("S").unwrap().arity(), 1);
        assert_eq!(schema.relation("R").unwrap().attribute_index("b"), Some(1));
        assert_eq!(schema.relation("R").unwrap().attribute_index("z"), None);
        assert!(schema.require("T").is_err());
    }

    #[test]
    fn duplicate_attributes_rejected() {
        assert!(RelationSchema::new("R", &["a", "a"]).is_err());
    }

    #[test]
    fn display_is_readable() {
        let schema = Schema::builder()
            .relation("Pay", &["p_id", "order", "amount"])
            .build();
        assert_eq!(schema.to_string(), "Pay(p_id, order, amount)");
    }

    #[test]
    fn merge_agreeing_schemas() {
        let a = Schema::builder().relation("R", &["a"]).build();
        let b = Schema::builder().relation("S", &["b"]).build();
        let m = a.merge(&b).unwrap();
        assert_eq!(m.len(), 2);

        let conflicting = Schema::builder().relation("R", &["a", "b"]).build();
        assert!(a.merge(&conflicting).is_err());
    }

    #[test]
    fn constraints_are_validated_kept_and_merged() {
        let mut schema = Schema::builder()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .build();
        assert!(schema.has_constraints());
        assert_eq!(schema.constraints().len(), 1);
        // Duplicates are kept once; invalid constraints are rejected.
        schema
            .add_constraint(Constraint::Key {
                relation: "R".into(),
                columns: vec!["k".into()],
            })
            .unwrap();
        assert_eq!(schema.constraints().len(), 1);
        assert!(schema
            .add_constraint(Constraint::Key {
                relation: "R".into(),
                columns: vec!["nope".into()],
            })
            .is_err());
        // Merge keeps both sides' constraints, deduplicated.
        let other = Schema::builder()
            .relation("R", &["k", "v"])
            .relation("S", &["a"])
            .key("R", &["k"])
            .deny("S", "a", CompareOp::Lt, Constant::Int(0))
            .build();
        let merged = schema.merge(&other).unwrap();
        assert_eq!(merged.constraints().len(), 2);
        assert!(merged.to_string().contains("key R(k)"));
    }

    #[test]
    fn names_are_sorted() {
        let schema = Schema::builder()
            .relation("Z", &["a"])
            .relation("A", &["a"])
            .build();
        let names: Vec<&str> = schema.names().collect();
        assert_eq!(names, vec!["A", "Z"]);
    }
}
