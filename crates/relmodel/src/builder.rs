//! Fluent construction of databases, and a tiny literal syntax for tests.

use crate::database::Database;
use crate::schema::{Schema, SchemaBuilder};
use crate::tuple::Tuple;
use crate::value::Value;

/// Fluent builder for [`Database`] instances.
///
/// ```
/// use relmodel::builder::DatabaseBuilder;
/// use relmodel::value::Value;
///
/// let db = DatabaseBuilder::new()
///     .relation("R", &["a", "b"])
///     .tuple("R", vec![Value::int(1), Value::null(0)])
///     .tuple("R", vec![Value::null(0), Value::int(2)])
///     .build();
/// assert_eq!(db.relation("R").unwrap().len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DatabaseBuilder {
    schema: SchemaBuilder,
    tuples: Vec<(String, Tuple)>,
}

impl DatabaseBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DatabaseBuilder::default()
    }

    /// Declares a relation with named attributes.
    pub fn relation(mut self, name: &str, attributes: &[&str]) -> Self {
        self.schema = self.schema.relation(name, attributes);
        self
    }

    /// Declares a primary key on a relation (by attribute names).
    pub fn key(mut self, relation: &str, columns: &[&str]) -> Self {
        self.schema = self.schema.key(relation, columns);
        self
    }

    /// Declares a functional dependency `lhs → rhs` on a relation.
    pub fn fd(mut self, relation: &str, lhs: &[&str], rhs: &[&str]) -> Self {
        self.schema = self.schema.fd(relation, lhs, rhs);
        self
    }

    /// Declares a unary denial constraint on a relation.
    pub fn deny(
        mut self,
        relation: &str,
        column: &str,
        op: crate::constraint::CompareOp,
        value: crate::value::Constant,
    ) -> Self {
        self.schema = self.schema.deny(relation, column, op, value);
        self
    }

    /// Adds a tuple to a relation.
    pub fn tuple(mut self, relation: &str, values: Vec<Value>) -> Self {
        self.tuples.push((relation.to_owned(), Tuple::new(values)));
        self
    }

    /// Adds a tuple of integer constants.
    pub fn ints(self, relation: &str, values: &[i64]) -> Self {
        self.tuple(relation, values.iter().map(|i| Value::int(*i)).collect())
    }

    /// Adds a tuple of string constants.
    pub fn strs(self, relation: &str, values: &[&str]) -> Self {
        self.tuple(relation, values.iter().map(|s| Value::str(*s)).collect())
    }

    /// Builds the database; panics on arity mismatches or unknown relations
    /// (these are programming errors in literals).
    pub fn build(self) -> Database {
        let schema: Schema = self.schema.build();
        let mut db = Database::new(schema);
        for (rel, tuple) in self.tuples {
            db.insert(&rel, tuple)
                .unwrap_or_else(|e| panic!("invalid tuple for relation {rel}: {e}"));
        }
        db
    }
}

/// Builds the paper's running example database: `Order(o_id, product)` with
/// two orders and `Pay(p_id, order, amount)` with a single payment whose
/// `order` attribute is null.
pub fn orders_and_payments_example() -> Database {
    DatabaseBuilder::new()
        .relation("Order", &["o_id", "product"])
        .relation("Pay", &["p_id", "order", "amount"])
        .strs("Order", &["oid1", "pr1"])
        .strs("Order", &["oid2", "pr2"])
        .tuple(
            "Pay",
            vec![Value::str("pid1"), Value::null(0), Value::int(100)],
        )
        .build()
}

/// Builds the §4 tableau example: `R = {(1,⊥), (⊥,2)}` with a *repeated* null.
pub fn tableau_example() -> Database {
    DatabaseBuilder::new()
        .relation("R", &["a", "b"])
        .tuple("R", vec![Value::int(1), Value::null(0)])
        .tuple("R", vec![Value::null(0), Value::int(2)])
        .build()
}

/// Builds the §2/§6 difference example: `R = {1,2}`, `S = {⊥}` over a single
/// attribute each.
pub fn difference_example() -> Database {
    DatabaseBuilder::new()
        .relation("R", &["a"])
        .relation("S", &["a"])
        .ints("R", &[1])
        .ints("R", &[2])
        .tuple("S", vec![Value::null(0)])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_schema_and_tuples() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .ints("R", &[1])
            .strs("R", &["x"])
            .build();
        assert_eq!(db.relation("R").unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid tuple")]
    fn builder_panics_on_bad_arity() {
        DatabaseBuilder::new()
            .relation("R", &["a"])
            .ints("R", &[1, 2])
            .build();
    }

    #[test]
    fn builder_declares_constraints() {
        let db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .key("R", &["k"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .build();
        assert!(db.schema().has_constraints());
        assert!(!db.is_consistent());
    }

    #[test]
    fn canned_examples() {
        let orders = orders_and_payments_example();
        assert_eq!(orders.total_tuples(), 3);
        assert!(orders.is_codd());

        let tableau = tableau_example();
        assert_eq!(tableau.null_ids().len(), 1);
        assert!(!tableau.is_codd());

        let diff = difference_example();
        assert_eq!(diff.relation("R").unwrap().len(), 2);
        assert_eq!(diff.relation("S").unwrap().len(), 1);
    }
}
