//! Relations: finite sets of tuples of a fixed arity.

use std::collections::BTreeSet;
use std::fmt;

use crate::tuple::Tuple;
use crate::valuation::Valuation;
use crate::value::{Constant, NullId, Value};

/// A relation instance: a set of tuples, all of the same arity.
///
/// Set semantics is used throughout (the paper works with sets); tuples are
/// stored in a `BTreeSet` to get deterministic iteration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Creates a relation from tuples; panics (in debug and test builds) if
    /// the tuples do not all have the stated arity — a programming error in
    /// literals.
    ///
    /// This is the bulk-construction hot path of the physical operators
    /// (every projection, product and join output lands here), so the
    /// per-tuple arity check is a `debug_assert!`: exhaustive in debug and
    /// test builds, reduced in release builds to a single check of the
    /// **first input tuple**. A mixed-arity iterator whose first element
    /// happens to match can therefore slip through in release — callers are
    /// the evaluators, whose output arities the type checker already
    /// proved, and the debug/test suites run the exhaustive check.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        // Collecting through `FromIterator` lets the standard library take its
        // sort-and-bulk-build path for `BTreeSet`, which is markedly faster
        // than tuple-at-a-time insertion for large intermediate results.
        let mut first_checked = false;
        let tuples: BTreeSet<Tuple> = tuples
            .into_iter()
            .inspect(|t| {
                debug_assert_eq!(
                    t.arity(),
                    arity,
                    "tuple {t} has arity {}, relation expects {arity}",
                    t.arity()
                );
                if !first_checked {
                    first_checked = true;
                    assert_eq!(
                        t.arity(),
                        arity,
                        "tuple {t} has arity {}, relation expects {arity}",
                        t.arity()
                    );
                }
            })
            .collect();
        Relation { arity, tuples }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple. Returns `true` if it was not already present.
    /// Panics on arity mismatch (checked insertion happens at database level).
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(
            tuple.arity(),
            self.arity,
            "arity mismatch inserting {tuple}"
        );
        self.tuples.insert(tuple)
    }

    /// Removes a tuple; returns whether it was present.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        self.tuples.remove(tuple)
    }

    /// Does the relation contain this tuple?
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterates over the tuples in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The underlying tuple set.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    /// Does the relation contain no nulls?
    pub fn is_complete(&self) -> bool {
        self.tuples.iter().all(Tuple::is_complete)
    }

    /// Set of nulls occurring in the relation.
    pub fn null_ids(&self) -> BTreeSet<NullId> {
        self.tuples.iter().flat_map(|t| t.null_ids()).collect()
    }

    /// Set of constants occurring in the relation.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.tuples.iter().flat_map(|t| t.constants()).collect()
    }

    /// The *complete part*: the sub-relation of tuples without nulls.
    ///
    /// This is the `D_cmpl` operation of the paper — taking the complete part
    /// of a naïvely evaluated answer yields the classical certain answers for
    /// queries where naïve evaluation works.
    pub fn complete_part(&self) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self
                .tuples
                .iter()
                .filter(|t| t.is_complete())
                .cloned()
                .collect(),
        }
    }

    /// Applies a valuation to every tuple. Note that distinct tuples may be
    /// merged (set semantics).
    pub fn apply(&self, v: &Valuation) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.iter().map(|t| t.apply(v)).collect(),
        }
    }

    /// Applies an arbitrary value-level mapping to nulls (e.g. a homomorphism).
    pub fn map_nulls(&self, f: &mut impl FnMut(NullId) -> Value) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.iter().map(|t| t.map_nulls(f)).collect(),
        }
    }

    /// Set union with another relation of the same arity.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(
            self.arity, other.arity,
            "union of relations with different arities"
        );
        Relation {
            arity: self.arity,
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        }
    }

    /// Set difference with another relation of the same arity.
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(
            self.arity, other.arity,
            "difference of relations with different arities"
        );
        Relation {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        }
    }

    /// Set intersection with another relation of the same arity.
    pub fn intersection(&self, other: &Relation) -> Relation {
        assert_eq!(
            self.arity, other.arity,
            "intersection of relations with different arities"
        );
        Relation {
            arity: self.arity,
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        }
    }

    /// Is this relation a subset of the other?
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.tuples.is_subset(&other.tuples)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Builds a relation from tuples, inferring the arity from the first
    /// tuple; an empty iterator yields an empty 0-ary relation.
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        let tuples: Vec<Tuple> = iter.into_iter().collect();
        let arity = tuples.first().map_or(0, Tuple::arity);
        Relation::from_tuples(arity, tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Constant;

    fn r_paper() -> Relation {
        // R = {(1,⊥), (⊥,2)} — the tableau example of §4 of the paper.
        Relation::from_tuples(
            2,
            vec![
                Tuple::new(vec![Value::int(1), Value::null(0)]),
                Tuple::new(vec![Value::null(0), Value::int(2)]),
            ],
        )
    }

    #[test]
    fn basics() {
        let r = r_paper();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(!r.is_complete());
        assert_eq!(r.null_ids().len(), 1);
        assert_eq!(r.constants().len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked_on_insert() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1]));
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Relation::new(1);
        assert!(r.insert(Tuple::ints(&[1])));
        assert!(
            !r.insert(Tuple::ints(&[1])),
            "set semantics: duplicate insert is a no-op"
        );
        assert!(r.contains(&Tuple::ints(&[1])));
        assert!(r.remove(&Tuple::ints(&[1])));
        assert!(!r.remove(&Tuple::ints(&[1])));
        assert!(r.is_empty());
    }

    #[test]
    fn complete_part_keeps_null_free_tuples() {
        let r = Relation::from_tuples(
            2,
            vec![
                Tuple::ints(&[1, 2]),
                Tuple::new(vec![Value::int(2), Value::null(0)]),
            ],
        );
        let c = r.complete_part();
        assert_eq!(c.len(), 1);
        assert!(c.contains(&Tuple::ints(&[1, 2])));
    }

    #[test]
    fn apply_valuation_can_merge_tuples() {
        // {(⊥0), (⊥1)} under ⊥0,⊥1 ↦ 5 collapses to {(5)}
        let r = Relation::from_tuples(
            1,
            vec![
                Tuple::new(vec![Value::null(0)]),
                Tuple::new(vec![Value::null(1)]),
            ],
        );
        let v = Valuation::from_pairs(vec![
            (NullId(0), Constant::Int(5)),
            (NullId(1), Constant::Int(5)),
        ]);
        let applied = r.apply(&v);
        assert_eq!(applied.len(), 1);
        assert!(applied.is_complete());
    }

    #[test]
    fn set_operations() {
        let a = Relation::from_tuples(1, vec![Tuple::ints(&[1]), Tuple::ints(&[2])]);
        let b = Relation::from_tuples(1, vec![Tuple::ints(&[2]), Tuple::ints(&[3])]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.difference(&b).len(), 1);
        assert_eq!(a.intersection(&b).len(), 1);
        assert!(a.intersection(&b).contains(&Tuple::ints(&[2])));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn from_iterator_infers_arity() {
        let r: Relation = vec![Tuple::ints(&[1, 2])].into_iter().collect();
        assert_eq!(r.arity(), 2);
        let empty: Relation = Vec::<Tuple>::new().into_iter().collect();
        assert_eq!(empty.arity(), 0);
    }

    #[test]
    fn display() {
        let r = Relation::from_tuples(1, vec![Tuple::ints(&[1]), Tuple::ints(&[2])]);
        assert_eq!(r.to_string(), "{(1), (2)}");
    }
}
