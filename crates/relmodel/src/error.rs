//! Error types for the relational model.

use std::fmt;

/// Errors raised when constructing or manipulating schemas, relations and
/// databases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A relation name was used that is not part of the schema.
    UnknownRelation(String),
    /// A tuple of the wrong arity was inserted into a relation.
    ArityMismatch {
        /// Relation involved.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A relation schema declared the same attribute twice.
    DuplicateAttribute {
        /// Relation involved.
        relation: String,
        /// The repeated attribute name.
        attribute: String,
    },
    /// Two schemas disagree on a relation during a merge.
    SchemaMismatch {
        /// Relation involved.
        relation: String,
    },
    /// An attribute name was referenced that the relation does not have.
    UnknownAttribute {
        /// Relation involved.
        relation: String,
        /// The missing attribute.
        attribute: String,
    },
    /// A valuation is not defined on a null that occurs in the database.
    IncompleteValuation {
        /// The null with no assigned constant.
        null: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            ModelError::ArityMismatch { relation, expected, actual } => write!(
                f,
                "arity mismatch for relation `{relation}`: schema declares {expected}, tuple has {actual}"
            ),
            ModelError::DuplicateAttribute { relation, attribute } => {
                write!(f, "relation `{relation}` declares attribute `{attribute}` more than once")
            }
            ModelError::SchemaMismatch { relation } => {
                write!(f, "schemas disagree on relation `{relation}`")
            }
            ModelError::UnknownAttribute { relation, attribute } => {
                write!(f, "relation `{relation}` has no attribute `{attribute}`")
            }
            ModelError::IncompleteValuation { null } => {
                write!(f, "valuation does not assign a constant to null ⊥{null}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("arity mismatch"));
        let e = ModelError::UnknownRelation("X".into());
        assert!(e.to_string().contains("`X`"));
        let e = ModelError::IncompleteValuation { null: 4 };
        assert!(e.to_string().contains("⊥4"));
    }
}
