//! Integrity constraints: primary keys, functional dependencies, and unary
//! denial constraints, declared against a [`Schema`].
//!
//! A database that violates its constraints denotes a *set* of worlds just
//! like an incomplete one does — namely its subset-minimal **repairs** — so
//! constraints are the second half of the "incomplete data" story: nulls
//! make single tuples uncertain, violations make the *membership* of tuples
//! uncertain. The `repairs` crate builds the conflict hypergraph and the
//! repair enumeration on top of the detection primitives here.
//!
//! ## Semantics over marked nulls
//!
//! Constraints are checked **syntactically** over naïve tables: a marked
//! null stands for itself (`⊥ᵢ = ⊥ᵢ`, `⊥ᵢ ≠ ⊥ⱼ` for `i ≠ j`, `⊥ᵢ ≠ c` for
//! every constant `c`). Two tuples violate a key when their key projections
//! are syntactically equal and the tuples are distinct; a unary denial
//! constraint fires only when the compared value is a *constant* satisfying
//! the comparison. This is the "certain violation under labelled-null
//! identity" reading: it keeps violation detection polynomial and makes
//! repairs of an incomplete database incomplete databases themselves, which
//! the certain-answer machinery then handles world-by-world.

use std::collections::BTreeMap;
use std::fmt;

use crate::database::Database;
use crate::error::ModelError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{Constant, Value};

/// Comparison operators usable in unary denial constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<` (by [`Constant`]'s order: integers before strings)
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CompareOp {
    /// Evaluates the comparison between two constants.
    pub fn eval(self, left: &Constant, right: &Constant) -> bool {
        match self {
            CompareOp::Eq => left == right,
            CompareOp::Neq => left != right,
            CompareOp::Lt => left < right,
            CompareOp::Le => left <= right,
            CompareOp::Gt => left > right,
            CompareOp::Ge => left >= right,
        }
    }

    /// The operator's symbol for display.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Neq => "≠",
            CompareOp::Lt => "<",
            CompareOp::Le => "≤",
            CompareOp::Gt => ">",
            CompareOp::Ge => "≥",
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An integrity constraint over one relation of a schema.
///
/// All three forms are *denial* constraints (they forbid patterns of tuples
/// rather than requiring new ones), so every inconsistent database has at
/// least one — and usually many — subset-repairs obtained by deletions only.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Constraint {
    /// Primary key: no two distinct tuples of `relation` may agree on all
    /// `columns` (attribute names).
    Key {
        /// Relation the key is declared on.
        relation: String,
        /// Key attributes.
        columns: Vec<String>,
    },
    /// Functional dependency `lhs → rhs`: any two tuples agreeing on `lhs`
    /// must agree on `rhs`.
    FunctionalDependency {
        /// Relation the dependency is declared on.
        relation: String,
        /// Determinant attributes.
        lhs: Vec<String>,
        /// Dependent attributes.
        rhs: Vec<String>,
    },
    /// Unary denial constraint: no tuple of `relation` may have a constant
    /// in `column` for which `column op value` holds. (Nulls never fire a
    /// denial constraint — see the module docs.)
    Denial {
        /// Relation the constraint is declared on.
        relation: String,
        /// The constrained attribute.
        column: String,
        /// Comparison against the literal.
        op: CompareOp,
        /// The forbidden comparison literal.
        value: Constant,
    },
}

impl Constraint {
    /// The relation the constraint is declared on.
    pub fn relation(&self) -> &str {
        match self {
            Constraint::Key { relation, .. }
            | Constraint::FunctionalDependency { relation, .. }
            | Constraint::Denial { relation, .. } => relation,
        }
    }

    /// Validates the constraint against a schema: the relation must exist
    /// and every referenced attribute must be one of its attributes.
    pub fn validate(&self, schema: &Schema) -> Result<(), ModelError> {
        let rel = schema.require(self.relation())?;
        let check = |attrs: &[String]| -> Result<(), ModelError> {
            for a in attrs {
                if rel.attribute_index(a).is_none() {
                    return Err(ModelError::UnknownAttribute {
                        relation: rel.name.clone(),
                        attribute: a.clone(),
                    });
                }
            }
            Ok(())
        };
        match self {
            Constraint::Key { columns, .. } => check(columns),
            Constraint::FunctionalDependency { lhs, rhs, .. } => {
                check(lhs)?;
                check(rhs)
            }
            Constraint::Denial { column, .. } => check(std::slice::from_ref(column)),
        }
    }

    /// Does the pair / single tuple pattern the constraint forbids involve
    /// two tuples (keys, FDs) or one (denial)?
    pub fn is_binary(&self) -> bool {
        !matches!(self, Constraint::Denial { .. })
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Key { relation, columns } => {
                write!(f, "key {relation}({})", columns.join(", "))
            }
            Constraint::FunctionalDependency { relation, lhs, rhs } => {
                write!(f, "fd {relation}: {} → {}", lhs.join(", "), rhs.join(", "))
            }
            Constraint::Denial {
                relation,
                column,
                op,
                value,
            } => write!(f, "deny {relation}.{column} {op} {value}"),
        }
    }
}

/// One witnessed constraint violation: the constraint, the relation, and the
/// one (denial) or two (key / FD) tuples that jointly violate it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// The violated constraint.
    pub constraint: Constraint,
    /// The relation the witnesses live in.
    pub relation: String,
    /// The witnessing tuples: one for denial constraints, two for keys and
    /// functional dependencies.
    pub tuples: Vec<Tuple>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} violated by", self.constraint)?;
        for t in &self.tuples {
            write!(f, " {t}")?;
        }
        Ok(())
    }
}

/// Resolves attribute names to column indexes; the constraint is assumed
/// validated (the checked [`Schema`] mutators guarantee it).
fn indexes(schema: &Schema, relation: &str, attrs: &[String]) -> Vec<usize> {
    let rel = schema
        .relation(relation)
        .expect("constraints are validated against the schema");
    attrs
        .iter()
        .map(|a| {
            rel.attribute_index(a)
                .expect("constraints are validated against the schema")
        })
        .collect()
}

/// All violations of `constraint` in `db`, as witness tuples. Key and FD
/// violations are reported pairwise (a key group of `k` tuples yields
/// `k·(k−1)/2` violations), in the tuples' natural order.
pub fn violations_of(constraint: &Constraint, db: &Database) -> Vec<Violation> {
    let Some(rel) = db.relation(constraint.relation()) else {
        return Vec::new();
    };
    let schema = db.schema();
    let mut out = Vec::new();
    match constraint {
        Constraint::Key { relation, columns } => {
            let cols = indexes(schema, relation, columns);
            for group in key_groups(rel.iter(), &cols).values() {
                for (i, a) in group.iter().enumerate() {
                    for b in &group[i + 1..] {
                        out.push(Violation {
                            constraint: constraint.clone(),
                            relation: relation.clone(),
                            tuples: vec![(*a).clone(), (*b).clone()],
                        });
                    }
                }
            }
        }
        Constraint::FunctionalDependency { relation, lhs, rhs } => {
            let lhs_cols = indexes(schema, relation, lhs);
            let rhs_cols = indexes(schema, relation, rhs);
            for group in key_groups(rel.iter(), &lhs_cols).values() {
                for (i, a) in group.iter().enumerate() {
                    for b in &group[i + 1..] {
                        if a.key(&rhs_cols) != b.key(&rhs_cols) {
                            out.push(Violation {
                                constraint: constraint.clone(),
                                relation: relation.clone(),
                                tuples: vec![(*a).clone(), (*b).clone()],
                            });
                        }
                    }
                }
            }
        }
        Constraint::Denial {
            relation,
            column,
            op,
            value,
        } => {
            let col = indexes(schema, relation, std::slice::from_ref(column))[0];
            for t in rel.iter() {
                if denies(t, col, *op, value) {
                    out.push(Violation {
                        constraint: constraint.clone(),
                        relation: relation.clone(),
                        tuples: vec![t.clone()],
                    });
                }
            }
        }
    }
    out
}

/// Does the tuple violate the denial comparison? Nulls never do (the
/// violation would not be syntactically certain).
pub(crate) fn denies(tuple: &Tuple, col: usize, op: CompareOp, value: &Constant) -> bool {
    match tuple.get(col) {
        Some(Value::Const(c)) => op.eval(c, value),
        _ => false,
    }
}

/// Groups tuples by their (syntactic) projection onto `cols`.
fn key_groups<'a>(
    tuples: impl Iterator<Item = &'a Tuple>,
    cols: &[usize],
) -> BTreeMap<Vec<Value>, Vec<&'a Tuple>> {
    let mut groups: BTreeMap<Vec<Value>, Vec<&'a Tuple>> = BTreeMap::new();
    for t in tuples {
        groups.entry(t.key(cols)).or_default().push(t);
    }
    groups
}

/// Does `db` violate `constraint` anywhere? Early-exits on the first
/// witness instead of materializing them all.
pub fn violates(constraint: &Constraint, db: &Database) -> bool {
    let Some(rel) = db.relation(constraint.relation()) else {
        return false;
    };
    let schema = db.schema();
    match constraint {
        Constraint::Key { relation, columns } => {
            let cols = indexes(schema, relation, columns);
            key_groups(rel.iter(), &cols).values().any(|g| g.len() >= 2)
        }
        Constraint::FunctionalDependency { relation, lhs, rhs } => {
            let lhs_cols = indexes(schema, relation, lhs);
            let rhs_cols = indexes(schema, relation, rhs);
            key_groups(rel.iter(), &lhs_cols)
                .values()
                .any(|g| g.iter().any(|t| t.key(&rhs_cols) != g[0].key(&rhs_cols)))
        }
        Constraint::Denial {
            relation,
            column,
            op,
            value,
        } => {
            let col = indexes(schema, relation, std::slice::from_ref(column))[0];
            rel.iter().any(|t| denies(t, col, *op, value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatabaseBuilder;
    use crate::schema::Schema;

    fn keyed_db() -> Database {
        let mut db = DatabaseBuilder::new()
            .relation("R", &["k", "v"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 30])
            .build();
        let schema = db.schema().clone();
        let mut with = schema;
        with.add_constraint(Constraint::Key {
            relation: "R".into(),
            columns: vec!["k".into()],
        })
        .unwrap();
        db = rebuild(db, with);
        db
    }

    /// Rebuilds a database over a schema with constraints added.
    fn rebuild(db: Database, schema: Schema) -> Database {
        let mut out = Database::new(schema);
        for (name, rel) in db.iter() {
            for t in rel.iter() {
                out.insert(name, t.clone()).unwrap();
            }
        }
        out
    }

    #[test]
    fn key_violations_are_pairwise() {
        let db = keyed_db();
        let vs = db.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].tuples.len(), 2);
        assert!(!db.is_consistent());
    }

    #[test]
    fn fd_agreeing_rhs_is_not_a_violation() {
        let schema = {
            let mut s = Schema::builder().relation("T", &["a", "b", "c"]).build();
            s.add_constraint(Constraint::FunctionalDependency {
                relation: "T".into(),
                lhs: vec!["a".into()],
                rhs: vec!["b".into()],
            })
            .unwrap();
            s
        };
        let mut db = Database::new(schema);
        db.insert("T", Tuple::ints(&[1, 5, 100])).unwrap();
        db.insert("T", Tuple::ints(&[1, 5, 200])).unwrap(); // same b: fine
        assert!(db.is_consistent());
        db.insert("T", Tuple::ints(&[1, 6, 300])).unwrap(); // b differs: violation
        assert!(!db.is_consistent());
        assert_eq!(db.violations().len(), 2, "(1,5,*) × (1,6,300) pairs");
    }

    #[test]
    fn denial_fires_on_constants_only() {
        let schema = {
            let mut s = Schema::builder().relation("S", &["a"]).build();
            s.add_constraint(Constraint::Denial {
                relation: "S".into(),
                column: "a".into(),
                op: CompareOp::Ge,
                value: Constant::Int(100),
            })
            .unwrap();
            s
        };
        let mut db = Database::new(schema);
        db.insert("S", Tuple::ints(&[5])).unwrap();
        db.insert("S", Tuple::new(vec![Value::null(0)])).unwrap();
        assert!(db.is_consistent(), "a null never certainly violates");
        db.insert("S", Tuple::ints(&[100])).unwrap();
        let vs = db.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].tuples[0], Tuple::ints(&[100]));
    }

    #[test]
    fn nulls_are_syntactic_in_keys() {
        let schema = {
            let mut s = Schema::builder().relation("R", &["k", "v"]).build();
            s.add_constraint(Constraint::Key {
                relation: "R".into(),
                columns: vec!["k".into()],
            })
            .unwrap();
            s
        };
        let mut db = Database::new(schema);
        // Same null key ⊥0 twice: a syntactic key violation.
        db.insert("R", Tuple::new(vec![Value::null(0), Value::int(1)]))
            .unwrap();
        db.insert("R", Tuple::new(vec![Value::null(0), Value::int(2)]))
            .unwrap();
        // Different nulls: no *certain* violation.
        db.insert("R", Tuple::new(vec![Value::null(1), Value::int(3)]))
            .unwrap();
        let vs = db.violations();
        assert_eq!(vs.len(), 1);
        assert!(vs[0].tuples.iter().all(|t| !t.is_complete()));
    }

    #[test]
    fn validation_rejects_unknown_relations_and_attributes() {
        let schema = Schema::builder().relation("R", &["a"]).build();
        let bad_rel = Constraint::Key {
            relation: "Nope".into(),
            columns: vec!["a".into()],
        };
        assert!(matches!(
            bad_rel.validate(&schema),
            Err(ModelError::UnknownRelation(_))
        ));
        let bad_attr = Constraint::FunctionalDependency {
            relation: "R".into(),
            lhs: vec!["a".into()],
            rhs: vec!["z".into()],
        };
        assert!(matches!(
            bad_attr.validate(&schema),
            Err(ModelError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn display_is_readable() {
        let key = Constraint::Key {
            relation: "R".into(),
            columns: vec!["k".into()],
        };
        assert_eq!(key.to_string(), "key R(k)");
        let fd = Constraint::FunctionalDependency {
            relation: "T".into(),
            lhs: vec!["a".into()],
            rhs: vec!["b".into()],
        };
        assert_eq!(fd.to_string(), "fd T: a → b");
        let deny = Constraint::Denial {
            relation: "S".into(),
            column: "a".into(),
            op: CompareOp::Eq,
            value: Constant::Int(0),
        };
        assert_eq!(deny.to_string(), "deny S.a = 0");
    }
}
