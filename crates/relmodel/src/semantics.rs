//! Possible-world semantics of incomplete databases: OWA and CWA.
//!
//! The semantics `[[D]]` of an incomplete database `D` is the set of complete
//! databases it represents:
//!
//! * `[[D]]_cwa = { v(D) | v : Null(D) → Const }` — closed world;
//! * `[[D]]_owa = { D' complete | D' ⊇ v(D) for some valuation v }` — open
//!   world.
//!
//! Both sets are infinite because `Const` is. For *generic* queries it
//! suffices to range over valuations into a finite domain containing the
//! constants of interest plus enough fresh constants, and (for OWA) to bound
//! the number of extra tuples added.
//!
//! Worlds are produced by [`WorldIter`], a **streaming** iterator: it yields
//! one world at a time instead of materializing the whole (exponential) set,
//! so consumers that fold over worlds — the certain-answer intersection in
//! particular — keep O(1) worlds in memory and can stop early. Deduplication
//! of worlds is **structural** (`Ord`/`Eq` on [`Database`]), never textual:
//! `Constant::Str("1")` and `Constant::Int(1)` render identically but are
//! distinct values, and a stringly key would silently merge distinct worlds
//! (and corrupt any ground truth computed from them).
//!
//! [`enumerate_cwa_worlds`] and [`enumerate_owa_worlds`] are the materializing
//! conveniences built on top, retained for tests and examples that genuinely
//! want the full set.

use std::collections::BTreeSet;

use crate::database::Database;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::valuation::{domain_with_fresh, Valuation, ValuationEnumerator};
use crate::value::{Constant, Value};

/// Which semantics of incompleteness is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Semantics {
    /// Open-world assumption: nulls are instantiated and new tuples may be
    /// added.
    Owa,
    /// Closed-world assumption: nulls are instantiated, nothing is added.
    Cwa,
}

impl Semantics {
    /// A short lowercase name (`"owa"` / `"cwa"`), useful in reports.
    pub fn name(self) -> &'static str {
        match self {
            Semantics::Owa => "owa",
            Semantics::Cwa => "cwa",
        }
    }
}

impl std::fmt::Display for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Returns a finite constant domain adequate for generic-query certain-answer
/// computation over `db`: the constants of `db`, the supplied extra constants
/// (e.g. constants mentioned by the query), plus `fresh` fresh constants.
///
/// For a generic query `Q` and database `D`, two valuations that agree up to a
/// renaming of constants outside `Const(D) ∪ Const(Q)` produce isomorphic
/// answers, so it is enough to have as many fresh constants as there are nulls
/// (allowing all nulls to be pairwise distinct and distinct from every named
/// constant).
pub fn adequate_domain(
    db: &Database,
    query_constants: &BTreeSet<Constant>,
    fresh: usize,
) -> Vec<Constant> {
    let mut base = db.constants();
    base.extend(query_constants.iter().cloned());
    domain_with_fresh(&base, fresh)
}

/// A streaming iterator over the possible worlds of an incomplete database.
///
/// Worlds are produced one at a time — the full set is exponential in the
/// number of nulls and is never materialized here. Under CWA each valuation
/// of the nulls yields the world `v(D)`; under OWA each such world is further
/// extended with every subset of at most `max_extra` complete candidate
/// tuples over the domain.
///
/// Deduplication (on by default) is structural: a `BTreeSet<Database>` of
/// worlds already yielded, compared by `Ord`/`Eq` — **not** by display
/// strings, which conflate `Constant::Str("1")` with `Constant::Int(1)`.
/// The dedup set grows with the number of *distinct* worlds; consumers whose
/// fold is idempotent under duplicates (intersection, union) should switch it
/// off with [`WorldIter::without_dedup`] to keep memory at O(1) worlds —
/// that is what the streaming certain-answer engine does.
#[derive(Debug, Clone)]
pub struct WorldIter<'a> {
    db: &'a Database,
    domain: Vec<Constant>,
    valuations: ValuationEnumerator,
    /// OWA extension state: candidate tuples and the per-world bound.
    owa: Option<OwaExpansion>,
    /// The base world currently being extended, with the subset cursor.
    current: Option<(Database, BoundedSubsetIter)>,
    /// Structural dedup of yielded worlds; `None` when disabled.
    seen: Option<BTreeSet<Database>>,
    /// Structural dedup of OWA *base* worlds (populated only when both OWA
    /// expansion and dedup are active): a duplicate base world would only
    /// regenerate extensions the main `seen` set rejects one by one, so it
    /// is cheaper to skip the whole expansion up front.
    seen_bases: Option<BTreeSet<Database>>,
}

#[derive(Debug, Clone)]
struct OwaExpansion {
    candidates: Vec<(String, Tuple)>,
    max_extra: usize,
}

impl<'a> WorldIter<'a> {
    /// Streams the worlds of `db` under the given semantics; `max_extra` is
    /// the OWA extension bound (ignored under CWA).
    pub fn new(
        db: &'a Database,
        domain: &[Constant],
        semantics: Semantics,
        max_extra: usize,
    ) -> Self {
        let owa = match semantics {
            Semantics::Owa if max_extra > 0 => Some(OwaExpansion {
                candidates: all_complete_tuples(db, domain),
                max_extra,
            }),
            _ => None,
        };
        let seen_bases = owa.as_ref().map(|_| BTreeSet::new());
        WorldIter {
            db,
            domain: domain.to_vec(),
            valuations: ValuationEnumerator::new(db.null_ids(), domain.to_vec()),
            owa,
            current: None,
            seen: Some(BTreeSet::new()),
            seen_bases,
        }
    }

    /// Streams the CWA worlds `v(D)` over the domain.
    pub fn cwa(db: &'a Database, domain: &[Constant]) -> Self {
        WorldIter::new(db, domain, Semantics::Cwa, 0)
    }

    /// Streams the bounded OWA worlds: every CWA world extended with at most
    /// `max_extra` extra complete tuples over the domain.
    pub fn owa(db: &'a Database, domain: &[Constant], max_extra: usize) -> Self {
        WorldIter::new(db, domain, Semantics::Owa, max_extra)
    }

    /// Disables structural deduplication. Distinct valuations that collapse
    /// to the same world are then yielded repeatedly, but memory stays at
    /// O(1) worlds — the right trade for idempotent folds (∩, ∪).
    pub fn without_dedup(mut self) -> Self {
        self.seen = None;
        self.seen_bases = None;
        self
    }

    /// Restricts the iterator to the valuations in `[start, end)` of the
    /// enumeration order. Contiguous ranges partition the valuation space
    /// exactly, which is how the streaming engine shards worlds across
    /// threads. (Under OWA, every extension of the in-range base worlds is
    /// still produced.)
    pub fn valuation_range(mut self, start: u128, end: u128) -> Self {
        self.valuations =
            ValuationEnumerator::with_range(self.db.null_ids(), self.domain.clone(), start, end);
        self
    }

    /// Total number of base valuations in the (unsharded) space:
    /// `|domain|^|nulls|`.
    pub fn valuation_space(&self) -> u128 {
        self.valuations.count_total()
    }

    fn admit(&mut self, world: Database) -> Option<Database> {
        match &mut self.seen {
            Some(seen) => {
                if seen.contains(&world) {
                    None
                } else {
                    seen.insert(world.clone());
                    Some(world)
                }
            }
            None => Some(world),
        }
    }
}

impl Iterator for WorldIter<'_> {
    type Item = Database;

    fn next(&mut self) -> Option<Database> {
        loop {
            // Drain extensions of the current base world first (OWA only).
            if let Some((base, subsets)) = self.current.as_mut() {
                match subsets.next() {
                    Some(indices) => {
                        let owa = self.owa.as_ref().expect("current implies OWA expansion");
                        let mut extended = base.clone();
                        for &i in &indices {
                            let (rel, tuple) = &owa.candidates[i];
                            extended
                                .insert(rel, tuple.clone())
                                .expect("candidate tuples respect the schema");
                        }
                        if let Some(w) = self.admit(extended) {
                            return Some(w);
                        }
                        continue;
                    }
                    None => self.current = None,
                }
            }
            let v = self.valuations.next()?;
            let world = self
                .db
                .apply(&v)
                .expect("enumerator covers all nulls of the database");
            match &self.owa {
                Some(owa) => {
                    if let Some(bases) = &mut self.seen_bases {
                        if !bases.insert(world.clone()) {
                            continue; // extensions of a duplicate base are all duplicates
                        }
                    }
                    let subsets = BoundedSubsetIter::new(owa.candidates.len(), owa.max_extra);
                    self.current = Some((world, subsets));
                }
                None => {
                    if let Some(w) = self.admit(world) {
                        return Some(w);
                    }
                }
            }
        }
    }
}

/// Enumerates all CWA possible worlds `v(D)` with valuations ranging over the
/// given constant domain, **materialized** into a vector.
///
/// The number of valuations is `|domain|^|nulls|`; distinct valuations may
/// yield equal worlds, which are deduplicated structurally. Intended for
/// tests and small examples — streaming consumers should use [`WorldIter`]
/// directly.
pub fn enumerate_cwa_worlds(db: &Database, domain: &[Constant]) -> Vec<Database> {
    WorldIter::cwa(db, domain).collect()
}

/// Enumerates valuations of `db`'s nulls over the given domain, returning the
/// valuation together with the induced world. (Worlds are *not* deduplicated,
/// so the pairing with valuations is exact.)
pub fn enumerate_cwa_valuations(db: &Database, domain: &[Constant]) -> Vec<(Valuation, Database)> {
    ValuationEnumerator::new(db.null_ids(), domain.to_vec())
        .map(|v| {
            let world = db.apply(&v).expect("enumerator covers all nulls");
            (v, world)
        })
        .collect()
}

/// Enumerates a *bounded* fragment of the OWA possible worlds, materialized:
/// every CWA world extended with at most `max_extra` additional complete
/// tuples drawn from the given constant domain.
///
/// The full OWA semantics is infinite; for monotone (positive) queries, the
/// certain answer over this bounded fragment coincides with the certain answer
/// over the full semantics because adding tuples can only grow the answer, so
/// the intersection is attained at the minimal worlds `v(D)` (i.e.
/// `max_extra = 0` already suffices). The bound exists so tests can also probe
/// *non-monotone* queries and exhibit their failures.
pub fn enumerate_owa_worlds(db: &Database, domain: &[Constant], max_extra: usize) -> Vec<Database> {
    WorldIter::owa(db, domain, max_extra).collect()
}

/// All complete tuples over the domain, for every relation of the schema,
/// tagged with the relation name — the OWA extension candidates [`WorldIter`]
/// draws bounded subsets from. Public so batched enumeration folds can mirror
/// the exact candidate order without instantiating the iterator's databases.
/// Exponential in the arity; intended for tiny schemas/domains.
pub fn all_complete_tuples(db: &Database, domain: &[Constant]) -> Vec<(String, Tuple)> {
    let mut out = Vec::new();
    for rs in db.schema().iter() {
        let arity = rs.arity();
        let mut counters = vec![0usize; arity];
        if domain.is_empty() && arity > 0 {
            continue;
        }
        loop {
            let tuple: Tuple = counters
                .iter()
                .map(|&i| Value::Const(domain[i].clone()))
                .collect();
            out.push((rs.name.clone(), tuple));
            // advance
            let mut i = 0;
            loop {
                if i == arity {
                    break;
                }
                counters[i] += 1;
                if counters[i] < domain.len() {
                    break;
                }
                counters[i] = 0;
                i += 1;
            }
            if arity == 0 || counters.iter().all(|&c| c == 0) {
                break;
            }
        }
        if arity == 0 {
            // a 0-ary relation has exactly one possible tuple, already pushed
            continue;
        }
    }
    out
}

/// Lazily enumerates the index sets of all subsets of `{0, …, n-1}` of size
/// at most `k`, in the same order the old recursive enumeration used (empty
/// set first, then lexicographic extension). O(k) state — nothing is
/// materialized.
#[derive(Debug, Clone)]
pub struct BoundedSubsetIter {
    n: usize,
    k: usize,
    stack: Vec<usize>,
    started: bool,
    done: bool,
}

impl BoundedSubsetIter {
    /// Subsets of `{0, …, n-1}` with at most `k` elements.
    pub fn new(n: usize, k: usize) -> Self {
        BoundedSubsetIter {
            n,
            k,
            stack: Vec::new(),
            started: false,
            done: false,
        }
    }
}

impl Iterator for BoundedSubsetIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(Vec::new()); // the empty subset
        }
        // Extend the current subset if allowed, otherwise backtrack and
        // advance the deepest extensible element.
        let next_candidate = self.stack.last().map_or(0, |&top| top + 1);
        if self.stack.len() < self.k && next_candidate < self.n {
            self.stack.push(next_candidate);
            return Some(self.stack.clone());
        }
        while let Some(top) = self.stack.pop() {
            if top + 1 < self.n {
                self.stack.push(top + 1);
                return Some(self.stack.clone());
            }
        }
        self.done = true;
        None
    }
}

/// All subsets of `items` of size at most `k` (including the empty subset),
/// materialized. Kept for tests; streaming consumers use
/// [`BoundedSubsetIter`].
pub fn bounded_subsets<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    BoundedSubsetIter::new(items.len(), k)
        .map(|indices| indices.iter().map(|&i| items[i].clone()).collect())
        .collect()
}

/// Intersects the instances of a named relation across a set of complete
/// databases — the classical intersection-based certain answer for the
/// identity query on that relation.
pub fn intersect_relation(worlds: &[Database], relation: &str) -> Option<Relation> {
    let mut iter = worlds.iter();
    let first = iter.next()?.relation(relation)?.clone();
    Some(iter.fold(first, |acc, w| match w.relation(relation) {
        Some(r) => acc.intersection(r),
        None => Relation::new(acc.arity()),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn single_null_db() -> Database {
        let schema = Schema::builder().relation("S", &["a"]).build();
        let mut db = Database::new(schema);
        db.insert("S", Tuple::new(vec![Value::null(0)])).unwrap();
        db
    }

    #[test]
    fn adequate_domain_contains_db_query_and_fresh() {
        let db = single_null_db();
        let qc: BTreeSet<Constant> = vec![Constant::Int(9)].into_iter().collect();
        let d = adequate_domain(&db, &qc, 2);
        assert!(d.contains(&Constant::Int(9)));
        assert_eq!(d.len(), 3); // no db constants, one query constant, two fresh
    }

    #[test]
    fn cwa_worlds_of_single_null() {
        let db = single_null_db();
        let domain = vec![Constant::Int(1), Constant::Int(2)];
        let worlds = enumerate_cwa_worlds(&db, &domain);
        assert_eq!(worlds.len(), 2);
        for w in &worlds {
            assert!(w.is_complete());
            assert_eq!(w.relation("S").unwrap().len(), 1);
        }
    }

    #[test]
    fn cwa_worlds_merge_tuples_when_nulls_collide() {
        // R = {(⊥0), (⊥1)}: when both nulls map to the same constant the world
        // has a single tuple.
        let schema = Schema::builder().relation("R", &["a"]).build();
        let mut db = Database::new(schema);
        db.insert("R", Tuple::new(vec![Value::null(0)])).unwrap();
        db.insert("R", Tuple::new(vec![Value::null(1)])).unwrap();
        let domain = vec![Constant::Int(1), Constant::Int(2)];
        let worlds = enumerate_cwa_worlds(&db, &domain);
        // 4 valuations, but (1,1) and (2,2) give singleton worlds, (1,2) and (2,1)
        // give the same two-tuple world => 3 distinct worlds.
        assert_eq!(worlds.len(), 3);
        assert!(worlds.iter().any(|w| w.relation("R").unwrap().len() == 1));
        assert!(worlds.iter().any(|w| w.relation("R").unwrap().len() == 2));
    }

    #[test]
    fn dedup_is_structural_not_textual() {
        // Regression: ⊥0 can be valued to Constant::Int(1) or
        // Constant::Str("1"), which *display* identically ("1"). A stringly
        // dedup key merges the two worlds and corrupts any certain answer
        // computed from the enumeration; structural dedup must keep both.
        let schema = Schema::builder().relation("R", &["a"]).build();
        let mut db = Database::new(schema);
        db.insert("R", Tuple::new(vec![Value::null(0)])).unwrap();
        let domain = vec![Constant::Int(1), Constant::Str("1".into())];
        let worlds = enumerate_cwa_worlds(&db, &domain);
        assert_eq!(
            worlds.len(),
            2,
            "Int(1) and Str(\"1\") worlds display identically but are distinct"
        );
        // The two worlds really do render to the same string — the exact trap
        // the old `to_string()` key fell into.
        assert_eq!(worlds[0].to_string(), worlds[1].to_string());
        assert_ne!(worlds[0], worlds[1]);
        // And the intersection over the *correct* world set is empty: no
        // single value is certain for ⊥0.
        let certain = intersect_relation(&worlds, "R").unwrap();
        assert!(certain.is_empty());
    }

    #[test]
    fn cwa_valuations_keep_duplicates() {
        let db = single_null_db();
        let domain = vec![Constant::Int(1), Constant::Int(2), Constant::Int(3)];
        assert_eq!(enumerate_cwa_valuations(&db, &domain).len(), 3);
    }

    #[test]
    fn world_iter_without_dedup_yields_every_valuation() {
        // Two nulls over one constant-rich domain: 4 valuations collapse to 3
        // distinct worlds; the raw stream must still yield all 4.
        let schema = Schema::builder().relation("R", &["a"]).build();
        let mut db = Database::new(schema);
        db.insert("R", Tuple::new(vec![Value::null(0)])).unwrap();
        db.insert("R", Tuple::new(vec![Value::null(1)])).unwrap();
        let domain = vec![Constant::Int(1), Constant::Int(2)];
        assert_eq!(WorldIter::cwa(&db, &domain).count(), 3);
        assert_eq!(WorldIter::cwa(&db, &domain).without_dedup().count(), 4);
    }

    #[test]
    fn world_iter_ranges_partition_the_space() {
        let schema = Schema::builder().relation("R", &["a", "b"]).build();
        let mut db = Database::new(schema);
        db.insert("R", Tuple::new(vec![Value::null(0), Value::null(1)]))
            .unwrap();
        let domain = vec![Constant::Int(1), Constant::Int(2), Constant::Int(3)];
        let full: Vec<Database> = WorldIter::cwa(&db, &domain).without_dedup().collect();
        assert_eq!(full.len(), 9);
        let mut sharded: Vec<Database> = Vec::new();
        for (start, end) in [(0u128, 4u128), (4, 8), (8, 9)] {
            sharded.extend(
                WorldIter::cwa(&db, &domain)
                    .without_dedup()
                    .valuation_range(start, end),
            );
        }
        assert_eq!(sharded, full, "contiguous shards must partition the space");
    }

    #[test]
    fn owa_worlds_extend_cwa_worlds() {
        let db = single_null_db();
        let domain = vec![Constant::Int(1), Constant::Int(2)];
        let cwa = enumerate_cwa_worlds(&db, &domain);
        let owa = enumerate_owa_worlds(&db, &domain, 1);
        assert!(owa.len() > cwa.len());
        // every OWA world contains some CWA world
        for w in &owa {
            assert!(cwa.iter().any(|c| c.is_subinstance_of(w)));
        }
        // max_extra = 0 coincides with CWA enumeration
        assert_eq!(enumerate_owa_worlds(&db, &domain, 0).len(), cwa.len());
    }

    #[test]
    fn intersect_relation_computes_certain_tuples() {
        // R = {(1), (⊥0)} under CWA over {1,2}: worlds {(1)}, {(1),(2)}.
        // Intersection = {(1)}.
        let schema = Schema::builder().relation("R", &["a"]).build();
        let mut db = Database::new(schema);
        db.insert("R", Tuple::ints(&[1])).unwrap();
        db.insert("R", Tuple::new(vec![Value::null(0)])).unwrap();
        let worlds = enumerate_cwa_worlds(&db, &[Constant::Int(1), Constant::Int(2)]);
        let certain = intersect_relation(&worlds, "R").unwrap();
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&Tuple::ints(&[1])));
    }

    #[test]
    fn bounded_subsets_counts() {
        let items = vec![1, 2, 3];
        assert_eq!(bounded_subsets(&items, 0).len(), 1);
        assert_eq!(bounded_subsets(&items, 1).len(), 4);
        assert_eq!(bounded_subsets(&items, 2).len(), 7);
        assert_eq!(bounded_subsets(&items, 3).len(), 8);
    }

    #[test]
    fn bounded_subset_iter_streams_all_subsets() {
        let subsets: Vec<Vec<usize>> = BoundedSubsetIter::new(4, 2).collect();
        assert_eq!(subsets.len(), 1 + 4 + 6); // ∅, singletons, pairs
        assert_eq!(subsets[0], Vec::<usize>::new());
        let unique: BTreeSet<Vec<usize>> = subsets.iter().cloned().collect();
        assert_eq!(unique.len(), subsets.len(), "no subset repeats");
        for s in &subsets {
            assert!(s.len() <= 2);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "indices are ascending");
        }
        // Degenerate cases.
        assert_eq!(BoundedSubsetIter::new(0, 3).count(), 1);
        assert_eq!(BoundedSubsetIter::new(3, 0).count(), 1);
    }

    #[test]
    fn semantics_display() {
        assert_eq!(Semantics::Owa.to_string(), "owa");
        assert_eq!(Semantics::Cwa.name(), "cwa");
    }
}
