//! Possible-world semantics of incomplete databases: OWA and CWA.
//!
//! The semantics `[[D]]` of an incomplete database `D` is the set of complete
//! databases it represents:
//!
//! * `[[D]]_cwa = { v(D) | v : Null(D) → Const }` — closed world;
//! * `[[D]]_owa = { D' complete | D' ⊇ v(D) for some valuation v }` — open
//!   world.
//!
//! Both sets are infinite because `Const` is. For *generic* queries it
//! suffices to range over valuations into a finite domain containing the
//! constants of interest plus enough fresh constants, and (for OWA) to bound
//! the number of extra tuples added. [`enumerate_cwa_worlds`] and
//! [`enumerate_owa_worlds`] implement exactly that; they are the ground truth
//! used to validate naïve evaluation in the benchmarks and property tests.

use std::collections::BTreeSet;

use crate::database::Database;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::valuation::{domain_with_fresh, Valuation, ValuationEnumerator};
use crate::value::{Constant, Value};

/// Which semantics of incompleteness is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Semantics {
    /// Open-world assumption: nulls are instantiated and new tuples may be
    /// added.
    Owa,
    /// Closed-world assumption: nulls are instantiated, nothing is added.
    Cwa,
}

impl Semantics {
    /// A short lowercase name (`"owa"` / `"cwa"`), useful in reports.
    pub fn name(self) -> &'static str {
        match self {
            Semantics::Owa => "owa",
            Semantics::Cwa => "cwa",
        }
    }
}

impl std::fmt::Display for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Returns a finite constant domain adequate for generic-query certain-answer
/// computation over `db`: the constants of `db`, the supplied extra constants
/// (e.g. constants mentioned by the query), plus `fresh` fresh constants.
///
/// For a generic query `Q` and database `D`, two valuations that agree up to a
/// renaming of constants outside `Const(D) ∪ Const(Q)` produce isomorphic
/// answers, so it is enough to have as many fresh constants as there are nulls
/// (allowing all nulls to be pairwise distinct and distinct from every named
/// constant).
pub fn adequate_domain(
    db: &Database,
    query_constants: &BTreeSet<Constant>,
    fresh: usize,
) -> Vec<Constant> {
    let mut base = db.constants();
    base.extend(query_constants.iter().cloned());
    domain_with_fresh(&base, fresh)
}

/// Enumerates all CWA possible worlds `v(D)` with valuations ranging over the
/// given constant domain.
///
/// The number of worlds is `|domain|^|Null(D)|`; distinct valuations may yield
/// equal worlds, which are deduplicated.
pub fn enumerate_cwa_worlds(db: &Database, domain: &[Constant]) -> Vec<Database> {
    let mut out: Vec<Database> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for v in ValuationEnumerator::new(db.null_ids(), domain.to_vec()) {
        let world = db
            .apply(&v)
            .expect("enumerator covers all nulls of the database");
        let key = world.to_string();
        if seen.insert(key) {
            out.push(world);
        }
    }
    out
}

/// Enumerates valuations of `db`'s nulls over the given domain, returning the
/// valuation together with the induced world. (Worlds are *not* deduplicated,
/// so the pairing with valuations is exact.)
pub fn enumerate_cwa_valuations(db: &Database, domain: &[Constant]) -> Vec<(Valuation, Database)> {
    ValuationEnumerator::new(db.null_ids(), domain.to_vec())
        .map(|v| {
            let world = db.apply(&v).expect("enumerator covers all nulls");
            (v, world)
        })
        .collect()
}

/// Enumerates a *bounded* fragment of the OWA possible worlds: every CWA world
/// extended with at most `max_extra` additional complete tuples drawn from the
/// given constant domain.
///
/// The full OWA semantics is infinite; for monotone (positive) queries, the
/// certain answer over this bounded fragment coincides with the certain answer
/// over the full semantics because adding tuples can only grow the answer, so
/// the intersection is attained at the minimal worlds `v(D)` (i.e.
/// `max_extra = 0` already suffices). The bound exists so tests can also probe
/// *non-monotone* queries and exhibit their failures.
pub fn enumerate_owa_worlds(db: &Database, domain: &[Constant], max_extra: usize) -> Vec<Database> {
    let base_worlds = enumerate_cwa_worlds(db, domain);
    if max_extra == 0 {
        return base_worlds;
    }
    let candidate_tuples = all_complete_tuples(db, domain);
    let mut out: Vec<Database> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for world in &base_worlds {
        for subset in bounded_subsets(&candidate_tuples, max_extra) {
            let mut extended = world.clone();
            for (rel, tuple) in subset {
                extended
                    .insert(&rel, tuple)
                    .expect("candidate tuples respect the schema");
            }
            let key = extended.to_string();
            if seen.insert(key) {
                out.push(extended);
            }
        }
    }
    out
}

/// All complete tuples over the domain, for every relation of the schema,
/// tagged with the relation name. Exponential in the arity; intended for tiny
/// schemas/domains in tests.
fn all_complete_tuples(db: &Database, domain: &[Constant]) -> Vec<(String, Tuple)> {
    let mut out = Vec::new();
    for rs in db.schema().iter() {
        let arity = rs.arity();
        let mut counters = vec![0usize; arity];
        if domain.is_empty() && arity > 0 {
            continue;
        }
        loop {
            let tuple: Tuple = counters
                .iter()
                .map(|&i| Value::Const(domain[i].clone()))
                .collect();
            out.push((rs.name.clone(), tuple));
            // advance
            let mut i = 0;
            loop {
                if i == arity {
                    break;
                }
                counters[i] += 1;
                if counters[i] < domain.len() {
                    break;
                }
                counters[i] = 0;
                i += 1;
            }
            if arity == 0 || counters.iter().all(|&c| c == 0) {
                break;
            }
        }
        if arity == 0 {
            // a 0-ary relation has exactly one possible tuple, already pushed
            continue;
        }
    }
    out
}

/// All subsets of `items` of size at most `k` (including the empty subset).
fn bounded_subsets<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    fn go<T: Clone>(
        items: &[T],
        start: usize,
        remaining: usize,
        current: &mut Vec<T>,
        out: &mut Vec<Vec<T>>,
    ) {
        out.push(current.clone());
        if remaining == 0 {
            return;
        }
        for i in start..items.len() {
            current.push(items[i].clone());
            go(items, i + 1, remaining - 1, current, out);
            current.pop();
        }
    }
    let mut out = Vec::new();
    go(items, 0, k, &mut Vec::new(), &mut out);
    out
}

/// Intersects the instances of a named relation across a set of complete
/// databases — the classical intersection-based certain answer for the
/// identity query on that relation.
pub fn intersect_relation(worlds: &[Database], relation: &str) -> Option<Relation> {
    let mut iter = worlds.iter();
    let first = iter.next()?.relation(relation)?.clone();
    Some(iter.fold(first, |acc, w| match w.relation(relation) {
        Some(r) => acc.intersection(r),
        None => Relation::new(acc.arity()),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn single_null_db() -> Database {
        let schema = Schema::builder().relation("S", &["a"]).build();
        let mut db = Database::new(schema);
        db.insert("S", Tuple::new(vec![Value::null(0)])).unwrap();
        db
    }

    #[test]
    fn adequate_domain_contains_db_query_and_fresh() {
        let db = single_null_db();
        let qc: BTreeSet<Constant> = vec![Constant::Int(9)].into_iter().collect();
        let d = adequate_domain(&db, &qc, 2);
        assert!(d.contains(&Constant::Int(9)));
        assert_eq!(d.len(), 3); // no db constants, one query constant, two fresh
    }

    #[test]
    fn cwa_worlds_of_single_null() {
        let db = single_null_db();
        let domain = vec![Constant::Int(1), Constant::Int(2)];
        let worlds = enumerate_cwa_worlds(&db, &domain);
        assert_eq!(worlds.len(), 2);
        for w in &worlds {
            assert!(w.is_complete());
            assert_eq!(w.relation("S").unwrap().len(), 1);
        }
    }

    #[test]
    fn cwa_worlds_merge_tuples_when_nulls_collide() {
        // R = {(⊥0), (⊥1)}: when both nulls map to the same constant the world
        // has a single tuple.
        let schema = Schema::builder().relation("R", &["a"]).build();
        let mut db = Database::new(schema);
        db.insert("R", Tuple::new(vec![Value::null(0)])).unwrap();
        db.insert("R", Tuple::new(vec![Value::null(1)])).unwrap();
        let domain = vec![Constant::Int(1), Constant::Int(2)];
        let worlds = enumerate_cwa_worlds(&db, &domain);
        // 4 valuations, but (1,1) and (2,2) give singleton worlds, (1,2) and (2,1)
        // give the same two-tuple world => 3 distinct worlds.
        assert_eq!(worlds.len(), 3);
        assert!(worlds.iter().any(|w| w.relation("R").unwrap().len() == 1));
        assert!(worlds.iter().any(|w| w.relation("R").unwrap().len() == 2));
    }

    #[test]
    fn cwa_valuations_keep_duplicates() {
        let db = single_null_db();
        let domain = vec![Constant::Int(1), Constant::Int(2), Constant::Int(3)];
        assert_eq!(enumerate_cwa_valuations(&db, &domain).len(), 3);
    }

    #[test]
    fn owa_worlds_extend_cwa_worlds() {
        let db = single_null_db();
        let domain = vec![Constant::Int(1), Constant::Int(2)];
        let cwa = enumerate_cwa_worlds(&db, &domain);
        let owa = enumerate_owa_worlds(&db, &domain, 1);
        assert!(owa.len() > cwa.len());
        // every OWA world contains some CWA world
        for w in &owa {
            assert!(cwa.iter().any(|c| c.is_subinstance_of(w)));
        }
        // max_extra = 0 coincides with CWA enumeration
        assert_eq!(enumerate_owa_worlds(&db, &domain, 0).len(), cwa.len());
    }

    #[test]
    fn intersect_relation_computes_certain_tuples() {
        // R = {(1), (⊥0)} under CWA over {1,2}: worlds {(1)}, {(1),(2)}.
        // Intersection = {(1)}.
        let schema = Schema::builder().relation("R", &["a"]).build();
        let mut db = Database::new(schema);
        db.insert("R", Tuple::ints(&[1])).unwrap();
        db.insert("R", Tuple::new(vec![Value::null(0)])).unwrap();
        let worlds = enumerate_cwa_worlds(&db, &[Constant::Int(1), Constant::Int(2)]);
        let certain = intersect_relation(&worlds, "R").unwrap();
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&Tuple::ints(&[1])));
    }

    #[test]
    fn bounded_subsets_counts() {
        let items = vec![1, 2, 3];
        assert_eq!(bounded_subsets(&items, 0).len(), 1);
        assert_eq!(bounded_subsets(&items, 1).len(), 4);
        assert_eq!(bounded_subsets(&items, 2).len(), 7);
        assert_eq!(bounded_subsets(&items, 3).len(), 8);
    }

    #[test]
    fn semantics_display() {
        assert_eq!(Semantics::Owa.to_string(), "owa");
        assert_eq!(Semantics::Cwa.name(), "cwa");
    }
}
