//! # relmodel — relational databases with incomplete information
//!
//! This crate provides the data model underlying the whole workspace: the
//! model of *naïve* (marked) nulls from Imieliński & Lipski, as used in
//! Libkin's PODS 2014 keynote *"Incomplete Data: What Went Wrong, and How to
//! Fix It"*.
//!
//! The model distinguishes two kinds of atomic values:
//!
//! * **constants** ([`value::Constant`]) — ordinary known values (integers or
//!   strings), drawn from a countably infinite set `Const`;
//! * **nulls** ([`value::NullId`]) — placeholders for unknown values, drawn
//!   from a countably infinite set `Null`, written `⊥₁, ⊥₂, …`.
//!
//! A [`relation::Relation`] is a finite set of tuples over `Const ∪ Null`; a
//! [`database::Database`] assigns a relation to every relation symbol of a
//! [`schema::Schema`]. A database where each null occurs at most once is a
//! *Codd database* (this models SQL's unmarked `NULL`); a database without any
//! nulls is *complete*.
//!
//! The semantics of an incomplete database is the set of complete databases it
//! can denote. Two standard semantics are provided in [`semantics`]:
//!
//! * `[[D]]_cwa = { v(D) | v a valuation }` — closed-world assumption;
//! * `[[D]]_owa = { D' ⊇ v(D) | v a valuation }` — open-world assumption;
//!
//! where a [`valuation::Valuation`] maps every null of `D` to a constant.
//! Exhaustive enumeration of valuations over a finite constant domain (enough
//! for *generic* queries) lives in [`valuation`] and [`semantics`].
//!
//! ```
//! use relmodel::prelude::*;
//!
//! // The running example of the paper: Order(o_id, product), Pay(p_id, order, amount)
//! let mut db = Database::new(
//!     Schema::builder()
//!         .relation("Order", &["o_id", "product"])
//!         .relation("Pay", &["p_id", "order", "amount"])
//!         .build(),
//! );
//! db.insert("Order", Tuple::new(vec![Value::str("oid1"), Value::str("pr1")])).unwrap();
//! db.insert("Order", Tuple::new(vec![Value::str("oid2"), Value::str("pr2")])).unwrap();
//! db.insert("Pay", Tuple::new(vec![Value::str("pid1"), Value::null(0), Value::int(100)])).unwrap();
//!
//! assert!(!db.is_complete());
//! assert!(db.is_codd());
//! assert_eq!(db.null_ids().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod builder;
pub mod constraint;
pub mod database;
pub mod display;
pub mod error;
pub mod relation;
pub mod schema;
pub mod semantics;
pub mod tuple;
pub mod valuation;
pub mod value;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::batch::{ColumnBatch, OverlayBatch, RunSplit};
    pub use crate::builder::DatabaseBuilder;
    pub use crate::constraint::{CompareOp, Constraint, Violation};
    pub use crate::database::Database;
    pub use crate::error::ModelError;
    pub use crate::relation::Relation;
    pub use crate::schema::{RelationSchema, Schema, SchemaBuilder};
    pub use crate::semantics::Semantics;
    pub use crate::tuple::Tuple;
    pub use crate::valuation::Valuation;
    pub use crate::value::{Constant, NullId, Value};
}

pub use batch::{ColumnBatch, OverlayBatch, RunSplit};
pub use builder::DatabaseBuilder;
pub use constraint::{CompareOp, Constraint, Violation};
pub use database::Database;
pub use error::ModelError;
pub use relation::Relation;
pub use schema::{RelationSchema, Schema};
pub use semantics::{Semantics, WorldIter};
pub use tuple::Tuple;
pub use valuation::Valuation;
pub use value::{Constant, NullId, Value};
