//! Atomic values: constants and marked nulls.
//!
//! Databases in this workspace are populated by two kinds of elements, exactly
//! as in the paper: *constants* from a countably infinite set `Const`, and
//! *nulls* from a countably infinite set `Null`. Nulls are **marked** (naïve):
//! the same null may occur several times, and every occurrence must be
//! replaced by the same constant under a valuation.

use std::fmt;

/// A constant value — an element of the countably infinite set `Const`.
///
/// Two concrete carrier types are supported: 64-bit integers and strings.
/// They are totally ordered (integers before strings) so that relations can be
/// kept in deterministic order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Constant {
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(String),
}

impl Constant {
    /// Returns the constant as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Constant::Int(i) => Some(*i),
            Constant::Str(_) => None,
        }
    }

    /// Returns the constant as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Constant::Int(_) => None,
            Constant::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Constant {
    fn from(i: i64) -> Self {
        Constant::Int(i)
    }
}

impl From<&str> for Constant {
    fn from(s: &str) -> Self {
        Constant::Str(s.to_owned())
    }
}

impl From<String> for Constant {
    fn from(s: String) -> Self {
        Constant::Str(s)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Identifier of a marked null `⊥ᵢ`.
///
/// Each distinct identifier denotes a distinct unknown value; repeated
/// occurrences of the same `NullId` must be interpreted by the same constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NullId(pub u64);

impl NullId {
    /// The raw numeric identifier.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

/// An atomic database value: either a constant or a marked null.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// A known constant.
    Const(Constant),
    /// An unknown value, identified by a marked null.
    Null(NullId),
}

impl Value {
    /// Creates an integer constant value.
    pub fn int(i: i64) -> Self {
        Value::Const(Constant::Int(i))
    }

    /// Creates a string constant value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Const(Constant::Str(s.into()))
    }

    /// Creates a marked null with the given identifier.
    pub fn null(id: u64) -> Self {
        Value::Null(NullId(id))
    }

    /// Is this value a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Is this value a null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Returns the constant inside, if any.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Value::Const(c) => Some(c),
            Value::Null(_) => None,
        }
    }

    /// Returns the null identifier inside, if any.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Value::Const(_) => None,
            Value::Null(n) => Some(*n),
        }
    }

    /// Equality of values in the sense of *naïve evaluation*: values are
    /// compared syntactically, with a null equal only to itself.
    ///
    /// This is ordinary `==`; the method exists to make call sites explicit
    /// about which notion of equality they use (contrast with
    /// [`Value::eq_3vl`]).
    pub fn eq_naive(&self, other: &Value) -> bool {
        self == other
    }

    /// Equality of values under SQL's three-valued logic: comparing anything
    /// with a null yields `Unknown`.
    pub fn eq_3vl(&self, other: &Value) -> Truth {
        match (self, other) {
            (Value::Const(a), Value::Const(b)) => {
                if a == b {
                    Truth::True
                } else {
                    Truth::False
                }
            }
            _ => Truth::Unknown,
        }
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Self {
        Value::Const(c)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<NullId> for Value {
    fn from(n: NullId) -> Self {
        Value::Null(n)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

/// SQL's three truth values, used by the 3-valued-logic evaluator
/// (the "practice" baseline the paper criticises).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Truth {
    /// Definitely false.
    False,
    /// Unknown (some comparison involved a null).
    Unknown,
    /// Definitely true.
    True,
}

impl Truth {
    /// Kleene conjunction.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)] // `Truth` is not a `bool`; `!` would suggest two-valued logic
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Converts from a Boolean.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// SQL `WHERE` clause semantics: only `True` selects a row.
    pub fn is_true(self) -> bool {
        self == Truth::True
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Truth::True => write!(f, "true"),
            Truth::False => write!(f, "false"),
            Truth::Unknown => write!(f, "unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_compare_and_display() {
        let a = Constant::Int(1);
        let b = Constant::Str("x".into());
        assert!(a < b, "integers order before strings");
        assert_eq!(a.to_string(), "1");
        assert_eq!(b.to_string(), "x");
        assert_eq!(a.as_int(), Some(1));
        assert_eq!(b.as_str(), Some("x"));
        assert_eq!(a.as_str(), None);
        assert_eq!(b.as_int(), None);
    }

    #[test]
    fn value_constructors() {
        assert!(Value::int(3).is_const());
        assert!(Value::str("a").is_const());
        assert!(Value::null(7).is_null());
        assert_eq!(Value::null(7).as_null(), Some(NullId(7)));
        assert_eq!(Value::int(3).as_const(), Some(&Constant::Int(3)));
        assert_eq!(Value::from(5i64), Value::int(5));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(NullId(2)), Value::null(2));
    }

    #[test]
    fn naive_equality_is_syntactic() {
        assert!(Value::null(1).eq_naive(&Value::null(1)));
        assert!(!Value::null(1).eq_naive(&Value::null(2)));
        assert!(!Value::null(1).eq_naive(&Value::int(1)));
        assert!(Value::int(1).eq_naive(&Value::int(1)));
    }

    #[test]
    fn three_valued_equality() {
        assert_eq!(Value::int(1).eq_3vl(&Value::int(1)), Truth::True);
        assert_eq!(Value::int(1).eq_3vl(&Value::int(2)), Truth::False);
        assert_eq!(Value::int(1).eq_3vl(&Value::null(0)), Truth::Unknown);
        assert_eq!(Value::null(0).eq_3vl(&Value::null(0)), Truth::Unknown);
    }

    #[test]
    fn kleene_logic_tables() {
        use Truth::*;
        // conjunction
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
        // disjunction
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(Unknown.or(Unknown), Unknown);
        // negation
        assert_eq!(True.not(), False);
        assert_eq!(False.not(), True);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn tautology_fails_in_3vl() {
        // The paper's §1 example: `x = c OR x <> c` is not True when x is null.
        let x = Value::null(0);
        let c = Value::str("oid1");
        let t = x.eq_3vl(&c).or(x.eq_3vl(&c).not());
        assert_eq!(t, Truth::Unknown);
        assert!(
            !t.is_true(),
            "SQL drops the row even though the condition is a tautology"
        );
    }

    #[test]
    fn display_of_values() {
        assert_eq!(Value::null(3).to_string(), "⊥3");
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Truth::Unknown.to_string(), "unknown");
    }
}
