//! Observability substrate for the certain-answer engine and serving layer.
//!
//! The engine spans five strategies, a split executor, and a concurrent
//! serving layer; this crate is the shared vocabulary for seeing what all of
//! that actually did:
//!
//! * [`Span`] — a tree of named phases with wall times and integer fields,
//!   the unit of a **query trace**. The engine records one per traced call
//!   (`parse` / `plan` / `execute` / per-shard fold spans); the serving layer
//!   keeps the slow ones.
//! * [`Recorder`] — the cheap on/off handle the engine threads through its
//!   phases. Disabled, every operation is a branch on a `bool` and allocates
//!   nothing, which is what keeps tracing-off overhead under the 5% gate the
//!   dispatch bench asserts.
//! * [`Histogram`] — a lock-free, log-bucketed latency histogram
//!   (power-of-two buckets, relaxed atomic counters) with p50/p95/p99
//!   [`Histogram::snapshot`]s; safe to record into from any number of
//!   threads with no tearing and no lost counts.
//! * [`MetricsRegistry`] — a fixed-at-construction set of labelled
//!   histograms and gauges, rendered as a Prometheus-style text page
//!   ([`MetricsRegistry::render_text`]) or a single BENCH-compatible JSON
//!   line ([`MetricsRegistry::render_json`]).
//! * [`SlowQueryRing`] — a bounded ring of the last N slow entries, each
//!   pushed whole under one short lock so concurrent readers never observe
//!   a torn trace.
//!
//! Everything here is `std`-only and unsafe-free; the histograms are plain
//! `AtomicU64` arrays, not platform tricks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod ring;
mod span;

pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricsRegistry, RegistryBuilder};
pub use ring::SlowQueryRing;
pub use span::{Recorder, Span, SpanTimer};
