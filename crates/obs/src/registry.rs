//! A fixed-shape metrics registry: labelled latency histograms plus gauges,
//! exported as Prometheus-style text or one BENCH-compatible JSON line.
//!
//! The label space is declared once, at construction, which is what keeps
//! the hot path lock-free: recording scans an immutable vector of entries
//! (a dozen for the serving layer's {strategy} × {hit, miss} grid) and
//! bumps atomics. There is no dynamic label interning and no hashing —
//! deliberately, because a serving layer knows its strategies up front.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::Histogram;

struct HistEntry {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    hist: Histogram,
}

struct GaugeEntry {
    name: &'static str,
    /// `f64` bits; gauges are set, not accumulated.
    value: AtomicU64,
}

/// Declares the shape of a [`MetricsRegistry`] before any recording starts.
#[derive(Default)]
pub struct RegistryBuilder {
    hists: Vec<HistEntry>,
    gauges: Vec<GaugeEntry>,
}

impl RegistryBuilder {
    /// Declares a histogram under `name` with a fixed label set.
    pub fn histogram(
        mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> RegistryBuilder {
        self.hists.push(HistEntry {
            name,
            labels: labels.iter().map(|(k, v)| (*k, (*v).to_owned())).collect(),
            hist: Histogram::new(),
        });
        self
    }

    /// Declares a gauge under `name`, initially 0.
    pub fn gauge(mut self, name: &'static str) -> RegistryBuilder {
        self.gauges.push(GaugeEntry {
            name,
            value: AtomicU64::new(0f64.to_bits()),
        });
        self
    }

    /// Freezes the shape.
    pub fn build(self) -> MetricsRegistry {
        MetricsRegistry {
            hists: self.hists,
            gauges: self.gauges,
        }
    }
}

/// A frozen set of labelled histograms and gauges. All methods take `&self`;
/// share it across threads as-is.
pub struct MetricsRegistry {
    hists: Vec<HistEntry>,
    gauges: Vec<GaugeEntry>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("histograms", &self.hists.len())
            .field("gauges", &self.gauges.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Starts declaring a registry.
    pub fn builder() -> RegistryBuilder {
        RegistryBuilder::default()
    }

    /// Records `value` into the histogram with exactly these labels.
    /// Unknown (name, labels) combinations are dropped silently — the shape
    /// was frozen at construction, and a telemetry path must never panic a
    /// query.
    pub fn record(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        if let Some(entry) = self.find(name, labels) {
            entry.hist.record(value);
        }
    }

    /// Total values recorded into the histogram with these labels.
    pub fn histogram_count(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.find(name, labels).map_or(0, |e| e.hist.count())
    }

    /// A quantile snapshot of the histogram with these labels:
    /// `(p50, p95, p99)` in recorded units. All zeros when empty or unknown.
    pub fn quantiles(&self, name: &str, labels: &[(&str, &str)]) -> (u64, u64, u64) {
        self.find(name, labels).map_or((0, 0, 0), |e| {
            let s = e.hist.snapshot();
            (s.p50(), s.p95(), s.p99())
        })
    }

    /// Sets a gauge (no-op for names not declared at construction).
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(g) = self.gauges.iter().find(|g| g.name == name) {
            g.value.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Reads a gauge back.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| f64::from_bits(g.value.load(Ordering::Relaxed)))
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistEntry> {
        self.hists.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
        })
    }

    /// The Prometheus-style text page: per histogram, `quantile`-labelled
    /// gauge lines plus `_count`/`_sum`; then the plain gauges. Histograms
    /// with no records are omitted (scrapes stay readable; the shape is
    /// still queryable programmatically).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for e in &self.hists {
            let snap = e.hist.snapshot();
            if snap.count() == 0 {
                continue;
            }
            for (q, v) in [
                ("0.5", snap.p50()),
                ("0.95", snap.p95()),
                ("0.99", snap.p99()),
            ] {
                let _ = writeln!(out, "{}{} {}", e.name, render_labels(&e.labels, Some(q)), v);
            }
            let _ = writeln!(
                out,
                "{}_count{} {}",
                e.name,
                render_labels(&e.labels, None),
                snap.count()
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                e.name,
                render_labels(&e.labels, None),
                snap.sum()
            );
        }
        for g in &self.gauges {
            let _ = writeln!(
                out,
                "{} {}",
                g.name,
                f64::from_bits(g.value.load(Ordering::Relaxed))
            );
        }
        out
    }

    /// One JSON object on one line — the shape the bench lanes emit as
    /// `BENCH {…}` artifact lines. Empty histograms are omitted, like the
    /// text page.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"histograms\":[");
        let mut first = true;
        for e in &self.hists {
            let snap = e.hist.snapshot();
            if snap.count() == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{{\"name\":\"{}\",\"labels\":{{", e.name);
            for (i, (k, v)) in e.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":\"{v}\"");
            }
            let _ = write!(
                out,
                "}},\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                snap.count(),
                snap.sum(),
                snap.p50(),
                snap.p95(),
                snap.p99()
            );
        }
        out.push_str("],\"gauges\":{");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{}",
                g.name,
                f64::from_bits(g.value.load(Ordering::Relaxed))
            );
        }
        out.push_str("}}");
        out
    }
}

fn render_labels(labels: &[(&'static str, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> MetricsRegistry {
        MetricsRegistry::builder()
            .histogram("latency_ns", &[("strategy", "naive"), ("cache", "hit")])
            .histogram("latency_ns", &[("strategy", "naive"), ("cache", "miss")])
            .gauge("snapshot_age_seconds")
            .build()
    }

    #[test]
    fn records_route_by_label_and_unknowns_drop() {
        let reg = grid();
        reg.record(
            "latency_ns",
            &[("strategy", "naive"), ("cache", "hit")],
            100,
        );
        reg.record(
            "latency_ns",
            &[("strategy", "naive"), ("cache", "hit")],
            200,
        );
        reg.record(
            "latency_ns",
            &[("strategy", "naive"), ("cache", "miss")],
            1000,
        );
        // Unknown strategy: dropped, not panicked.
        reg.record("latency_ns", &[("strategy", "other"), ("cache", "hit")], 5);
        assert_eq!(
            reg.histogram_count("latency_ns", &[("strategy", "naive"), ("cache", "hit")]),
            2
        );
        assert_eq!(
            reg.histogram_count("latency_ns", &[("strategy", "naive"), ("cache", "miss")]),
            1
        );
        let (p50, p95, p99) =
            reg.quantiles("latency_ns", &[("strategy", "naive"), ("cache", "miss")]);
        assert!((1000..=2048).contains(&p50));
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn gauges_set_and_read() {
        let reg = grid();
        assert_eq!(reg.gauge("snapshot_age_seconds"), Some(0.0));
        reg.set_gauge("snapshot_age_seconds", 2.5);
        assert_eq!(reg.gauge("snapshot_age_seconds"), Some(2.5));
        reg.set_gauge("nope", 1.0);
        assert_eq!(reg.gauge("nope"), None);
    }

    #[test]
    fn text_and_json_render_recorded_series() {
        let reg = grid();
        reg.record(
            "latency_ns",
            &[("strategy", "naive"), ("cache", "hit")],
            100,
        );
        reg.set_gauge("snapshot_age_seconds", 1.5);
        let text = reg.render_text();
        assert!(
            text.contains("latency_ns{strategy=\"naive\",cache=\"hit\",quantile=\"0.5\"}"),
            "got: {text}"
        );
        assert!(text.contains("latency_ns_count{strategy=\"naive\",cache=\"hit\"} 1"));
        assert!(text.contains("snapshot_age_seconds 1.5"));
        // The empty miss histogram is omitted.
        assert!(!text.contains("cache=\"miss\""));
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'), "one line for BENCH artifacts");
        assert!(json.contains("\"count\":1"), "got: {json}");
        assert!(json.contains("\"snapshot_age_seconds\":1.5"), "got: {json}");
    }
}
