//! A bounded ring of the most recent slow entries.

use std::collections::VecDeque;
use std::sync::Mutex;

/// The last-N buffer behind `CertainService::slow_queries`: entries are
/// pushed **whole** under one short mutex hold, so a concurrent reader
/// either sees an entry completely or not at all — there is no state in
/// which a trace is half-published. The lock is touched only for queries
/// that already crossed the slowness threshold, so it is never on the fast
/// path.
#[derive(Debug)]
pub struct SlowQueryRing<T> {
    capacity: usize,
    entries: Mutex<VecDeque<T>>,
}

impl<T: Clone> SlowQueryRing<T> {
    /// A ring keeping at most `capacity` entries; zero capacity disables it.
    pub fn new(capacity: usize) -> SlowQueryRing<T> {
        SlowQueryRing {
            capacity,
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes an entry, evicting the oldest beyond capacity.
    pub fn push(&self, entry: T) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().expect("slow-query ring poisoned");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow-query ring poisoned").len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the entries, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.entries
            .lock()
            .expect("slow-query ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_n() {
        let ring = SlowQueryRing::new(3);
        for i in 0..10 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.snapshot(), vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_disables() {
        let ring = SlowQueryRing::new(0);
        ring.push(1);
        assert!(ring.is_empty());
        assert_eq!(ring.snapshot(), Vec::<i32>::new());
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        use std::sync::Arc;
        let ring = Arc::new(SlowQueryRing::new(64));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let ring = Arc::clone(&ring);
                // Entries are (tag, tag * 1000): a torn entry would break
                // the invariant between the halves.
                scope.spawn(move || {
                    for i in 0..100 {
                        ring.push((t * 100 + i, (t * 100 + i) * 1000));
                    }
                });
            }
        });
        let entries = ring.snapshot();
        assert_eq!(entries.len(), 64);
        for (a, b) in entries {
            assert_eq!(b, a * 1000, "entry pushed whole");
        }
    }
}
