//! Lock-free log-bucketed histograms for latency recording.
//!
//! Values (nanoseconds, by convention) land in power-of-two buckets: bucket
//! 0 holds exactly 0, bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`. Recording
//! is one relaxed `fetch_add` on an `AtomicU64` — no locks, no tearing, no
//! lost counts under contention — and quantile queries walk a point-in-time
//! [`HistogramSnapshot`]. A log bucket's relative error is bounded by 2×,
//! which is exactly what p50/p95/p99 tail tracking needs and nothing more.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero, one per power of two up to `2^63`, and
/// a top bucket for `[2^63, u64::MAX]`.
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for 0, `floor(log2(v)) + 1` otherwise.
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The inclusive `[low, high]` range of values a bucket holds.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket {index} out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A lock-free log-bucketed histogram. Record from any thread; snapshot for
/// quantiles.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value (relaxed atomics; nothing to contend on).
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total values recorded so far.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the bucket counts. Buckets are sampled
    /// individually, so a snapshot taken mid-record can be off by the
    /// records straddling it — fine for telemetry, not an audit log.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (out, c) in counts.iter_mut().zip(&self.counts) {
            *out = c.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    sum: u64,
}

impl HistogramSnapshot {
    /// Total values in the snapshot.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The count in one bucket (for tests and exporters).
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), reported as the **upper bound** of
    /// the bucket holding the rank — an over-estimate by at most 2×, and
    /// monotone in `q` by construction (ranks only grow, and bucket upper
    /// bounds grow with the bucket index). Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The 1-based rank of the quantile value among the sorted records.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        u64::MAX
    }

    /// Median (upper bucket bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (upper bucket bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (upper bucket bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Zero is its own bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_bounds(0), (0, 0));
        // 1 starts bucket 1; every power of two starts a fresh bucket and
        // the value below it ends the previous one.
        assert_eq!(bucket_index(1), 1);
        for i in 1..=62usize {
            let low = 1u64 << (i - 1);
            assert_eq!(bucket_index(low), i, "2^{} starts bucket {i}", i - 1);
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, low);
            assert_eq!(hi, (1 << i) - 1);
            assert_eq!(bucket_index(hi), i, "top of bucket {i} stays inside");
            assert_eq!(bucket_index(hi + 1), i + 1, "one past rolls over");
        }
        // The top bucket swallows everything from 2^63 up.
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn records_land_in_their_buckets() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.bucket_count(0), 1); // 0
        assert_eq!(s.bucket_count(1), 1); // 1
        assert_eq!(s.bucket_count(2), 2); // 2, 3
        assert_eq!(s.bucket_count(3), 1); // 4
        assert_eq!(s.bucket_count(bucket_index(1000)), 1);
        assert_eq!(s.bucket_count(64), 1); // u64::MAX
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // A deterministic spread across many buckets.
                        h.record(((t * PER_THREAD + i) as u64 * 2654435761) % 1_000_000);
                    }
                });
            }
        });
        // Serial reference: identical records, one thread.
        let reference = Histogram::new();
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                reference.record(((t * PER_THREAD + i) as u64 * 2654435761) % 1_000_000);
            }
        }
        let got = h.snapshot();
        let want = reference.snapshot();
        assert_eq!(got.count(), (THREADS * PER_THREAD) as u64);
        assert_eq!(got, want, "concurrent and serial recording agree exactly");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::new();
        for v in 0..10_000u64 {
            h.record(v * 37 % 50_000);
        }
        let s = h.snapshot();
        let qs: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let values: Vec<u64> = qs.iter().map(|&q| s.quantile(q)).collect();
        for pair in values.windows(2) {
            assert!(pair[0] <= pair[1], "quantile snapshot must be monotone");
        }
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
    }

    #[test]
    fn quantile_edges_and_empty() {
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.p99(), 0);
        let h = Histogram::new();
        h.record(7);
        let s = h.snapshot();
        // One record: every quantile reports its bucket's upper bound.
        assert_eq!(s.quantile(0.0), bucket_bounds(bucket_index(7)).1);
        assert_eq!(s.quantile(1.0), bucket_bounds(bucket_index(7)).1);
        assert_eq!(s.sum(), 7);
    }
}
