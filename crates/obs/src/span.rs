//! Query-trace spans: a tree of named phases with wall times and counters.

use std::fmt;
use std::time::{Duration, Instant};

/// One phase of a traced query: a name, how long it took, integer fields
/// (the engine attaches its existing counters — worlds visited, solver
/// calls, batches — as fields), and child phases.
///
/// Spans are plain data: building them is explicit, cloning them is cheap
/// relative to the work they describe, and they derive `Eq` so reports that
/// carry them stay comparable in tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Phase name (`"query"`, `"plan"`, `"execute"`, a strategy name,
    /// `"shard"`, …). Static so building a span never allocates for the
    /// name.
    pub name: &'static str,
    /// Wall time the phase took.
    pub duration: Duration,
    /// Counters attached to the phase, in insertion order.
    pub fields: Vec<(&'static str, u64)>,
    /// Sub-phases, in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// An empty span with a name and no duration yet.
    pub fn new(name: &'static str) -> Span {
        Span {
            name,
            ..Span::default()
        }
    }

    /// A span with a name and a measured duration.
    pub fn with_duration(name: &'static str, duration: Duration) -> Span {
        Span {
            name,
            duration,
            ..Span::default()
        }
    }

    /// Attaches a counter field (builder style).
    pub fn field(mut self, key: &'static str, value: u64) -> Span {
        self.fields.push((key, value));
        self
    }

    /// Attaches a counter field in place.
    pub fn push_field(&mut self, key: &'static str, value: u64) {
        self.fields.push((key, value));
    }

    /// Appends a child phase.
    pub fn push_child(&mut self, child: Span) {
        self.children.push(child);
    }

    /// Depth-first search for the first span named `name` (including self).
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// The value of the first field named `key` on this span.
    pub fn field_value(&self, key: &str) -> Option<u64> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Total spans in the tree rooted here (including self).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(Span::span_count).sum::<usize>()
    }

    /// Renders the tree as indented text, one span per line:
    /// `name  1.23ms  [key=value, …]`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, indent: usize, out: &mut String) {
        use fmt::Write as _;
        for _ in 0..indent {
            out.push_str("  ");
        }
        let _ = write!(out, "{}  {:?}", self.name, self.duration);
        if !self.fields.is_empty() {
            let fields: Vec<String> = self
                .fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = write!(out, "  [{}]", fields.join(", "));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(indent + 1, out);
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The on/off handle traced code paths branch on. `Copy` and two bytes big:
/// passing it around costs nothing, and every operation on a disabled
/// recorder is a single branch with no allocation — the property the
/// dispatch bench's <5% tracing-off overhead gate rests on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Recorder {
    enabled: bool,
}

impl Recorder {
    /// A recorder that records.
    pub fn enabled() -> Recorder {
        Recorder { enabled: true }
    }

    /// A recorder on which every operation is a no-op.
    pub fn disabled() -> Recorder {
        Recorder { enabled: false }
    }

    /// A recorder that records iff `enabled`.
    pub fn when(enabled: bool) -> Recorder {
        Recorder { enabled }
    }

    /// Is this recorder recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts timing a span. Disabled, the returned timer holds nothing and
    /// [`SpanTimer::finish`] returns `None` without ever reading the clock.
    pub fn start(&self, name: &'static str) -> SpanTimer {
        SpanTimer {
            inner: self.enabled.then(|| (name, Instant::now())),
        }
    }
}

/// An in-flight span: created by [`Recorder::start`], turned into a [`Span`]
/// by [`SpanTimer::finish`]. Holds `None` when the recorder was disabled.
#[derive(Debug)]
pub struct SpanTimer {
    inner: Option<(&'static str, Instant)>,
}

impl SpanTimer {
    /// Stops the clock and builds the span; `None` when tracing is off.
    pub fn finish(self) -> Option<Span> {
        self.inner
            .map(|(name, started)| Span::with_duration(name, started.elapsed()))
    }

    /// Is this timer actually timing?
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_build_and_render_as_a_tree() {
        let mut root = Span::with_duration("query", Duration::from_millis(3));
        let plan = Span::with_duration("plan", Duration::from_millis(1)).field("nulls", 2);
        let mut exec = Span::with_duration("execute", Duration::from_millis(2));
        exec.push_child(Span::with_duration("shard", Duration::from_millis(1)).field("index", 0));
        root.push_child(plan);
        root.push_child(exec);

        assert_eq!(root.span_count(), 4);
        assert_eq!(root.find("shard").unwrap().field_value("index"), Some(0));
        assert!(root.find("nope").is_none());
        let text = root.render();
        assert!(text.starts_with("query"), "got: {text}");
        assert!(text.contains("[nulls=2]"), "got: {text}");
        let shard_line = text.lines().find(|l| l.contains("shard")).unwrap();
        assert!(
            shard_line.starts_with("    "),
            "shard is two levels deep: {shard_line:?}"
        );
    }

    #[test]
    fn disabled_recorder_produces_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let timer = rec.start("phase");
        assert!(!timer.is_recording());
        assert_eq!(timer.finish(), None);
    }

    #[test]
    fn enabled_recorder_times_a_span() {
        let rec = Recorder::when(true);
        let timer = rec.start("phase");
        assert!(timer.is_recording());
        let span = timer.finish().unwrap();
        assert_eq!(span.name, "phase");
    }
}
