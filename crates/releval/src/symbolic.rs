//! Symbolic certain answers via conditional tables — **polynomial per
//! output tuple**, no world enumeration.
//!
//! The paper's §2 recalls that c-tables are a *strong representation
//! system*: `eval_ctable(Q, lift(D))` is a conditional table whose worlds
//! are exactly `Q([[D]]_cwa)`. This module turns that representation
//! theorem into an evaluation strategy for the classes where naïve
//! evaluation has no guarantee:
//!
//! 1. **Lift** the input [`Database`] to a `ConditionalDatabase` (every
//!    tuple conditioned on `true`).
//! 2. **Evaluate** the planned query with the Imieliński–Lipski algebra
//!    (`ctables::algebra::eval_ctable_unchecked` — the plan already carries
//!    the typecheck).
//! 3. **Extract** certain answers with the certainty solver
//!    (`ctables::condition::solver`): a complete tuple `t` is certain iff
//!    the disjunction `⋁ᵢ (tᵢ = t ∧ cᵢ)` over the answer rows `(tᵢ, cᵢ)` is
//!    **valid** — true under every valuation of the nulls. Validity is
//!    decided by DNF + congruence closure over the infinite constant
//!    domain; no valuation is ever enumerated.
//!
//! Only null-free answer rows can be certain (any null-carrying candidate
//! is killed by a valuation sending its nulls to fresh constants), so the
//! candidate set — and with it the number of solver calls — is at most the
//! number of answer rows. Against the possible-world oracle's
//! `|domain|^|nulls|` evaluated worlds, that is the exponential-to-
//! polynomial gap `benches/symbolic.rs` measures.
//!
//! The strategy computes **CWA** certain answers (the c-table expansion is
//! closed-world): exact for every query class under CWA, and an
//! over-approximation (`⊇`) of the OWA certain answer elsewhere — the
//! dispatching engine only selects it under CWA. It **punts** — explicitly,
//! never wrongly — in two cases, both reported as a [`PuntReason`]:
//! queries whose `Values` literals mention nulls (the c-table algebra would
//! conflate literal nulls with database nulls, the classifier's
//! counterexample), and conditions whose DNF exceeds the solver's clause
//! budget. The differential fuzz harness (`tests/symbolic_differential.rs`)
//! replays random workloads of every class against the streaming world
//! oracle to keep all of this honest.

use std::collections::BTreeSet;

use ctables::condition::solver::{CertaintySolver, SolverPunt};
use ctables::condition::Condition;
use ctables::ctable::ConditionalDatabase;
use relalgebra::classify::has_incomplete_values;
use relalgebra::plan::PlannedQuery;
use relmodel::{Database, Relation, Semantics, Tuple};

use crate::error::EvalError;
use crate::exec::columnar::ctable::execute_ctable_counted;
use crate::exec::OpStats;
use crate::strategy::Strategy;

/// Options governing the symbolic strategy — exactly the certainty solver's
/// budget, re-exported under the strategy's name: the solver *is* the only
/// tunable (and puntable) part of the pipeline.
pub use ctables::condition::solver::SolverOptions as SymbolicOptions;

/// Why the symbolic strategy declined to answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PuntReason {
    /// The query contains a `Values` literal mentioning nulls: possible
    /// worlds value database nulls but leave query literals untouched,
    /// while the c-table algebra would equate the two syntactically —
    /// answering would be unsound, so the strategy refuses.
    NullValuesLiteral,
    /// The certainty solver's DNF clause budget fired.
    SolverBudget {
        /// Clauses produced when the budget fired.
        clauses: usize,
        /// The configured maximum.
        budget: usize,
    },
}

impl std::fmt::Display for PuntReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PuntReason::NullValuesLiteral => {
                write!(f, "query contains a Values literal with nulls")
            }
            PuntReason::SolverBudget { clauses, budget } => write!(
                f,
                "condition solver needed {clauses} DNF clauses, exceeding the budget of {budget}"
            ),
        }
    }
}

/// Telemetry from one symbolic certain-answer execution — the polynomial
/// counterpart of `worlds::WorldExecution`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicExecution {
    /// The CWA certain answer.
    pub answers: Relation,
    /// Rows of the conditional answer table.
    pub rows: usize,
    /// Condition atoms across the answer table (the paper's "hardly
    /// meaningful to humans" size measure).
    pub condition_atoms: usize,
    /// Distinct null-free candidate tuples the solver was asked about.
    pub candidates: usize,
    /// Validity questions asked — the "units evaluated" figure to compare
    /// against worlds visited.
    pub solver_calls: usize,
    /// Questions the structural simplifier settled without building a DNF.
    pub simplification_wins: usize,
    /// Physical-operator telemetry from the c-table execution (the algebra
    /// runs on the same hash-join operator core as every other strategy).
    pub op_stats: OpStats,
}

/// The outcome of a symbolic evaluation: an answer, or an explicit punt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymbolicOutcome {
    /// The strategy answered; the answer is the exact CWA certain answer.
    Answered(SymbolicExecution),
    /// The strategy declined, and says why. Never a wrong answer.
    Punted(PuntReason),
}

/// The symbolic certain answer for a pre-typechecked plan: lift, evaluate
/// through the c-table algebra, extract certain tuples with the certainty
/// solver. Computes the **CWA** certain answer; see the module docs for the
/// guarantee this does (and does not) give under OWA.
pub fn symbolic_certain_answer(
    plan: &PlannedQuery,
    db: &Database,
    opts: &SymbolicOptions,
) -> SymbolicOutcome {
    if has_incomplete_values(plan.expr()) {
        return SymbolicOutcome::Punted(PuntReason::NullValuesLiteral);
    }
    let cdb = ConditionalDatabase::from_database(db);
    // The c-table algebra re-expressed on the physical operator core: the
    // same lowered plan every other strategy runs, with condition-carrying
    // rows and hash equi-joins on ground keys.
    let (answer, op_stats) = execute_ctable_counted(plan.physical(), &cdb);
    let mut solver = CertaintySolver::new(*opts);

    // Only null-free rows can name certain tuples: a valuation sending every
    // null to a fresh constant turns a null-carrying row into a tuple no
    // fixed candidate equals.
    let candidates: BTreeSet<&Tuple> = answer
        .rows()
        .iter()
        .filter(|r| r.tuple.is_complete())
        .map(|r| &r.tuple)
        .collect();

    let mut certain = Relation::new(answer.arity());
    let candidate_count = candidates.len();
    for t in candidates {
        // t is certain iff it is produced by *some* row in *every* world:
        // validity of ⋁ᵢ (tᵢ = t ∧ cᵢ), relative to the global condition
        // (the lifted database's global is `true`; entailment keeps this
        // correct for any global-carrying caller).
        let mut membership = Condition::False;
        for row in answer.rows() {
            membership = membership.or(row
                .condition
                .clone()
                .and(Condition::tuples_equal(&row.tuple, t)));
        }
        match solver.entails(&cdb.global, &membership) {
            Ok(true) => {
                certain.insert(t.clone());
            }
            Ok(false) => {}
            Err(SolverPunt::ClauseBudgetExceeded { clauses, budget }) => {
                return SymbolicOutcome::Punted(PuntReason::SolverBudget { clauses, budget });
            }
        }
    }
    let stats = solver.stats();
    SymbolicOutcome::Answered(SymbolicExecution {
        answers: certain,
        rows: answer.len(),
        condition_atoms: answer.condition_atoms(),
        candidates: candidate_count,
        solver_calls: stats.calls,
        simplification_wins: stats.simplification_wins,
        op_stats,
    })
}

/// The symbolic c-table strategy behind the common [`Strategy`] interface.
///
/// Computes the CWA certain answer regardless of the `semantics` argument
/// (like naïve evaluation, it is a deterministic evaluator; the dispatching
/// engine accounts for what the answer is worth under OWA). A punt surfaces
/// as [`EvalError::SymbolicPunt`] — callers with a fallback should catch it
/// and degrade explicitly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CTableStrategy(pub SymbolicOptions);

impl Strategy for CTableStrategy {
    fn name(&self) -> &'static str {
        "symbolic-ctable"
    }

    fn eval_unchecked(
        &self,
        plan: &PlannedQuery,
        db: &Database,
        _semantics: Semantics,
    ) -> Result<Relation, EvalError> {
        match symbolic_certain_answer(plan, db, &self.0) {
            SymbolicOutcome::Answered(exec) => Ok(exec.answers),
            SymbolicOutcome::Punted(reason) => Err(EvalError::SymbolicPunt(reason)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::{certain_answer_worlds, WorldOptions};
    use relalgebra::ast::RaExpr;
    use relmodel::builder::{difference_example, orders_and_payments_example};
    use relmodel::{DatabaseBuilder, Value};

    fn planned(expr: &RaExpr, db: &Database) -> PlannedQuery {
        PlannedQuery::new(expr.clone(), db.schema()).unwrap()
    }

    fn symbolic(expr: &RaExpr, db: &Database) -> SymbolicExecution {
        match symbolic_certain_answer(&planned(expr, db), db, &SymbolicOptions::default()) {
            SymbolicOutcome::Answered(exec) => exec,
            SymbolicOutcome::Punted(reason) => panic!("unexpected punt: {reason}"),
        }
    }

    #[test]
    fn difference_example_matches_ground_truth_without_worlds() {
        // R = {1,2}, S = {⊥}: certain(R − S) = ∅ — the paper's §2 example.
        let db = difference_example();
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        let exec = symbolic(&q, &db);
        assert!(exec.answers.is_empty());
        assert_eq!(exec.candidates, 2, "rows 1 and 2 are candidates");
        assert!(exec.solver_calls >= 2);
        assert_eq!(
            exec.answers,
            certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap()
        );
    }

    #[test]
    fn unpaid_orders_certainly_exist_but_no_specific_order_does() {
        let db = orders_and_payments_example();
        let unpaid = RaExpr::relation("Order")
            .project(vec![0])
            .difference(RaExpr::relation("Pay").project(vec![1]));
        assert!(symbolic(&unpaid, &db).answers.is_empty());
        // The Boolean version ("is some order unpaid?") is certainly true —
        // a disjunctive fact world enumeration needs every world for, and
        // the solver settles with one validity query.
        let exists = unpaid.project(vec![]);
        let exec = symbolic(&exists, &db);
        assert_eq!(exec.answers.len(), 1);
        assert!(exec.answers.contains(&Tuple::empty()));
    }

    #[test]
    fn tautology_selection_is_certain() {
        // SQL's 3VL drops this row; the symbolic strategy proves it certain.
        let db = orders_and_payments_example();
        let q = qparser_free_tautology();
        let exec = symbolic(&q, &db);
        assert_eq!(exec.answers.len(), 1);
        assert!(exec.answers.contains(&Tuple::strs(&["pid1"])));
    }

    /// σ_{#1='oid1' ∨ #1≠'oid1'}(Pay) projected to the payment id, built
    /// without the parser (releval does not depend on qparser).
    fn qparser_free_tautology() -> RaExpr {
        use relalgebra::predicate::{Operand, Predicate};
        RaExpr::relation("Pay")
            .select(
                Predicate::eq(Operand::col(1), Operand::str("oid1"))
                    .or(Predicate::neq(Operand::col(1), Operand::str("oid1"))),
            )
            .project(vec![0])
    }

    #[test]
    fn null_values_literals_punt_instead_of_conflating() {
        // D = { R(1, ⊥0) }, Q joins a literal ⊥0 against the database ⊥0:
        // the c-table algebra would equate them syntactically; the strategy
        // must refuse.
        use relalgebra::predicate::{Operand, Predicate};
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .build();
        let lit = RaExpr::values(Relation::from_tuples(
            2,
            vec![Tuple::new(vec![Value::null(0), Value::int(7)])],
        ));
        let q = RaExpr::relation("R")
            .product(lit)
            .select(Predicate::eq(Operand::col(1), Operand::col(2)))
            .project(vec![0, 3]);
        let plan = planned(&q, &db);
        assert_eq!(
            symbolic_certain_answer(&plan, &db, &SymbolicOptions::default()),
            SymbolicOutcome::Punted(PuntReason::NullValuesLiteral)
        );
        // Through the Strategy facade the punt is a typed error.
        let err = CTableStrategy::default().eval_unchecked(&plan, &db, Semantics::Cwa);
        assert!(matches!(
            err,
            Err(EvalError::SymbolicPunt(PuntReason::NullValuesLiteral))
        ));
    }

    #[test]
    fn solver_budget_punt_is_reported() {
        // A deep difference tower makes the membership conditions' DNF
        // explode; a 1-clause budget must punt, not hang or lie.
        let db = difference_example();
        let q = RaExpr::relation("R")
            .difference(RaExpr::relation("S"))
            .difference(RaExpr::relation("S").difference(RaExpr::relation("R")));
        let tiny = SymbolicOptions { max_dnf_clauses: 1 };
        match symbolic_certain_answer(&planned(&q, &db), &db, &tiny) {
            SymbolicOutcome::Punted(PuntReason::SolverBudget { budget: 1, .. }) => {}
            other => panic!("expected a solver-budget punt, got {other:?}"),
        }
        // The default budget answers it, and agrees with the oracle.
        let exec = symbolic(&q, &db);
        assert_eq!(
            exec.answers,
            certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap()
        );
    }

    #[test]
    fn int_str_distinct_constants_regression() {
        // ⊥0 may be valued to Int(1) or Str("1"): neither makes R ∩ {(1)}
        // certain — the PR 2 world-dedup regression class, now exercised
        // through the solver.
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"])
            .tuple("R", vec![Value::null(0)])
            .tuple("S", vec![Value::int(1)])
            .tuple("S", vec![Value::str("1")])
            .build();
        let lit = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[1])]));
        let q = RaExpr::relation("R").intersection(lit);
        let exec = symbolic(&q, &db);
        assert!(exec.answers.is_empty(), "got {}", exec.answers);
    }

    #[test]
    fn complete_databases_shortcut_through_simplification() {
        // With no nulls every condition is ground: the simplifier settles
        // every candidate and the solver never builds a DNF.
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"])
            .ints("R", &[1])
            .ints("R", &[2])
            .ints("S", &[2])
            .build();
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        let exec = symbolic(&q, &db);
        assert_eq!(exec.answers.len(), 1);
        assert!(exec.answers.contains(&Tuple::ints(&[1])));
        assert_eq!(exec.simplification_wins, exec.solver_calls);
    }
}
