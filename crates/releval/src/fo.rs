//! Model checking of first-order formulas over databases — the logical side
//! of Section 4's duality.
//!
//! Quantifiers range over the *active domain* of the database extended with
//! the constants mentioned in the formula (the standard active-domain
//! semantics). Over a naïve database, nulls participate in the domain as
//! ordinary values and equality is syntactic, which makes
//! [`satisfies`]`(D, Q)` the "naïve satisfaction" `D ⊨ Q` the paper uses to
//! characterise OWA certain answers of conjunctive queries.

use std::collections::BTreeMap;

use relalgebra::fo::{FoTerm, Formula};
use relmodel::value::Value;
use relmodel::{Database, Tuple};

/// A variable assignment for free variables.
pub type Environment = BTreeMap<String, Value>;

/// Does the database satisfy the sentence? Panics if the formula has free
/// variables (use [`satisfies_with`] for open formulas).
pub fn eval_sentence(db: &Database, formula: &Formula) -> bool {
    assert!(
        formula.is_sentence(),
        "eval_sentence requires a sentence; {formula} has free variables"
    );
    satisfies_with(db, formula, &Environment::new())
}

/// Alias for [`eval_sentence`], reading as `D ⊨ φ`.
pub fn satisfies(db: &Database, formula: &Formula) -> bool {
    eval_sentence(db, formula)
}

/// Evaluates a formula under an environment giving values to (at least) its
/// free variables.
pub fn satisfies_with(db: &Database, formula: &Formula, env: &Environment) -> bool {
    match formula {
        Formula::True => true,
        Formula::False => false,
        Formula::Atom { relation, terms } => {
            let tuple: Tuple = terms.iter().map(|t| resolve(t, env)).collect();
            db.relation(relation)
                .is_some_and(|rel| rel.contains(&tuple))
        }
        Formula::Eq(a, b) => resolve(a, env) == resolve(b, env),
        Formula::Not(f) => !satisfies_with(db, f, env),
        Formula::And(fs) => fs.iter().all(|f| satisfies_with(db, f, env)),
        Formula::Or(fs) => fs.iter().any(|f| satisfies_with(db, f, env)),
        Formula::Implies(a, b) => !satisfies_with(db, a, env) || satisfies_with(db, b, env),
        Formula::Exists(vars, body) => {
            quantify(db, formula, vars, body, env, /*existential=*/ true)
        }
        Formula::Forall(vars, body) => {
            quantify(db, formula, vars, body, env, /*existential=*/ false)
        }
    }
}

/// The quantification domain: active domain of the database plus constants of
/// the formula being checked.
fn quantification_domain(db: &Database, formula: &Formula) -> Vec<Value> {
    let mut domain: Vec<Value> = db.active_domain().into_iter().collect();
    collect_constants(formula, &mut domain);
    domain.sort();
    domain.dedup();
    domain
}

fn collect_constants(formula: &Formula, out: &mut Vec<Value>) {
    match formula {
        Formula::True | Formula::False => {}
        Formula::Atom { terms, .. } => {
            for t in terms {
                if let FoTerm::Const(c) = t {
                    out.push(Value::Const(c.clone()));
                }
            }
        }
        Formula::Eq(a, b) => {
            for t in [a, b] {
                if let FoTerm::Const(c) = t {
                    out.push(Value::Const(c.clone()));
                }
            }
        }
        Formula::Not(f) => collect_constants(f, out),
        Formula::And(fs) | Formula::Or(fs) => {
            for f in fs {
                collect_constants(f, out);
            }
        }
        Formula::Implies(a, b) => {
            collect_constants(a, out);
            collect_constants(b, out);
        }
        Formula::Exists(_, f) | Formula::Forall(_, f) => collect_constants(f, out),
    }
}

fn quantify(
    db: &Database,
    whole: &Formula,
    vars: &[String],
    body: &Formula,
    env: &Environment,
    existential: bool,
) -> bool {
    let domain = quantification_domain(db, whole);
    // Enumerate assignments of the quantified block over the domain.
    let mut stack: Vec<Environment> = vec![env.clone()];
    for var in vars {
        let mut next = Vec::with_capacity(stack.len() * domain.len());
        for partial in &stack {
            for value in &domain {
                let mut extended = partial.clone();
                extended.insert(var.clone(), value.clone());
                next.push(extended);
            }
        }
        stack = next;
    }
    if existential {
        stack.iter().any(|e| satisfies_with(db, body, e))
    } else {
        stack.iter().all(|e| satisfies_with(db, body, e))
    }
}

fn resolve(term: &FoTerm, env: &Environment) -> Value {
    match term {
        FoTerm::Const(c) => Value::Const(c.clone()),
        FoTerm::Var(v) => env
            .get(v)
            .cloned()
            .unwrap_or_else(|| panic!("unbound variable {v} during formula evaluation")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::diagram::{cwa_theory, owa_theory};
    use relmodel::builder::tableau_example;
    use relmodel::valuation::Valuation;
    use relmodel::value::{Constant, NullId};
    use relmodel::DatabaseBuilder;

    #[test]
    fn atoms_and_connectives() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[1, 2])
            .build();
        let present = Formula::atom("R", vec![FoTerm::int(1), FoTerm::int(2)]);
        let absent = Formula::atom("R", vec![FoTerm::int(2), FoTerm::int(1)]);
        assert!(satisfies(&db, &present));
        assert!(!satisfies(&db, &absent));
        assert!(satisfies(
            &db,
            &present.clone().and(absent.clone().negate())
        ));
        assert!(satisfies(&db, &absent.clone().or(present.clone())));
        assert!(satisfies(&db, &absent.clone().implies(Formula::False)));
        assert!(satisfies(&db, &Formula::True));
        assert!(!satisfies(&db, &Formula::False));
    }

    #[test]
    fn quantifiers_over_active_domain() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[1, 2])
            .ints("R", &[2, 3])
            .build();
        // ∃x,y R(x,y) ∧ R(y, 3)
        let f = Formula::exists(
            vec!["x".into(), "y".into()],
            Formula::atom("R", vec![FoTerm::var("x"), FoTerm::var("y")])
                .and(Formula::atom("R", vec![FoTerm::var("y"), FoTerm::int(3)])),
        );
        assert!(satisfies(&db, &f));
        // ∀x,y (R(x,y) → ∃z R(y,z)) fails: (2,3) has no successor of 3.
        let g = Formula::forall(
            vec!["x".into(), "y".into()],
            Formula::atom("R", vec![FoTerm::var("x"), FoTerm::var("y")]).implies(Formula::exists(
                vec!["z".into()],
                Formula::atom("R", vec![FoTerm::var("y"), FoTerm::var("z")]),
            )),
        );
        assert!(!satisfies(&db, &g));
    }

    #[test]
    fn constants_outside_active_domain_are_included() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .ints("R", &[1])
            .build();
        // ∃x (x = 5) — 5 is not in the active domain but is a formula constant.
        let f = Formula::exists(
            vec!["x".into()],
            Formula::Eq(FoTerm::var("x"), FoTerm::int(5)),
        );
        assert!(satisfies(&db, &f));
    }

    #[test]
    fn owa_theory_holds_in_owa_worlds() {
        // The §4 duality: Mod_C(δ_D) ⊇ worlds obtained by valuations + extra tuples.
        let d = tableau_example();
        let theory = owa_theory(&d);
        let v = Valuation::from_pairs(vec![(NullId(0), Constant::Int(7))]);
        let mut world = d.apply(&v).unwrap();
        assert!(satisfies(&world, &theory));
        // adding tuples keeps an OWA model a model
        world
            .insert("R", relmodel::Tuple::ints(&[100, 200]))
            .unwrap();
        assert!(satisfies(&world, &theory));
        // but the CWA theory rejects the extended world
        assert!(!satisfies(&world, &cwa_theory(&d)));
    }

    #[test]
    fn cwa_theory_holds_exactly_in_cwa_worlds() {
        let d = tableau_example();
        let theory = cwa_theory(&d);
        let v = Valuation::from_pairs(vec![(NullId(0), Constant::Int(7))]);
        let world = d.apply(&v).unwrap();
        assert!(satisfies(&world, &theory));
        // a world that drops a tuple is not a CWA (nor OWA) model
        let smaller = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[1, 7])
            .build();
        assert!(!satisfies(&smaller, &theory));
    }

    #[test]
    #[should_panic(expected = "free variables")]
    fn sentences_only() {
        let db = DatabaseBuilder::new().relation("R", &["a"]).build();
        eval_sentence(&db, &Formula::atom("R", vec![FoTerm::var("x")]));
    }
}
