//! Errors produced by the evaluators.

use std::fmt;

use relalgebra::typecheck::TypeError;
use relmodel::ModelError;

/// Errors raised during query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The query does not type-check against the database schema.
    Type(TypeError),
    /// A model-level error (unknown relation, arity mismatch) occurred.
    Model(ModelError),
    /// The evaluator requires a complete database but the input has nulls.
    IncompleteInput {
        /// Number of distinct nulls found.
        nulls: usize,
    },
    /// World enumeration would exceed the configured budget.
    WorldBudgetExceeded {
        /// Number of worlds that would have to be enumerated.
        worlds: u128,
        /// The configured maximum.
        budget: u128,
    },
    /// The valuation domain is empty while the database has nulls, so there
    /// are **zero** possible worlds. An intersection over zero worlds is the
    /// universal relation, not the empty one — silently returning ∅ as "the
    /// certain answer" would be unsound, so this is an error instead.
    EmptyDomain {
        /// Number of distinct nulls that have no constant to be valued to.
        nulls: usize,
    },
    /// The symbolic c-table strategy declined to answer — never a wrong
    /// answer, always a signal to fall back to another strategy (a
    /// dispatching engine catches this and degrades explicitly; a caller who
    /// forced the symbolic strategy sees the error).
    SymbolicPunt(crate::symbolic::PuntReason),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Type(e) => write!(f, "type error: {e}"),
            EvalError::Model(e) => write!(f, "model error: {e}"),
            EvalError::IncompleteInput { nulls } => {
                write!(
                    f,
                    "evaluator requires a complete database, found {nulls} null(s)"
                )
            }
            EvalError::WorldBudgetExceeded { worlds, budget } => {
                write!(
                    f,
                    "world enumeration needs {worlds} worlds, exceeding the budget of {budget}"
                )
            }
            EvalError::EmptyDomain { nulls } => {
                write!(
                    f,
                    "empty valuation domain with {nulls} null(s): zero possible worlds, \
                     certain answers are undefined"
                )
            }
            EvalError::SymbolicPunt(reason) => {
                write!(f, "symbolic strategy punted: {reason}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<TypeError> for EvalError {
    fn from(e: TypeError) -> Self {
        EvalError::Type(e)
    }
}

impl From<ModelError> for EvalError {
    fn from(e: ModelError) -> Self {
        EvalError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EvalError = TypeError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("type error"));
        let e: EvalError = ModelError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("model error"));
        let e = EvalError::IncompleteInput { nulls: 3 };
        assert!(e.to_string().contains("3 null"));
        let e = EvalError::WorldBudgetExceeded {
            worlds: 100,
            budget: 10,
        };
        assert!(e.to_string().contains("budget"));
        let e = EvalError::EmptyDomain { nulls: 2 };
        assert!(e.to_string().contains("zero possible worlds"));
    }
}
