//! Sound approximation of certain answers for **full** relational algebra
//! under CWA, by pair evaluation.
//!
//! Beyond the fragment where naïve evaluation is exact, certain answers are
//! coNP-hard (paper §2), and neither naïve evaluation nor SQL's 3VL is even
//! *sound*: each can return tuples that are not certain. Following the
//! approximation-scheme line of work that grew out of this paper (Guagliardo
//! & Libkin, "Making SQL queries correct on incomplete databases", PODS
//! 2016), this module evaluates every subexpression to a **pair** of
//! relations:
//!
//! * `certain` — an under-approximation: for every valuation `v`, each tuple
//!   `t` here satisfies `v(t) ∈ Q(v(D))`;
//! * `possible` — an over-approximation: every tuple of `Q(v(D))`, for any
//!   `v`, is `v(s)` for some `s` here.
//!
//! The two sides feed each other exactly where naïveté goes wrong: a tuple is
//! *certainly* in `A − B` only if it is certainly in `A` and **unifies with
//! nothing possibly in** `B`; it is *possibly* in `A − B` unless it is
//! certainly in `B`. Selections use the marked-null-aware three-valued
//! predicate semantics ([`Predicate::eval_3vl_marked`](relalgebra::predicate::Predicate::eval_3vl_marked)): its `True` holds
//! under every valuation, its `False` under none.
//!
//! The classical (null-free) sound certain answer is
//! `eval_approx(..).certain.complete_part()`; the engine's
//! `SoundApproximation` strategy is this computation.

use std::collections::BTreeMap;

use relalgebra::ast::RaExpr;
use relalgebra::typecheck::output_arity;
use relmodel::value::{Constant, NullId, Value};
use relmodel::{Database, Relation, Tuple};

use crate::error::EvalError;

/// The result of pair evaluation: an under- and an over-approximation of the
/// query's answer across all valuations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproxAnswer {
    /// Under-approximation: tuples certainly in the answer (object-level —
    /// may contain nulls; take [`Relation::complete_part`] for the classical
    /// certain answer).
    pub certain: Relation,
    /// Over-approximation: a cover of every possible answer tuple.
    pub possible: Relation,
}

/// Pair-evaluates an expression after typechecking it.
pub fn eval_approx(expr: &RaExpr, db: &Database) -> Result<ApproxAnswer, EvalError> {
    output_arity(expr, db.schema())?;
    Ok(eval_approx_unchecked(expr, db))
}

/// Pair-evaluates without re-running the type checker (callers guarantee the
/// expression type-checks against the database schema).
pub fn eval_approx_unchecked(expr: &RaExpr, db: &Database) -> ApproxAnswer {
    match expr {
        RaExpr::Relation(name) => {
            let rel = db
                .relation(name)
                .expect("type checker guarantees the relation exists");
            ApproxAnswer {
                certain: rel.clone(),
                possible: rel.clone(),
            }
        }
        RaExpr::Values(rel) => ApproxAnswer {
            // Literal nulls are *rigid*: possible worlds value the nulls of
            // the database, never those of the query, so a literal ⊥ᵢ is
            // never certainly equal to anything — putting it on the certain
            // side would let downstream operators (e.g. a selection equating
            // it with a database ⊥ᵢ) derive complete tuples that hold in no
            // world. Only the complete literal tuples are certain; the full
            // literal stays on the possible side, where treating its nulls
            // as bindable merely over-covers (which is the sound direction).
            certain: rel.complete_part(),
            possible: rel.clone(),
        },
        RaExpr::Delta => {
            // The diagonal over the active domain: (x, x) is certainly in Δ
            // for every x occurring in the database, and every world's
            // diagonal entry is the valuation of one of them.
            let mut out = Relation::new(2);
            for v in db.active_domain() {
                out.insert(Tuple::new(vec![v.clone(), v]));
            }
            ApproxAnswer {
                certain: out.clone(),
                possible: out,
            }
        }
        RaExpr::Select(e, p) => {
            let input = eval_approx_unchecked(e, db);
            let mut certain = Relation::new(input.certain.arity());
            for t in input.certain.iter() {
                if p.eval_3vl_marked(t).is_true() {
                    certain.insert(t.clone());
                }
            }
            let mut possible = Relation::new(input.possible.arity());
            for t in input.possible.iter() {
                // Keep unless certainly false: some valuation may satisfy p.
                if p.eval_3vl_marked(t) != relmodel::value::Truth::False {
                    possible.insert(t.clone());
                }
            }
            ApproxAnswer { certain, possible }
        }
        RaExpr::Project(e, cols) => {
            let input = eval_approx_unchecked(e, db);
            ApproxAnswer {
                certain: project(&input.certain, cols),
                possible: project(&input.possible, cols),
            }
        }
        RaExpr::Product(a, b) => {
            let left = eval_approx_unchecked(a, db);
            let right = eval_approx_unchecked(b, db);
            ApproxAnswer {
                certain: product(&left.certain, &right.certain),
                possible: product(&left.possible, &right.possible),
            }
        }
        RaExpr::Union(a, b) => {
            let left = eval_approx_unchecked(a, db);
            let right = eval_approx_unchecked(b, db);
            ApproxAnswer {
                certain: left.certain.union(&right.certain),
                possible: left.possible.union(&right.possible),
            }
        }
        RaExpr::Intersection(a, b) => {
            let left = eval_approx_unchecked(a, db);
            let right = eval_approx_unchecked(b, db);
            // Certainly in both: syntactic equality is the only certain
            // equality across valuations.
            let certain = left.certain.intersection(&right.certain);
            // Possibly in both: some valuation makes t equal to a tuple
            // possibly in the right side.
            let mut possible = Relation::new(left.possible.arity());
            for t in left.possible.iter() {
                if right.possible.iter().any(|s| unifiable(t, s)) {
                    possible.insert(t.clone());
                }
            }
            ApproxAnswer { certain, possible }
        }
        RaExpr::Difference(a, b) => {
            let left = eval_approx_unchecked(a, db);
            let right = eval_approx_unchecked(b, db);
            // Certainly in A and not even *possibly* equal to anything
            // possibly in B.
            let mut certain = Relation::new(left.certain.arity());
            for t in left.certain.iter() {
                if !right.possible.iter().any(|s| unifiable(t, s)) {
                    certain.insert(t.clone());
                }
            }
            // Possibly in A and not certainly in B.
            let mut possible = Relation::new(left.possible.arity());
            for t in left.possible.iter() {
                if !right.certain.contains(t) {
                    possible.insert(t.clone());
                }
            }
            ApproxAnswer { certain, possible }
        }
        RaExpr::Divide(a, b) => {
            let dividend = eval_approx_unchecked(a, db);
            let divisor = eval_approx_unchecked(b, db);
            let prefix_arity = dividend.certain.arity() - divisor.certain.arity();
            let prefix_cols: Vec<usize> = (0..prefix_arity).collect();
            // A prefix is certainly in A ÷ B if pairing it with anything
            // possibly in B lands certainly in A.
            let mut certain = Relation::new(prefix_arity);
            for t in dividend.certain.iter() {
                let prefix = t.project(&prefix_cols);
                if divisor
                    .possible
                    .iter()
                    .all(|s| dividend.certain.contains(&prefix.concat(s)))
                {
                    certain.insert(prefix);
                }
            }
            // Every world's division result is a prefix of that world's
            // dividend, so the possible prefixes cover it.
            ApproxAnswer {
                certain,
                possible: project(&dividend.possible, &prefix_cols),
            }
        }
    }
}

fn project(rel: &Relation, cols: &[usize]) -> Relation {
    Relation::from_tuples(cols.len(), rel.iter().map(|t| t.project(cols)))
}

fn product(a: &Relation, b: &Relation) -> Relation {
    let mut out = Vec::with_capacity(a.len().saturating_mul(b.len()));
    for l in a.iter() {
        for r in b.iter() {
            out.push(l.concat(r));
        }
    }
    Relation::from_tuples(a.arity() + b.arity(), out)
}

/// Is there a valuation `v` with `v(t) = v(s)`?
///
/// Positionally pairs the tuples and solves the resulting equality
/// constraints: constants must match outright, a null may be bound to one
/// constant, and nulls equated with each other form classes (union-find) that
/// may carry at most one constant.
pub fn unifiable(t: &Tuple, s: &Tuple) -> bool {
    if t.arity() != s.arity() {
        return false;
    }
    unifiable_pairs(t.values().iter().zip(s.values().iter()))
}

/// [`unifiable`] over positionally paired values, without requiring
/// materialized tuples — the columnar set operators feed batch rows to this
/// column by column. The caller is responsible for pairing rows of equal
/// arity.
pub fn unifiable_pairs<'a>(pairs: impl IntoIterator<Item = (&'a Value, &'a Value)>) -> bool {
    let mut uf = UnionFind::default();
    for (x, y) in pairs {
        let ok = match (x, y) {
            (Value::Const(a), Value::Const(b)) => a == b,
            (Value::Null(n), Value::Const(c)) | (Value::Const(c), Value::Null(n)) => {
                uf.bind(*n, c.clone())
            }
            (Value::Null(a), Value::Null(b)) => uf.union(*a, *b),
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Union-find over null ids with at most one constant binding per class.
#[derive(Debug, Default)]
struct UnionFind {
    parent: BTreeMap<NullId, NullId>,
    binding: BTreeMap<NullId, Constant>,
}

impl UnionFind {
    fn find(&mut self, n: NullId) -> NullId {
        let p = *self.parent.entry(n).or_insert(n);
        if p == n {
            return n;
        }
        let root = self.find(p);
        self.parent.insert(n, root);
        root
    }

    /// Binds the class of `n` to constant `c`; false on conflict.
    fn bind(&mut self, n: NullId, c: Constant) -> bool {
        let root = self.find(n);
        match self.binding.get(&root) {
            Some(existing) => *existing == c,
            None => {
                self.binding.insert(root, c);
                true
            }
        }
    }

    /// Merges the classes of `a` and `b`; false if their bindings conflict.
    fn union(&mut self, a: NullId, b: NullId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        match (
            self.binding.get(&ra).cloned(),
            self.binding.get(&rb).cloned(),
        ) {
            (Some(x), Some(y)) if x != y => return false,
            (Some(x), None) => {
                self.binding.insert(rb, x);
            }
            _ => {}
        }
        self.parent.insert(ra, rb);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::builder::orders_and_payments_example;
    use relmodel::DatabaseBuilder;

    #[test]
    fn unification_cases() {
        let n = |i| Value::null(i);
        let c = |i| Value::int(i);
        // (⊥0, 1) ~ (2, ⊥1): bind ⊥0=2, ⊥1=1.
        assert!(unifiable(
            &Tuple::new(vec![n(0), c(1)]),
            &Tuple::new(vec![c(2), n(1)])
        ));
        // (⊥0, ⊥0) ~ (1, 2): ⊥0 cannot be both.
        assert!(!unifiable(
            &Tuple::new(vec![n(0), n(0)]),
            &Tuple::new(vec![c(1), c(2)])
        ));
        // (⊥0, ⊥1) ~ (⊥1, ⊥0): one class, no constants — fine.
        assert!(unifiable(
            &Tuple::new(vec![n(0), n(1)]),
            &Tuple::new(vec![n(1), n(0)])
        ));
        // (⊥0, 1, ⊥0) ~ (⊥1, ⊥1, 2): chain forces 1 = 2.
        assert!(!unifiable(
            &Tuple::new(vec![n(0), c(1), n(0)]),
            &Tuple::new(vec![n(1), n(1), c(2)])
        ));
        // Mismatched constants fail immediately.
        assert!(!unifiable(&Tuple::ints(&[1]), &Tuple::ints(&[2])));
        assert!(unifiable(&Tuple::ints(&[1, 2]), &Tuple::ints(&[1, 2])));
        // Arity mismatch never unifies.
        assert!(!unifiable(&Tuple::ints(&[1]), &Tuple::ints(&[1, 1])));
    }

    #[test]
    fn certain_side_fixes_the_naive_difference_failure() {
        // π_A(R − S) with R = {(1,⊥0)}, S = {(1,⊥1)}: naïve evaluation says
        // {1}; the certain answer is ∅ because (1,⊥0) unifies with (1,⊥1).
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .tuple("S", vec![Value::int(1), Value::null(1)])
            .build();
        let q = RaExpr::relation("R")
            .difference(RaExpr::relation("S"))
            .project(vec![0]);
        let out = eval_approx(&q, &db).unwrap();
        assert!(out.certain.is_empty());
        assert!(out.possible.contains(&Tuple::ints(&[1])));
    }

    #[test]
    fn certain_side_fixes_the_3vl_double_negation_failure() {
        // S − (S − R) with S = {1}, R = {⊥}: SQL's 3VL returns {1} (the inner
        // difference drops 1 because membership is unknown, the outer keeps
        // it), but 1 is not certain — ⊥ may differ from 1.
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"])
            .ints("S", &[1])
            .tuple("R", vec![Value::null(0)])
            .build();
        let q = RaExpr::relation("S")
            .difference(RaExpr::relation("S").difference(RaExpr::relation("R")));
        let sql = crate::three_valued::eval_3vl(&q, &db).unwrap();
        assert_eq!(sql.len(), 1, "3VL over-reports here");
        let out = eval_approx(&q, &db).unwrap();
        assert!(out.certain.is_empty());
    }

    #[test]
    fn tautological_selection_is_certain() {
        // The paper's §1 tautology: unlike plain 3VL, the marked-null
        // predicate semantics keeps the row with the null order id — the
        // disjunction is true under every valuation... for a *shared* null it
        // is Unknown OR Unknown, so only naïve-style reasoning gets it. The
        // certain side must therefore *not* over-claim either: it may miss
        // the tuple (sound ≠ complete) but never invent one.
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Pay")
            .select(
                Predicate::eq(Operand::col(1), Operand::str("oid1"))
                    .or(Predicate::neq(Operand::col(1), Operand::str("oid1"))),
            )
            .project(vec![0]);
        let out = eval_approx(&q, &db).unwrap();
        let truth = crate::worlds::certain_answer_worlds(
            &q,
            &db,
            relmodel::Semantics::Cwa,
            &crate::worlds::WorldOptions::default(),
        )
        .unwrap();
        assert!(out.certain.complete_part().is_subset(&truth));
    }

    #[test]
    fn agrees_with_naive_on_positive_queries() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Order")
            .project(vec![0])
            .union(RaExpr::relation("Pay").project(vec![1]));
        let out = eval_approx(&q, &db).unwrap();
        let naive = crate::naive::eval_naive(&q, &db).unwrap();
        assert_eq!(
            out.certain, naive,
            "positive queries lose nothing in pair evaluation"
        );
        assert_eq!(out.possible, naive);
    }

    #[test]
    fn null_bearing_literals_never_reach_the_certain_side() {
        // D = { R(1, ⊥0) }, Q = π_{0,3}(σ_{#1 = #2}(R × {(⊥0, 7)})): naïve
        // evaluation equates the database ⊥0 with the rigid literal ⊥0 and
        // emits the complete tuple (1, 7), which holds in *no* world. The
        // pair evaluator must keep the literal null off the certain side.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .build();
        let lit = RaExpr::values(Relation::from_tuples(
            2,
            vec![Tuple::new(vec![Value::null(0), Value::int(7)])],
        ));
        let q = RaExpr::relation("R")
            .product(lit)
            .select(Predicate::eq(Operand::col(1), Operand::col(2)))
            .project(vec![0, 3]);
        let naive = crate::naive::eval_naive(&q, &db).unwrap();
        assert!(naive.contains(&Tuple::ints(&[1, 7])), "naïve over-reports");
        let out = eval_approx(&q, &db).unwrap();
        assert!(out.certain.is_empty());
        let truth = crate::worlds::certain_answer_worlds(
            &q,
            &db,
            relmodel::Semantics::Cwa,
            &crate::worlds::WorldOptions::default(),
        )
        .unwrap();
        assert!(
            truth.is_empty(),
            "ground truth: the join fails in every world"
        );
    }

    #[test]
    fn division_certain_side_is_sound() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .ints("R", &[2, 20])
            .ints("S", &[10])
            .ints("S", &[20])
            .build();
        let q = RaExpr::relation("R").divide(RaExpr::relation("S"));
        let out = eval_approx(&q, &db).unwrap();
        assert_eq!(out.certain.len(), 1);
        assert!(out.certain.contains(&Tuple::ints(&[1])));
        assert!(out.possible.contains(&Tuple::ints(&[2])));
    }

    #[test]
    fn typechecks_inputs() {
        let db = orders_and_payments_example();
        assert!(eval_approx(&RaExpr::relation("Nope"), &db).is_err());
    }
}
