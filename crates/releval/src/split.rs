//! Subtree-split execution: evaluate the **ground** regions of a plan once
//! on the plain physical executor and substitute the results as complete
//! literal relations, leaving only the world-dependent remainder for the
//! symbolic / enumeration machinery.
//!
//! Soundness: a ground subtree (null-free reach, per the analyzer's
//! [`relalgebra::analysis::NodeFacts::ground`]) evaluates to the *same*
//! complete relation in every possible world under CWA, so replacing it by
//! that relation preserves the query's value world-by-world — and hence its
//! certain answer. Under OWA the engine only performs the split when the
//! whole query is monotone, where OWA and CWA certain answers coincide.
//! The rewrite realises the analyzer's
//! [`relalgebra::analysis::NodeFacts::split_class`]: what is left after
//! inlining is exactly the fragment that field reports.

use relalgebra::analysis::{analyze, AnalyzedNode, NullCensus};
use relalgebra::ast::RaExpr;
use relalgebra::plan::PlannedQuery;
use relmodel::{Database, Relation};

use crate::exec::columnar::execute;

/// The result of [`inline_ground_subtrees`].
#[derive(Debug, Clone)]
pub struct SplitOutcome {
    /// The rewritten query: maximal ground proper subtrees replaced by
    /// complete `Values` literals.
    pub expr: RaExpr,
    /// How many subtrees were evaluated and inlined.
    pub inlined: usize,
}

/// Rewrites `expr`, evaluating every **maximal** ground proper subtree
/// larger than a leaf on the plain executor and inlining the result as a
/// complete literal relation. The root itself is never inlined (a ground
/// root means the whole query is naïve-exact; no split is needed).
pub fn inline_ground_subtrees(expr: &RaExpr, db: &Database, census: &NullCensus) -> SplitOutcome {
    let analysis = analyze(expr, census);
    let mut inlined = 0;
    let expr = rewrite(expr, analysis.node(), db, true, &mut inlined);
    SplitOutcome { expr, inlined }
}

fn rewrite(
    expr: &RaExpr,
    node: &AnalyzedNode,
    db: &Database,
    is_root: bool,
    inlined: &mut usize,
) -> RaExpr {
    if !is_root && node.facts.ground && node.facts.size > 1 {
        if let Some(rel) = evaluate_ground(expr, db) {
            *inlined += 1;
            return RaExpr::values(rel);
        }
        // Defensive: an unplannable subtree (cannot happen for a subtree of
        // a typechecked query) is left in place.
        return expr.clone();
    }
    match expr {
        RaExpr::Relation(_) | RaExpr::Values(_) | RaExpr::Delta => expr.clone(),
        RaExpr::Select(e, p) => RaExpr::Select(
            Box::new(rewrite(e, &node.children[0], db, false, inlined)),
            p.clone(),
        ),
        RaExpr::Project(e, cols) => RaExpr::Project(
            Box::new(rewrite(e, &node.children[0], db, false, inlined)),
            cols.clone(),
        ),
        RaExpr::Product(a, b) => RaExpr::Product(
            Box::new(rewrite(a, &node.children[0], db, false, inlined)),
            Box::new(rewrite(b, &node.children[1], db, false, inlined)),
        ),
        RaExpr::Union(a, b) => RaExpr::Union(
            Box::new(rewrite(a, &node.children[0], db, false, inlined)),
            Box::new(rewrite(b, &node.children[1], db, false, inlined)),
        ),
        RaExpr::Intersection(a, b) => RaExpr::Intersection(
            Box::new(rewrite(a, &node.children[0], db, false, inlined)),
            Box::new(rewrite(b, &node.children[1], db, false, inlined)),
        ),
        RaExpr::Difference(a, b) => RaExpr::Difference(
            Box::new(rewrite(a, &node.children[0], db, false, inlined)),
            Box::new(rewrite(b, &node.children[1], db, false, inlined)),
        ),
        RaExpr::Divide(a, b) => RaExpr::Divide(
            Box::new(rewrite(a, &node.children[0], db, false, inlined)),
            Box::new(rewrite(b, &node.children[1], db, false, inlined)),
        ),
    }
}

fn evaluate_ground(expr: &RaExpr, db: &Database) -> Option<Relation> {
    let plan = PlannedQuery::new(expr.clone(), db.schema()).ok()?;
    Some(execute(plan.physical(), db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::classify::{classify, QueryClass};
    use relmodel::{DatabaseBuilder, Value};

    /// R(a,b) with a null; S(a), T(a,b) complete.
    fn db() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["a"])
            .relation("T", &["a", "b"])
            .ints("R", &[1, 10])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .ints("S", &[1])
            .ints("S", &[5])
            .ints("T", &[1, 2])
            .ints("T", &[5, 6])
            .build()
    }

    #[test]
    fn inlines_the_ground_difference_and_leaves_the_rest() {
        let db = db();
        let census = NullCensus::of_database(&db);
        // (S − π#0(T)) ∪ π#0(R): the difference is ground, the union top is
        // not.
        let core = RaExpr::relation("S").difference(RaExpr::relation("T").project(vec![0]));
        let q = core.union(RaExpr::relation("R").project(vec![0]));
        assert_eq!(classify(&q), QueryClass::FullRa);
        let outcome = inline_ground_subtrees(&q, &db, &census);
        assert_eq!(outcome.inlined, 1);
        // The remainder is positive — exactly the analyzer's split_class.
        assert_eq!(classify(&outcome.expr), QueryClass::Positive);
        // And the inlined literal holds S − π#0(T) = ∅ (S ⊆ π#0(T) here is
        // false: S = {1,5}, π#0(T) = {1,5} → empty difference).
        match &outcome.expr {
            RaExpr::Union(a, _) => match a.as_ref() {
                RaExpr::Values(rel) => {
                    assert!(rel.is_complete());
                    assert_eq!(rel.len(), 0);
                }
                other => panic!("expected inlined literal, got {other}"),
            },
            other => panic!("expected union, got {other}"),
        }
    }

    #[test]
    fn maximal_regions_only_and_no_root_inlining() {
        let db = db();
        let census = NullCensus::of_database(&db);
        // A fully ground query: the root is never inlined, and the maximal
        // proper subtrees are its two operands.
        let q = RaExpr::relation("S")
            .product(RaExpr::relation("T").project(vec![0]))
            .difference(RaExpr::relation("T"));
        let outcome = inline_ground_subtrees(&q, &db, &census);
        // Left operand (product, size 4) and right leaf: only the product
        // is larger than a leaf, so exactly one inline.
        assert_eq!(outcome.inlined, 1);
        assert!(matches!(
            &outcome.expr,
            RaExpr::Difference(a, _) if matches!(a.as_ref(), RaExpr::Values(_))
        ));
    }

    #[test]
    fn nothing_to_inline_leaves_the_query_unchanged() {
        let db = db();
        let census = NullCensus::of_database(&db);
        let q = RaExpr::relation("S").difference(RaExpr::relation("R").project(vec![1]));
        let outcome = inline_ground_subtrees(&q, &db, &census);
        assert_eq!(outcome.inlined, 0);
        assert_eq!(outcome.expr, q);
    }
}
