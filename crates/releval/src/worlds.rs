//! Possible-world (ground-truth) certain answers, computed by **streaming**.
//!
//! The classical definition (equation (1) of the paper) is
//! `certain(Q, D) = ⋂ { Q(D') | D' ∈ [[D]] }`. This module computes it by
//! folding that intersection world-by-world over a [`relmodel::WorldIter`] —
//! worlds are never materialized into a `Vec<Database>`. The fold has three
//! properties the materializing implementation lacked:
//!
//! * **O(threads) worlds in memory.** Each worker holds one world (plus one
//!   OWA extension) at a time; the old path held `|domain|^|nulls|` complete
//!   databases before evaluating anything.
//! * **Early exit.** The running intersection only shrinks, so the moment it
//!   hits ∅ the certain answer *is* ∅ and enumeration stops — on many hard
//!   queries that happens after a handful of worlds out of millions.
//! * **Parallelism.** The valuation space is sharded into contiguous ranges
//!   across `std::thread` workers; each worker folds its shard locally and
//!   the shard intersections are merged at the join. A worker whose local
//!   intersection empties signals the others to stop (its local fold is a
//!   superset of the global one, so ∅ locally proves ∅ globally).
//!
//! Enumeration cost is still exponential in the number of nulls — that is
//! precisely the complexity gap the paper discusses, and the reason this code
//! serves as *ground truth* for validating the efficient evaluators rather
//! than as a production algorithm. The [`WorldOptions::max_worlds`] budget
//! bounds the number of worlds **visited**: with early exit, queries whose
//! a-priori world count dwarfs the budget can still finish (and finish
//! correctly) if the intersection collapses early.
//!
//! Since the physical-plan refactor the fold **lowers the query once** and
//! executes the shared [`PhysicalPlan`] in every world through
//! [`crate::exec`]: no per-world re-typechecking, no per-world logical tree
//! walk, hash joins instead of `σ(A×B)` loops, and the active-domain
//! diagonal `Δ` computed once per world execution instead of once per `Δ`
//! node evaluation.
//!
//! Since the morsel-native refactor the fold is **batched**: a world is
//! never materialized as a `Database` at all. Each worker partitions every
//! relation once into an [`OverlayBatch`] — the ground rows (identical in
//! every world) and the symbolic remainder — and per world only resolves
//! the symbolic rows into a reused scratch batch, executing the shared plan
//! through [`crate::exec::columnar::split::ShardExec`]. Stable subresults
//! and the hash tables over them (join build sides, membership tables) are
//! computed for the first world of a shard and reused by every later one,
//! so the marginal cost of a world is proportional to its handful of
//! volatile rows. The intersection itself distributes the same way: with
//! every world's answer of the form `S ∪ Vᵢ` for a shard-constant `S`,
//! `⋂ᵢ (S ∪ Vᵢ) = S ∪ ⋂ᵢ Vᵢ` — the fold intersects only the volatile
//! parts and unions `S` in once, at the end of the shard. The row fold is
//! retained as [`stream_certain_answer_rows`], the differential reference
//! and benchmark baseline.

use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use relalgebra::ast::RaExpr;
use relalgebra::physical::PhysicalPlan;
use relalgebra::plan::PlannedQuery;
use relmodel::batch::{morsel_rows, ColumnBatch, OverlayBatch};
use relmodel::semantics::{adequate_domain, all_complete_tuples, BoundedSubsetIter, WorldIter};
use relmodel::valuation::ValuationEnumerator;
use relmodel::value::{Constant, NullId, Value};
use relmodel::{Database, Relation, Semantics, Tuple};

use crate::error::EvalError;
use crate::exec::columnar::split::{ElementInput, ShardExec, ShardSetup};
use crate::exec::{self, OpStats};

/// Options controlling possible-world enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldOptions {
    /// Number of fresh constants to add to the valuation domain; `None` means
    /// "one per null plus one", which is adequate for generic queries.
    pub extra_fresh: Option<usize>,
    /// Under OWA, the maximum number of extra tuples added to each world.
    /// Zero is adequate for monotone queries (adding tuples only grows their
    /// answers); larger values let tests probe non-monotone queries.
    pub max_owa_extra: usize,
    /// Budget on the number of worlds *visited* by the streaming fold (and,
    /// for the materializing helpers, on the a-priori valuation count).
    pub max_worlds: u128,
    /// Worker threads for the streaming fold; `None` chooses automatically
    /// from the machine's parallelism (small workloads stay single-threaded).
    pub threads: Option<usize>,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            extra_fresh: None,
            max_owa_extra: 0,
            max_worlds: 5_000_000,
            threads: None,
        }
    }
}

impl WorldOptions {
    /// Options with a specific number of fresh constants.
    pub fn with_fresh(fresh: usize) -> Self {
        WorldOptions {
            extra_fresh: Some(fresh),
            ..WorldOptions::default()
        }
    }

    /// Options that extend OWA worlds with up to `extra` additional tuples.
    pub fn with_owa_extra(extra: usize) -> Self {
        WorldOptions {
            max_owa_extra: extra,
            ..WorldOptions::default()
        }
    }

    /// Options pinning the streaming fold to a specific worker-thread count.
    pub fn with_threads(threads: usize) -> Self {
        WorldOptions {
            threads: Some(threads.max(1)),
            ..WorldOptions::default()
        }
    }
}

/// Builds the valuation domain used for world enumeration of `expr` over `db`.
pub fn valuation_domain(
    expr: &RaExpr,
    db: &Database,
    opts: &WorldOptions,
) -> Vec<relmodel::value::Constant> {
    let fresh = opts.extra_fresh.unwrap_or_else(|| db.null_ids().len() + 1);
    adequate_domain(db, &expr.constants(), fresh)
}

/// `|domain|^|nulls|`: the valuation count shared by the planner's estimate
/// and the enumerator's budget check — delegating to relmodel's single
/// source of truth so the shard partitioning and the enumerator can never
/// disagree about the space size.
fn valuation_count(domain_len: usize, nulls: usize) -> u128 {
    relmodel::valuation::valuation_space_size(nulls, domain_len)
}

/// The number of valuations world enumeration would have to visit for `expr`
/// over `db` — `|domain|^|nulls|` — without enumerating anything. This is the
/// planner-side cost estimate that lets callers decide *whether* to pay for
/// ground truth before committing to it; the streaming fold may visit far
/// fewer worlds than this upper bound when it exits early.
pub fn estimated_world_count(expr: &RaExpr, db: &Database, opts: &WorldOptions) -> u128 {
    let domain = valuation_domain(expr, db, opts);
    valuation_count(domain.len(), db.null_ids().len())
}

/// The shared enumeration prologue: builds the valuation domain, guards
/// against the zero-world trap (an empty valuation domain with nulls present
/// denotes **no** possible worlds, and every "certain answer" over zero
/// worlds would be vacuously wrong), and resolves the OWA extension bound
/// for the requested semantics.
fn enumeration_setup(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<(Vec<relmodel::value::Constant>, usize), EvalError> {
    let domain = valuation_domain(expr, db, opts);
    let nulls = db.null_ids().len();
    if nulls > 0 && domain.is_empty() {
        return Err(EvalError::EmptyDomain { nulls });
    }
    let max_extra = match semantics {
        Semantics::Cwa => 0,
        Semantics::Owa => opts.max_owa_extra,
    };
    Ok((domain, max_extra))
}

/// The a-priori budget check used by the materializing helpers, which must
/// refuse *before* enumerating: the streaming fold instead bounds worlds
/// visited (see [`Budgeted`]).
fn check_apriori_budget(world_count: u128, opts: &WorldOptions) -> Result<(), EvalError> {
    if world_count > opts.max_worlds {
        return Err(EvalError::WorldBudgetExceeded {
            worlds: world_count,
            budget: opts.max_worlds,
        });
    }
    Ok(())
}

/// Iterator adapter enforcing the visited-worlds budget on a world stream:
/// yields `Ok(world)` until the budget is exceeded, then a single
/// `Err(WorldBudgetExceeded)`. Single source of truth for the single-threaded
/// streaming consumers (the sharded fold counts across workers atomically).
struct Budgeted<I> {
    inner: I,
    visited: u128,
    budget: u128,
    exhausted: bool,
}

fn budgeted<I: Iterator<Item = Database>>(inner: I, budget: u128) -> Budgeted<I> {
    Budgeted {
        inner,
        visited: 0,
        budget,
        exhausted: false,
    }
}

impl<I: Iterator<Item = Database>> Iterator for Budgeted<I> {
    type Item = Result<Database, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.exhausted {
            return None;
        }
        let world = self.inner.next()?;
        self.visited += 1;
        if self.visited > self.budget {
            self.exhausted = true;
            return Some(Err(EvalError::WorldBudgetExceeded {
                worlds: self.visited,
                budget: self.budget,
            }));
        }
        Some(Ok(world))
    }
}

/// Telemetry from one streaming certain-answer execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldExecution {
    /// The certain answer — `⋂ Q(D')` over the visited worlds.
    pub answers: Relation,
    /// Worlds actually evaluated across all workers (before any structural
    /// dedup; duplicates are harmless to an idempotent ∩ and deduplication
    /// would cost O(distinct worlds) memory).
    pub worlds_visited: u128,
    /// Of the visited worlds, how many went through the batched split
    /// executor (overlay resolution into reused scratch batches) instead of
    /// materializing a row `Database`. The default fold batches everything;
    /// the [`stream_certain_answer_rows`] reference reports zero.
    pub worlds_batched: u128,
    /// Did enumeration stop early because the intersection emptied? Early
    /// exit can only fire when the certain answer is ∅.
    pub early_exit: bool,
    /// Worker threads used by the fold.
    pub threads: usize,
    /// Upper bound on worlds concurrently materialized: one per worker, plus
    /// one OWA extension per worker when worlds may grow.
    pub peak_worlds_in_flight: usize,
    /// Physical-operator telemetry aggregated across every per-world
    /// execution and worker shard.
    pub op_stats: OpStats,
    /// Wall-clock and work volume per worker shard, in spawn order — what
    /// the engine's query trace renders as per-shard spans.
    pub shards: Vec<ShardProfile>,
}

/// Wall-clock and work volume of one worker shard of an enumeration fold.
/// Shared by the worlds fold here and the repairs fold in the `repairs`
/// crate (the same shard-and-merge shape).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardProfile {
    /// Wall-clock the shard ran for, in nanoseconds.
    pub nanos: u64,
    /// Worlds (or repairs) the shard folded through the batched split
    /// executor; zero under the row-instantiating reference fold.
    pub units: u128,
}

/// Per-worker fold state collected at the join.
struct ShardResult {
    acc: Option<Relation>,
    early_exit: bool,
    op_stats: OpStats,
    worlds_batched: u128,
}

/// Shared cross-worker signals. There is no error channel: physical
/// execution of a typechecked plan over complete worlds is infallible, so
/// the only ways a fold ends are completion, early exit, and the budget.
struct SharedState {
    stop: AtomicBool,
    budget_hit: AtomicBool,
    visited: AtomicU64,
}

/// How many valuations a workload must have before the *auto* thread choice
/// spawns workers; below this, spawn overhead dominates. An explicit
/// [`WorldOptions::threads`] pin is always honoured.
const PARALLEL_MIN_VALUATIONS: u128 = 128;

fn resolve_threads(opts: &WorldOptions, valuations: u128) -> usize {
    if let Some(pinned) = opts.threads {
        return pinned.max(1);
    }
    if valuations < PARALLEL_MIN_VALUATIONS {
        return 1;
    }
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let max_useful = (valuations / (PARALLEL_MIN_VALUATIONS / 2)).min(64) as usize;
    auto.clamp(1, max_useful.max(1))
}

/// Everything a worker needs, shared read-only across the fleet. The
/// physical plan is lowered **once** before the fleet starts; every worker
/// executes the same plan in each of its worlds.
#[derive(Clone, Copy)]
struct ShardJob<'a> {
    plan: &'a PhysicalPlan,
    db: &'a Database,
    domain: &'a [relmodel::value::Constant],
    semantics: Semantics,
    max_extra: usize,
    budget: u128,
}

/// The row-instantiating reference fold: materializes each world as a
/// `Database` and executes the plan from scratch in it. Retained as the
/// differential baseline for the batched shard runner below.
fn run_shard_rows(job: ShardJob<'_>, range: (u128, u128), shared: &SharedState) -> ShardResult {
    let ShardJob {
        plan,
        db,
        domain,
        semantics,
        max_extra,
        budget,
    } = job;
    let worlds = WorldIter::new(db, domain, semantics, max_extra)
        .without_dedup()
        .valuation_range(range.0, range.1);
    let mut acc: Option<Relation> = None;
    let mut early_exit = false;
    let mut op_stats = OpStats::default();
    for world in worlds {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let visited = shared.visited.fetch_add(1, Ordering::Relaxed) + 1;
        if u128::from(visited) > budget {
            // This world is discarded unevaluated — uncount it so the
            // reported figure is exactly the worlds folded.
            shared.visited.fetch_sub(1, Ordering::Relaxed);
            shared.budget_hit.store(true, Ordering::Relaxed);
            shared.stop.store(true, Ordering::Relaxed);
            break;
        }
        let answer = exec::columnar::execute_into(plan, &world, &mut op_stats);
        let folded = match acc.take() {
            None => answer,
            Some(a) => a.intersection(&answer),
        };
        let empty = folded.is_empty();
        acc = Some(folded);
        if empty {
            // The global intersection is a subset of this local one: ∅ here
            // proves the certain answer is ∅ everywhere. Stop the fleet.
            early_exit = true;
            shared.stop.store(true, Ordering::Relaxed);
            break;
        }
    }
    ShardResult {
        acc,
        early_exit,
        op_stats,
        worlds_batched: 0,
    }
}

/// The batched shard runner: enumerates the same worlds as
/// [`run_shard_rows`] — identical `(valuation, extension-subset)` order,
/// budget, and stop discipline — but never materializes a `Database`.
/// Per world it refills one set of per-worker scratch batches (the overlay
/// images of the symbolic rows, the chosen OWA extension tuples, and the Δ
/// diagonal of any world-introduced constants) and evaluates the shared
/// plan through the caching split executor. The fold then exploits
/// `⋂ᵢ (S ∪ Vᵢ) = S ∪ ⋂ᵢ Vᵢ`: only the volatile answer parts are
/// intersected per world, and the shard-constant stable part `S` is
/// converted and unioned in once.
fn run_shard_batched(job: ShardJob<'_>, range: (u128, u128), shared: &SharedState) -> ShardResult {
    let ShardJob {
        plan,
        db,
        domain,
        semantics: _,
        max_extra,
        budget,
    } = job;

    // ---- shard-invariant setup: overlays, stable leaves, OWA candidates ----
    let nulls: Vec<NullId> = db.null_ids().into_iter().collect();
    let base_consts: BTreeSet<Constant> = db.constants();
    let mut setup = ShardSetup::default();
    let mut overlays: Vec<(String, OverlayBatch)> = Vec::new();
    for rs in db.schema().iter() {
        let rel = db.relation(&rs.name).expect("schema lists the relation");
        let overlay = OverlayBatch::new(&ColumnBatch::from_relation(rel));
        setup
            .static_scans
            .insert(rs.name.clone(), overlay.is_all_ground() && max_extra == 0);
        setup
            .stable_scans
            .insert(rs.name.clone(), Rc::new(overlay.stable().clone()));
        overlays.push((rs.name.clone(), overlay));
    }
    let base_diag: Vec<Tuple> = base_consts
        .iter()
        .map(|c| Tuple::new(vec![Value::Const(c.clone()), Value::Const(c.clone())]))
        .collect();
    setup.stable_delta = Rc::new(ColumnBatch::from_rows(2, base_diag.iter()));
    setup.static_delta = nulls.is_empty() && max_extra == 0;
    // Mirrors WorldIter's extension candidates: every complete tuple over
    // the valuation domain, enumerated in the same order.
    let candidates: Vec<(String, Tuple)> = if max_extra > 0 {
        all_complete_tuples(db, domain)
    } else {
        Vec::new()
    };

    // One scratch batch per relation that can ever receive volatile rows,
    // cleared and refilled per world — no per-world allocation.
    let mut volatile_scans: HashMap<String, Rc<ColumnBatch>> = HashMap::new();
    for (name, overlay) in &overlays {
        if !overlay.is_all_ground() || max_extra > 0 {
            volatile_scans.insert(
                name.clone(),
                Rc::new(ColumnBatch::new(overlay.stable().arity())),
            );
        }
    }
    let mut volatile_delta = Rc::new(ColumnBatch::new(2));
    let mut extra_consts: BTreeSet<Constant> = BTreeSet::new();

    let mut exec = ShardExec::new(plan, morsel_rows(), setup);
    let mut stable_rel: Option<Relation> = None;
    let mut acc_v: Option<Relation> = None;
    let mut early_exit = false;
    let mut worlds_batched: u128 = 0;

    let valuations =
        ValuationEnumerator::with_range(nulls.iter().copied(), domain.to_vec(), range.0, range.1);
    'outer: for v in valuations {
        // Every extension subset of this valuation is one world; the empty
        // subset (the unextended world) comes first, exactly as WorldIter
        // yields them.
        for subset in BoundedSubsetIter::new(candidates.len(), max_extra) {
            if shared.stop.load(Ordering::Relaxed) {
                break 'outer;
            }
            let visited = shared.visited.fetch_add(1, Ordering::Relaxed) + 1;
            if u128::from(visited) > budget {
                // This world is discarded unevaluated — uncount it so the
                // reported figure is exactly the worlds folded.
                shared.visited.fetch_sub(1, Ordering::Relaxed);
                shared.budget_hit.store(true, Ordering::Relaxed);
                shared.stop.store(true, Ordering::Relaxed);
                break 'outer;
            }

            // Refill the scratches with this world's volatile rows.
            for batch in volatile_scans.values_mut() {
                Rc::make_mut(batch).clear();
            }
            extra_consts.clear();
            for (name, overlay) in &overlays {
                if overlay.is_all_ground() {
                    continue;
                }
                let out = volatile_scans
                    .get_mut(name.as_str())
                    .expect("scratch exists for every overlay relation");
                overlay.resolve_into(&v, Rc::make_mut(out));
            }
            for &ci in &subset {
                let (name, tuple) = &candidates[ci];
                let out = volatile_scans
                    .get_mut(name.as_str())
                    .expect("scratch exists under OWA extension");
                Rc::make_mut(out).push_tuple(tuple);
                for val in tuple.values() {
                    if let Some(c) = val.as_const() {
                        if !base_consts.contains(c) {
                            extra_consts.insert(c.clone());
                        }
                    }
                }
            }
            // Δ gains a diagonal row for every world-introduced constant.
            for (_, c) in v.iter() {
                if !base_consts.contains(c) {
                    extra_consts.insert(c.clone());
                }
            }
            if !extra_consts.is_empty() {
                let delta = Rc::make_mut(&mut volatile_delta);
                delta.clear();
                for c in &extra_consts {
                    delta.push_row([Value::Const(c.clone()), Value::Const(c.clone())]);
                }
            } else if !volatile_delta.is_empty() {
                Rc::make_mut(&mut volatile_delta).clear();
            }

            worlds_batched += 1;
            let split = exec.eval_element(&ElementInput {
                volatile_scans: &volatile_scans,
                volatile_delta: &volatile_delta,
            });
            let s_rel = stable_rel.get_or_insert_with(|| split.stable.to_relation());
            let answer_v = split.volatile.to_relation();
            let folded = match acc_v.take() {
                None => answer_v,
                Some(a) => a.intersection(&answer_v),
            };
            // `⋂ (S ∪ Vᵢ)` is empty iff `S` and `⋂ Vᵢ` both are — the
            // early exit fires on exactly the same world as the row fold.
            let empty = s_rel.is_empty() && folded.is_empty();
            acc_v = Some(folded);
            if empty {
                early_exit = true;
                shared.stop.store(true, Ordering::Relaxed);
                break 'outer;
            }
        }
    }
    let acc = match (stable_rel, acc_v) {
        (Some(s), Some(v)) => Some(s.union(&v)),
        _ => None,
    };
    ShardResult {
        acc,
        early_exit,
        op_stats: exec.stats,
        worlds_batched,
    }
}

/// The streaming, parallel, early-exiting certain answer for a
/// pre-typechecked plan: equation (1) computed as a fold, with telemetry.
///
/// Errors with [`EvalError::EmptyDomain`] when there are zero possible
/// worlds, and with [`EvalError::WorldBudgetExceeded`] when more than
/// [`WorldOptions::max_worlds`] worlds were visited without the fold
/// converging (early exit beats the budget: a query whose intersection
/// empties within budget succeeds no matter how large the world space is).
pub fn stream_certain_answer(
    plan: &PlannedQuery,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<WorldExecution, EvalError> {
    stream_certain_answer_inner(
        plan.expr(),
        plan.physical(),
        db,
        semantics,
        opts,
        FoldMode::Batched,
    )
}

/// [`stream_certain_answer`] on the row-instantiating reference fold: each
/// world is materialized as a `Database` and the plan executed from scratch
/// in it. Same answers, same visit/budget/early-exit discipline — kept as
/// the differential-fuzz baseline and the benchmark's "before" lane.
pub fn stream_certain_answer_rows(
    plan: &PlannedQuery,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<WorldExecution, EvalError> {
    stream_certain_answer_inner(
        plan.expr(),
        plan.physical(),
        db,
        semantics,
        opts,
        FoldMode::Rows,
    )
}

/// Which shard runner a streaming fold uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FoldMode {
    /// The split executor over overlay/mask scratches (the default).
    Batched,
    /// The row-instantiating reference.
    Rows,
}

/// The fold itself, over an already-typechecked expression and its lowered
/// physical plan (what [`PlannedQuery`] carries; [`certain_answer_worlds`]
/// lowers once itself, without paying for a plan's clone-and-classify). The
/// expression is only consulted for its constants when building the
/// valuation domain; every world executes `physical`.
fn stream_certain_answer_inner(
    expr: &RaExpr,
    physical: &PhysicalPlan,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
    mode: FoldMode,
) -> Result<WorldExecution, EvalError> {
    let run_shard = match mode {
        FoldMode::Batched => run_shard_batched,
        FoldMode::Rows => run_shard_rows,
    };
    let arity = physical.arity();
    let (domain, max_extra) = enumeration_setup(expr, db, semantics, opts)?;
    let valuations = valuation_count(domain.len(), db.null_ids().len());
    let threads = resolve_threads(opts, valuations);
    let shared = SharedState {
        stop: AtomicBool::new(false),
        budget_hit: AtomicBool::new(false),
        visited: AtomicU64::new(0),
    };
    let job = ShardJob {
        plan: physical,
        db,
        domain: &domain,
        semantics,
        max_extra,
        budget: opts.max_worlds,
    };

    // `workers` is the number of shards actually run — range chunking can
    // produce fewer non-empty shards than the resolved thread count, and the
    // telemetry must report what really happened.
    // Shards are timed at the spawn boundary: wall-clock per worker, without
    // touching the fold's inner loop.
    let timed_shard = |range: (u128, u128), shared: &SharedState| {
        let started = std::time::Instant::now();
        let result = run_shard(job, range, shared);
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        (result, nanos)
    };
    let (shard_results, workers): (Vec<(ShardResult, u64)>, usize) = if threads == 1 {
        (vec![timed_shard((0, valuations), &shared)], 1)
    } else {
        let chunk = valuations.div_ceil(threads as u128);
        // Saturating arithmetic: when the valuation space itself saturates
        // u128, `(i + 1) * chunk` would overflow for the last shard.
        let ranges: Vec<(u128, u128)> = (0..threads as u128)
            .map(|i| {
                let start = i.saturating_mul(chunk).min(valuations);
                (start, start.saturating_add(chunk).min(valuations))
            })
            .filter(|(s, e)| s < e)
            .collect();
        let workers = ranges.len().max(1);
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&range| {
                    let shared = &shared;
                    let timed_shard = &timed_shard;
                    scope.spawn(move || timed_shard(range, shared))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("world worker panicked"))
                .collect()
        });
        (results, workers)
    };

    let early_exit = shard_results.iter().any(|(r, _)| r.early_exit);
    let visited = u128::from(shared.visited.load(Ordering::Relaxed));
    if !early_exit && shared.budget_hit.load(Ordering::Relaxed) {
        return Err(EvalError::WorldBudgetExceeded {
            worlds: visited,
            budget: opts.max_worlds,
        });
    }
    let mut op_stats = OpStats::default();
    let mut worlds_batched: u128 = 0;
    let mut shards = Vec::with_capacity(shard_results.len());
    for (shard, nanos) in &shard_results {
        op_stats.merge(&shard.op_stats);
        worlds_batched += shard.worlds_batched;
        shards.push(ShardProfile {
            nanos: *nanos,
            units: shard.worlds_batched,
        });
    }
    let answers = if early_exit {
        Relation::new(arity)
    } else {
        let mut acc: Option<Relation> = None;
        for (shard, _) in shard_results {
            if let Some(local) = shard.acc {
                acc = Some(match acc.take() {
                    None => local,
                    Some(a) => a.intersection(&local),
                });
            }
        }
        // Zero worlds visited is unreachable: the empty-domain case errored
        // above and a null-free database has exactly one world. Guard anyway.
        acc.ok_or(EvalError::EmptyDomain {
            nulls: db.null_ids().len(),
        })?
    };
    Ok(WorldExecution {
        answers,
        worlds_visited: visited,
        worlds_batched,
        early_exit,
        threads: workers,
        peak_worlds_in_flight: workers * (1 + usize::from(max_extra > 0)),
        op_stats,
        shards,
    })
}

/// Enumerates the possible worlds of `db` relevant to `expr` under the given
/// semantics, **materialized** into a vector, respecting the (a-priori)
/// world budget. Retained for tests, examples, and as the baseline the
/// streaming engine is benchmarked against; the certain-answer path does not
/// use it.
pub fn enumerate_worlds(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<Vec<Database>, EvalError> {
    let (domain, max_extra) = enumeration_setup(expr, db, semantics, opts)?;
    check_apriori_budget(valuation_count(domain.len(), db.null_ids().len()), opts)?;
    Ok(WorldIter::new(db, &domain, semantics, max_extra).collect())
}

/// The multiset `Q([[D]])` restricted to the enumerated worlds: the answer of
/// the query in every possible (structurally distinct) world. Worlds are
/// streamed; the query is lowered once and its physical plan executed per
/// world; only the answers are collected.
pub fn possible_answers(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<Vec<Relation>, EvalError> {
    let physical = PhysicalPlan::lower(expr, db.schema())?;
    let (domain, max_extra) = enumeration_setup(expr, db, semantics, opts)?;
    check_apriori_budget(valuation_count(domain.len(), db.null_ids().len()), opts)?;
    Ok(WorldIter::new(db, &domain, semantics, max_extra)
        .map(|w| exec::columnar::execute(&physical, &w))
        .collect())
}

/// The classical intersection-based certain answer, computed from possible
/// worlds (equation (1) of the paper) by the streaming fold. Ground truth,
/// exponential in the number of nulls (but early-exiting).
pub fn certain_answer_worlds(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<Relation, EvalError> {
    let physical = PhysicalPlan::lower(expr, db.schema())?;
    Ok(
        stream_certain_answer_inner(expr, &physical, db, semantics, opts, FoldMode::Batched)?
            .answers,
    )
}

/// [`certain_answer_worlds`] for a pre-typechecked plan: skips the type
/// checker and reads the output arity off the plan.
pub fn certain_answer_worlds_planned(
    plan: &PlannedQuery,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<Relation, EvalError> {
    Ok(stream_certain_answer(plan, db, semantics, opts)?.answers)
}

/// [`certain_answer_worlds_planned`] plus the number of worlds **visited**
/// by the streaming fold — the honest figure for telemetry, as opposed to
/// the [`estimated_world_count`] upper bound (early exit can make it much
/// smaller).
pub fn certain_answer_worlds_counted(
    plan: &PlannedQuery,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<(Relation, u128), EvalError> {
    let exec = stream_certain_answer(plan, db, semantics, opts)?;
    Ok((exec.answers, exec.worlds_visited))
}

/// The certain answer to a Boolean query: true iff the query is nonempty in
/// every possible world. Streams worlds with early exit on the first world
/// where the query fails; errors on zero-world inputs instead of vacuously
/// answering.
pub fn certain_boolean_worlds(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<bool, EvalError> {
    let physical = PhysicalPlan::lower(expr, db.schema())?;
    let (domain, max_extra) = enumeration_setup(expr, db, semantics, opts)?;
    let worlds = WorldIter::new(db, &domain, semantics, max_extra).without_dedup();
    for world in budgeted(worlds, opts.max_worlds) {
        if exec::columnar::execute(&physical, &world?).is_empty() {
            return Ok(false); // fails in this world — certainly-true refuted
        }
    }
    Ok(true)
}

/// The *possible* (maybe) answers to a query: tuples that appear in the answer
/// in at least one world, folded as a streaming union. Used by examples to
/// contrast certain and possible information.
pub fn possible_answer_union(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<Relation, EvalError> {
    let physical = PhysicalPlan::lower(expr, db.schema())?;
    let (domain, max_extra) = enumeration_setup(expr, db, semantics, opts)?;
    let mut acc = Relation::new(physical.arity());
    let worlds = WorldIter::new(db, &domain, semantics, max_extra).without_dedup();
    for world in budgeted(worlds, opts.max_worlds) {
        acc = acc.union(&exec::columnar::execute(&physical, &world?));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::eval_complete;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::builder::{difference_example, orders_and_payments_example};
    use relmodel::{DatabaseBuilder, Tuple, Value};

    fn planned(expr: &RaExpr, db: &Database) -> PlannedQuery {
        PlannedQuery::new(expr.clone(), db.schema()).unwrap()
    }

    #[test]
    fn unpaid_orders_certain_answer_is_nonempty() {
        // Ground truth for E1: in every world, at least one of oid1/oid2 is unpaid,
        // but no single order is unpaid in all worlds — so the certain answer to
        // "orders not in Pay" is empty, yet the Boolean query "is there an unpaid
        // order" is certainly true.
        let db = orders_and_payments_example();
        let unpaid = RaExpr::relation("Order")
            .project(vec![0])
            .difference(RaExpr::relation("Pay").project(vec![1]));
        let certain =
            certain_answer_worlds(&unpaid, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert!(certain.is_empty());
        let exists_unpaid = unpaid.clone().project(vec![]);
        assert!(certain_boolean_worlds(
            &exists_unpaid,
            &db,
            Semantics::Cwa,
            &WorldOptions::default()
        )
        .unwrap());
        // ... and the possible answers include both orders.
        let possible =
            possible_answer_union(&unpaid, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert_eq!(possible.len(), 2);
    }

    #[test]
    fn difference_example_certain_answer() {
        // R = {1,2}, S = {⊥}: certainly R − S contains at least one element, but
        // no specific element is certain... except that ⊥ can only equal one of
        // them, so the certain answer is empty; the Boolean version is true.
        let db = difference_example();
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        let certain =
            certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert!(certain.is_empty());
        let nonempty = q.project(vec![]);
        assert!(
            certain_boolean_worlds(&nonempty, &db, Semantics::Cwa, &WorldOptions::default())
                .unwrap()
        );
    }

    #[test]
    fn tautology_certain_answer_returns_pid1() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Pay")
            .select(
                Predicate::eq(Operand::col(1), Operand::str("oid1"))
                    .or(Predicate::neq(Operand::col(1), Operand::str("oid1"))),
            )
            .project(vec![0]);
        let certain =
            certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&Tuple::strs(&["pid1"])));
    }

    #[test]
    fn naive_failure_example_ground_truth() {
        // π_A(R − S) with R = {(1,⊥0)}, S = {(1,⊥1)}: certain answer is ∅.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .tuple("S", vec![Value::int(1), Value::null(1)])
            .build();
        let q = RaExpr::relation("R")
            .difference(RaExpr::relation("S"))
            .project(vec![0]);
        let certain =
            certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert!(certain.is_empty());
    }

    #[test]
    fn positive_query_certain_answers_match_naive() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Order")
            .project(vec![0])
            .union(RaExpr::relation("Pay").project(vec![1]));
        for semantics in [Semantics::Cwa, Semantics::Owa] {
            let ground =
                certain_answer_worlds(&q, &db, semantics, &WorldOptions::default()).unwrap();
            let naive = crate::naive::certain_answer_naive(&q, &db).unwrap();
            assert_eq!(
                ground, naive,
                "naïve evaluation must match ground truth under {semantics}"
            );
        }
    }

    #[test]
    fn owa_with_extra_tuples_breaks_nonmonotone_queries() {
        // Under OWA, a difference query has an empty certain answer as soon as
        // worlds may contain extra tuples.
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"])
            .ints("R", &[1])
            .build();
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        let cwa = certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert_eq!(cwa.len(), 1);
        let owa = certain_answer_worlds(&q, &db, Semantics::Owa, &WorldOptions::with_owa_extra(1))
            .unwrap();
        assert!(owa.is_empty());
    }

    #[test]
    fn world_budget_bounds_worlds_visited() {
        // 20 nulls over a 21-constant domain: the space dwarfs the budget and
        // the identity query keeps a stable tuple in the intersection for far
        // longer than 100 worlds, so no early exit can rescue it — the
        // streaming fold must stop at the budget.
        let mut builder = DatabaseBuilder::new().relation("R", &["a", "b"]);
        for i in 0..10 {
            builder = builder.tuple("R", vec![Value::null(i), Value::null(i + 10)]);
        }
        let db = builder.build();
        let opts = WorldOptions {
            max_worlds: 100,
            ..WorldOptions::default()
        };
        let err = certain_answer_worlds(&RaExpr::relation("R"), &db, Semantics::Cwa, &opts);
        match err {
            Err(EvalError::WorldBudgetExceeded { worlds, budget }) => {
                assert_eq!(budget, 100);
                assert!(worlds >= 100, "budget fires only after visiting it");
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn early_exit_beats_the_budget() {
        // Same exponential database, but Q = R − R is ∅ in the very first
        // world: the streaming fold early-exits and succeeds where the
        // materializing path refused to even start.
        let mut builder = DatabaseBuilder::new().relation("R", &["a", "b"]);
        for i in 0..10 {
            builder = builder.tuple("R", vec![Value::null(i), Value::null(i + 10)]);
        }
        let db = builder.build();
        let q = RaExpr::relation("R").difference(RaExpr::relation("R"));
        let opts = WorldOptions {
            max_worlds: 100,
            ..WorldOptions::default()
        };
        let exec = stream_certain_answer(&planned(&q, &db), &db, Semantics::Cwa, &opts).unwrap();
        assert!(exec.answers.is_empty());
        assert!(exec.early_exit);
        assert!(exec.worlds_visited < 100);
        assert!(exec.peak_worlds_in_flight >= exec.threads);
    }

    #[test]
    fn early_exit_never_fires_on_nonempty_certain_answers() {
        // A literal tuple unioned in keeps the intersection nonempty forever:
        // the fold must visit the whole (small) space and report no early exit.
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .tuple("R", vec![Value::null(0)])
            .tuple("R", vec![Value::null(1)])
            .build();
        let lit = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[77])]));
        let q = RaExpr::relation("R").union(lit);
        let exec = stream_certain_answer(
            &planned(&q, &db),
            &db,
            Semantics::Cwa,
            &WorldOptions::default(),
        )
        .unwrap();
        assert!(!exec.early_exit);
        assert!(exec.answers.contains(&Tuple::ints(&[77])));
        // Domain = query constant 77 + (nulls+1 = 3) fresh constants.
        assert_eq!(exec.worlds_visited, 16, "4-constant domain, 2 nulls");
    }

    #[test]
    fn streaming_matches_materializing_fold() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Order")
            .project(vec![0])
            .difference(RaExpr::relation("Pay").project(vec![1]));
        for semantics in [Semantics::Cwa, Semantics::Owa] {
            let opts = WorldOptions::default();
            let streamed = certain_answer_worlds(&q, &db, semantics, &opts).unwrap();
            // Materializing baseline reconstructed from the enumeration API.
            let worlds = enumerate_worlds(&q, &db, semantics, &opts).unwrap();
            let baseline = worlds
                .iter()
                .map(|w| eval_complete(&q, w).unwrap())
                .reduce(|a, b| a.intersection(&b))
                .unwrap();
            assert_eq!(
                streamed, baseline,
                "streaming == materializing ({semantics})"
            );
        }
    }

    #[test]
    fn sharded_threads_agree_with_single_thread() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .tuple("R", vec![Value::null(0), Value::null(1)])
            .tuple("R", vec![Value::null(2), Value::int(5)])
            .tuple("R", vec![Value::int(5), Value::null(3)])
            .build();
        let q = RaExpr::relation("R").project(vec![0]);
        let plan = planned(&q, &db);
        let single =
            stream_certain_answer(&plan, &db, Semantics::Cwa, &WorldOptions::with_threads(1))
                .unwrap();
        for threads in [2, 4, 7] {
            let multi = stream_certain_answer(
                &plan,
                &db,
                Semantics::Cwa,
                &WorldOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(multi.answers, single.answers, "threads = {threads}");
            assert_eq!(
                multi.threads, threads,
                "an explicit thread pin must be honoured even on small workloads"
            );
        }
    }

    #[test]
    fn batched_fold_matches_row_fold() {
        // The default (batched) fold and the row reference must agree on
        // answers, visit counts, and early-exit behaviour — across CWA, OWA,
        // and OWA with extensions, on a query mixing every volatile shape.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .tuple("R", vec![Value::int(2), Value::int(5)])
            .tuple("S", vec![Value::int(5)])
            .tuple("S", vec![Value::null(1)])
            .build();
        let queries = [
            RaExpr::relation("R")
                .project(vec![1])
                .difference(RaExpr::relation("S")),
            RaExpr::relation("R")
                .product(RaExpr::relation("S"))
                .select(Predicate::eq(Operand::col(1), Operand::col(2)))
                .project(vec![0])
                .union(RaExpr::values(Relation::from_tuples(
                    1,
                    vec![Tuple::ints(&[9])],
                ))),
            RaExpr::relation("R").intersection(RaExpr::relation("R")),
        ];
        let cases = [
            (Semantics::Cwa, WorldOptions::default()),
            (Semantics::Owa, WorldOptions::default()),
            (Semantics::Owa, WorldOptions::with_owa_extra(1)),
        ];
        for q in &queries {
            let plan = planned(q, &db);
            for (semantics, opts) in &cases {
                let batched = stream_certain_answer(&plan, &db, *semantics, opts).unwrap();
                let rows = stream_certain_answer_rows(&plan, &db, *semantics, opts).unwrap();
                assert_eq!(batched.answers, rows.answers, "{q:?} under {semantics}");
                assert_eq!(batched.worlds_visited, rows.worlds_visited);
                assert_eq!(batched.early_exit, rows.early_exit);
                assert_eq!(
                    batched.worlds_batched, batched.worlds_visited,
                    "every world of the default fold goes through the split executor"
                );
                assert_eq!(rows.worlds_batched, 0);
            }
        }
    }

    #[test]
    fn batched_fold_reuses_hash_tables_across_worlds() {
        // A join over a mostly-ground database: the build-side tables over
        // the ground runs must be constructed once per shard and probed by
        // every later world.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b", "c"])
            .ints("R", &[1, 10])
            .ints("R", &[2, 20])
            .ints("R", &[3, 30])
            .tuple("R", vec![Value::int(4), Value::null(0)])
            .ints("S", &[10, 100])
            .ints("S", &[20, 200])
            .tuple("S", vec![Value::null(1), Value::int(300)])
            .build();
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)))
            .project(vec![0, 3])
            .union(RaExpr::values(Relation::from_tuples(
                2,
                vec![Tuple::ints(&[0, 0])],
            )));
        let exec = stream_certain_answer(
            &planned(&q, &db),
            &db,
            Semantics::Cwa,
            &WorldOptions::with_threads(1),
        )
        .unwrap();
        assert!(!exec.early_exit, "the literal union defeats early exit");
        assert!(exec.worlds_visited > 1);
        assert_eq!(exec.worlds_batched, exec.worlds_visited);
        assert!(
            exec.op_stats.tables_reused > 0,
            "worlds after the first must hit cached tables: {:?}",
            exec.op_stats
        );
    }

    #[test]
    fn empty_domain_with_nulls_is_an_error_not_an_empty_answer() {
        // Regression: a database that is all nulls, a query with no
        // constants, and zero fresh constants admits *no* valuation — there
        // are zero worlds, and an intersection over zero worlds is not ∅.
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .tuple("R", vec![Value::null(0)])
            .build();
        let q = RaExpr::relation("R");
        let opts = WorldOptions::with_fresh(0);
        for result in [
            certain_answer_worlds(&q, &db, Semantics::Cwa, &opts).map(|_| ()),
            certain_boolean_worlds(&q.clone().project(vec![]), &db, Semantics::Cwa, &opts)
                .map(|_| ()),
            possible_answer_union(&q, &db, Semantics::Cwa, &opts).map(|_| ()),
            possible_answers(&q, &db, Semantics::Cwa, &opts).map(|_| ()),
            enumerate_worlds(&q, &db, Semantics::Cwa, &opts).map(|_| ()),
        ] {
            assert!(
                matches!(result, Err(EvalError::EmptyDomain { nulls: 1 })),
                "zero-world inputs must error, got {result:?}"
            );
        }
        // With at least one fresh constant the same input is answerable.
        assert!(
            certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::with_fresh(1)).is_ok()
        );
    }

    #[test]
    fn stringly_world_dedup_regression() {
        // ⊥0 may be valued to Int(1) or Str("1") (both in the domain via S).
        // The two worlds display identically; the old `to_string()` dedup
        // merged them, making {(1)} look certain for R ∩ {(1)}. The certain
        // answer is ∅: in the Str("1") world, R does not contain Int(1).
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"])
            .tuple("R", vec![Value::null(0)])
            .tuple("S", vec![Value::int(1)])
            .tuple("S", vec![Value::str("1")])
            .build();
        let lit = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[1])]));
        let q = RaExpr::relation("R").intersection(lit);
        let certain =
            certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::with_fresh(0)).unwrap();
        assert!(
            certain.is_empty(),
            "Str(\"1\") and Int(1) are distinct worlds; got {certain}"
        );
    }

    #[test]
    fn domain_includes_query_constants() {
        let db = difference_example();
        let q = RaExpr::relation("R").select(Predicate::eq(Operand::col(0), Operand::int(42)));
        let domain = valuation_domain(&q, &db, &WorldOptions::default());
        assert!(domain.contains(&relmodel::value::Constant::Int(42)));
    }
}
