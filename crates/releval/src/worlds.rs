//! Possible-world (ground-truth) certain answers.
//!
//! The classical definition (equation (1) of the paper) is
//! `certain(Q, D) = ⋂ { Q(D') | D' ∈ [[D]] }`. This module computes it by
//! explicit enumeration of possible worlds over an adequate finite constant
//! domain — exponential in the number of nulls, which is precisely the
//! complexity gap the paper discusses, and the reason this code serves as
//! *ground truth* for validating the efficient evaluators rather than as a
//! production algorithm.

use relalgebra::ast::RaExpr;
use relalgebra::plan::PlannedQuery;
use relalgebra::typecheck::output_arity;
use relmodel::semantics::{adequate_domain, enumerate_cwa_worlds, enumerate_owa_worlds};
use relmodel::{Database, Relation, Semantics};

use crate::complete::eval_complete;
use crate::error::EvalError;

/// Options controlling possible-world enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldOptions {
    /// Number of fresh constants to add to the valuation domain; `None` means
    /// "one per null plus one", which is adequate for generic queries.
    pub extra_fresh: Option<usize>,
    /// Under OWA, the maximum number of extra tuples added to each world.
    /// Zero is adequate for monotone queries (adding tuples only grows their
    /// answers); larger values let tests probe non-monotone queries.
    pub max_owa_extra: usize,
    /// Safety budget on the number of valuations enumerated.
    pub max_worlds: u128,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            extra_fresh: None,
            max_owa_extra: 0,
            max_worlds: 5_000_000,
        }
    }
}

impl WorldOptions {
    /// Options with a specific number of fresh constants.
    pub fn with_fresh(fresh: usize) -> Self {
        WorldOptions {
            extra_fresh: Some(fresh),
            ..WorldOptions::default()
        }
    }

    /// Options that extend OWA worlds with up to `extra` additional tuples.
    pub fn with_owa_extra(extra: usize) -> Self {
        WorldOptions {
            max_owa_extra: extra,
            ..WorldOptions::default()
        }
    }
}

/// Builds the valuation domain used for world enumeration of `expr` over `db`.
pub fn valuation_domain(
    expr: &RaExpr,
    db: &Database,
    opts: &WorldOptions,
) -> Vec<relmodel::value::Constant> {
    let fresh = opts.extra_fresh.unwrap_or_else(|| db.null_ids().len() + 1);
    adequate_domain(db, &expr.constants(), fresh)
}

/// `|domain|^|nulls|`: the valuation count shared by the planner's estimate
/// and the enumerator's budget check.
fn valuation_count(domain_len: usize, nulls: usize) -> u128 {
    (domain_len as u128).saturating_pow(nulls as u32)
}

/// The number of valuations world enumeration would have to visit for `expr`
/// over `db` — `|domain|^|nulls|` — without enumerating anything. This is the
/// planner-side cost estimate that lets callers decide *whether* to pay for
/// ground truth before committing to it. (Enumeration itself rebuilds the
/// domain; the duplicate scan is noise next to the enumeration it gates.)
pub fn estimated_world_count(expr: &RaExpr, db: &Database, opts: &WorldOptions) -> u128 {
    let domain = valuation_domain(expr, db, opts);
    valuation_count(domain.len(), db.null_ids().len())
}

/// Enumerates the possible worlds of `db` relevant to `expr` under the given
/// semantics, respecting the world budget.
pub fn enumerate_worlds(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<Vec<Database>, EvalError> {
    let domain = valuation_domain(expr, db, opts);
    let world_count = valuation_count(domain.len(), db.null_ids().len());
    if world_count > opts.max_worlds {
        return Err(EvalError::WorldBudgetExceeded {
            worlds: world_count,
            budget: opts.max_worlds,
        });
    }
    Ok(match semantics {
        Semantics::Cwa => enumerate_cwa_worlds(db, &domain),
        Semantics::Owa => enumerate_owa_worlds(db, &domain, opts.max_owa_extra),
    })
}

/// The multiset `Q([[D]])` restricted to the enumerated worlds: the answer of
/// the query in every possible world.
pub fn possible_answers(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<Vec<Relation>, EvalError> {
    let worlds = enumerate_worlds(expr, db, semantics, opts)?;
    worlds.iter().map(|w| eval_complete(expr, w)).collect()
}

/// The classical intersection-based certain answer, computed from possible
/// worlds (equation (1) of the paper). Ground truth, exponential in the
/// number of nulls.
pub fn certain_answer_worlds(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<Relation, EvalError> {
    let arity = output_arity(expr, db.schema())?;
    let answers = possible_answers(expr, db, semantics, opts)?;
    Ok(intersect_answers(arity, answers))
}

/// [`certain_answer_worlds`] for a pre-typechecked plan: skips the type
/// checker and reads the output arity off the plan.
pub fn certain_answer_worlds_planned(
    plan: &PlannedQuery,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<Relation, EvalError> {
    Ok(certain_answer_worlds_counted(plan, db, semantics, opts)?.0)
}

/// [`certain_answer_worlds_planned`] plus the number of worlds **actually**
/// enumerated (after deduplication of valuations that produce the same
/// world) — the honest figure for telemetry, as opposed to the
/// [`estimated_world_count`] upper bound.
pub fn certain_answer_worlds_counted(
    plan: &PlannedQuery,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<(Relation, u128), EvalError> {
    let worlds = enumerate_worlds(plan.expr(), db, semantics, opts)?;
    let count = worlds.len() as u128;
    let answers: Result<Vec<Relation>, EvalError> = worlds
        .iter()
        .map(|w| eval_complete(plan.expr(), w))
        .collect();
    Ok((intersect_answers(plan.arity(), answers?), count))
}

fn intersect_answers(arity: usize, answers: Vec<Relation>) -> Relation {
    let mut iter = answers.into_iter();
    let first = match iter.next() {
        Some(r) => r,
        None => return Relation::new(arity),
    };
    iter.fold(first, |acc, r| acc.intersection(&r))
}

/// The certain answer to a Boolean query: true iff the query is nonempty in
/// every possible world.
pub fn certain_boolean_worlds(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<bool, EvalError> {
    let answers = possible_answers(expr, db, semantics, opts)?;
    Ok(!answers.is_empty() && answers.iter().all(|r| !r.is_empty()))
}

/// The *possible* (maybe) answers to a query: tuples that appear in the answer
/// in at least one world. Used by examples to contrast certain and possible
/// information.
pub fn possible_answer_union(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Result<Relation, EvalError> {
    let arity = output_arity(expr, db.schema())?;
    let answers = possible_answers(expr, db, semantics, opts)?;
    Ok(answers
        .into_iter()
        .fold(Relation::new(arity), |acc, r| acc.union(&r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::builder::{difference_example, orders_and_payments_example};
    use relmodel::{DatabaseBuilder, Tuple, Value};

    #[test]
    fn unpaid_orders_certain_answer_is_nonempty() {
        // Ground truth for E1: in every world, at least one of oid1/oid2 is unpaid,
        // but no single order is unpaid in all worlds — so the certain answer to
        // "orders not in Pay" is empty, yet the Boolean query "is there an unpaid
        // order" is certainly true.
        let db = orders_and_payments_example();
        let unpaid = RaExpr::relation("Order")
            .project(vec![0])
            .difference(RaExpr::relation("Pay").project(vec![1]));
        let certain =
            certain_answer_worlds(&unpaid, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert!(certain.is_empty());
        let exists_unpaid = unpaid.clone().project(vec![]);
        assert!(certain_boolean_worlds(
            &exists_unpaid,
            &db,
            Semantics::Cwa,
            &WorldOptions::default()
        )
        .unwrap());
        // ... and the possible answers include both orders.
        let possible =
            possible_answer_union(&unpaid, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert_eq!(possible.len(), 2);
    }

    #[test]
    fn difference_example_certain_answer() {
        // R = {1,2}, S = {⊥}: certainly R − S contains at least one element, but
        // no specific element is certain... except that ⊥ can only equal one of
        // them, so the certain answer is empty; the Boolean version is true.
        let db = difference_example();
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        let certain =
            certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert!(certain.is_empty());
        let nonempty = q.project(vec![]);
        assert!(
            certain_boolean_worlds(&nonempty, &db, Semantics::Cwa, &WorldOptions::default())
                .unwrap()
        );
    }

    #[test]
    fn tautology_certain_answer_returns_pid1() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Pay")
            .select(
                Predicate::eq(Operand::col(1), Operand::str("oid1"))
                    .or(Predicate::neq(Operand::col(1), Operand::str("oid1"))),
            )
            .project(vec![0]);
        let certain =
            certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&Tuple::strs(&["pid1"])));
    }

    #[test]
    fn naive_failure_example_ground_truth() {
        // π_A(R − S) with R = {(1,⊥0)}, S = {(1,⊥1)}: certain answer is ∅.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .tuple("S", vec![Value::int(1), Value::null(1)])
            .build();
        let q = RaExpr::relation("R")
            .difference(RaExpr::relation("S"))
            .project(vec![0]);
        let certain =
            certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert!(certain.is_empty());
    }

    #[test]
    fn positive_query_certain_answers_match_naive() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Order")
            .project(vec![0])
            .union(RaExpr::relation("Pay").project(vec![1]));
        for semantics in [Semantics::Cwa, Semantics::Owa] {
            let ground =
                certain_answer_worlds(&q, &db, semantics, &WorldOptions::default()).unwrap();
            let naive = crate::naive::certain_answer_naive(&q, &db).unwrap();
            assert_eq!(
                ground, naive,
                "naïve evaluation must match ground truth under {semantics}"
            );
        }
    }

    #[test]
    fn owa_with_extra_tuples_breaks_nonmonotone_queries() {
        // Under OWA, a difference query has an empty certain answer as soon as
        // worlds may contain extra tuples.
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .relation("S", &["a"])
            .ints("R", &[1])
            .build();
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        let cwa = certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert_eq!(cwa.len(), 1);
        let owa = certain_answer_worlds(&q, &db, Semantics::Owa, &WorldOptions::with_owa_extra(1))
            .unwrap();
        assert!(owa.is_empty());
    }

    #[test]
    fn world_budget_is_enforced() {
        let mut builder = DatabaseBuilder::new().relation("R", &["a", "b"]);
        for i in 0..10 {
            builder = builder.tuple("R", vec![Value::null(i), Value::null(i + 10)]);
        }
        let db = builder.build();
        let opts = WorldOptions {
            max_worlds: 100,
            ..WorldOptions::default()
        };
        let err = certain_answer_worlds(&RaExpr::relation("R"), &db, Semantics::Cwa, &opts);
        assert!(matches!(err, Err(EvalError::WorldBudgetExceeded { .. })));
    }

    #[test]
    fn domain_includes_query_constants() {
        let db = difference_example();
        let q = RaExpr::relation("R").select(Predicate::eq(Operand::col(0), Operand::int(42)));
        let domain = valuation_domain(&q, &db, &WorldOptions::default());
        assert!(domain.contains(&relmodel::value::Constant::Int(42)));
    }
}
