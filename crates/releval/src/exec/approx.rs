//! The certain⁺/possible? approximation pair on the physical operator core.
//!
//! Same semantics as the logical pair evaluator in [`crate::approx`] —
//! every operator produces an under-approximating `certain` and an
//! over-approximating `possible` relation — but run over the rewritten
//! [`PhysicalPlan`], so equi-joins hash instead of looping:
//!
//! * the **certain** side of a hash join is the plain syntactic hash join
//!   (marked-null three-valued logic calls an equality `True` exactly when
//!   the two values are syntactically identical), with the residual checked
//!   under [`Predicate::eval_3vl_marked`](relalgebra::predicate::Predicate::eval_3vl_marked);
//! * the **possible** side must keep every pair some valuation could join,
//!   so null-bearing keys fall back to the `SplitIndex` symbolic
//!   remainder; each candidate pair is re-checked against the full join
//!   predicate (`≠ False`), making the hash path a pure skip-non-matches
//!   optimisation.

use relalgebra::physical::{PhysNode, PhysOp, PhysicalPlan};
use relmodel::value::Truth;
use relmodel::{Database, Relation, Tuple};

use super::{join_predicate, syntactic_hash_join, OpStats, SplitIndex};
use crate::approx::{unifiable, ApproxAnswer};

/// Pair-evaluates a physical plan: the physical counterpart of
/// [`crate::approx::eval_approx_unchecked`].
pub fn execute_approx(plan: &PhysicalPlan, db: &Database) -> ApproxAnswer {
    execute_approx_counted(plan, db).0
}

/// [`execute_approx`] plus the operator telemetry.
pub fn execute_approx_counted(plan: &PhysicalPlan, db: &Database) -> (ApproxAnswer, OpStats) {
    execute_approx_between(plan, db, db)
}

/// Pair-evaluates a physical plan over an **interval** of databases: the
/// certain side reads every leaf from `lower`, the possible side from
/// `upper`. For any database `D` with `lower ⊆ D ⊆ upper` (tuple-wise, same
/// schema) and any valuation `v`, the invariant `v(certain) ⊆ Q(v(D)) ⊆
/// v(possible)` holds at every node by the same induction that proves the
/// single-database pair evaluator sound — only the leaf case changes, and
/// there `v(lower_R) ⊆ v(D_R) ⊆ v(upper_R)` is immediate.
///
/// This is how consistent query answering reuses the certain⁺ executor: a
/// subset-repair of an inconsistent database always lies between the
/// conflict-free core (`lower`) and the database minus its doomed tuples
/// (`upper`), so the certain side's complete tuples are answers in every
/// world of every repair — a `Sound` approximation of the consistent
/// answer without enumerating a single repair. With `lower == upper` this
/// is exactly [`execute_approx_counted`].
pub fn execute_approx_between(
    plan: &PhysicalPlan,
    lower: &Database,
    upper: &Database,
) -> (ApproxAnswer, OpStats) {
    let mut exec = ApproxExec {
        lower,
        upper,
        delta_lower: None,
        delta_upper: None,
        stats: OpStats::default(),
    };
    let answer = exec.eval(plan.root());
    (answer, exec.stats)
}

struct ApproxExec<'a> {
    lower: &'a Database,
    upper: &'a Database,
    delta_lower: Option<Relation>,
    delta_upper: Option<Relation>,
    stats: OpStats,
}

impl ApproxExec<'_> {
    fn eval(&mut self, node: &PhysNode) -> ApproxAnswer {
        self.stats.operators += 1;
        match node.op() {
            PhysOp::Scan(name) => {
                let expect = "physical plans are lowered from typechecked queries";
                ApproxAnswer {
                    certain: self.lower.relation(name).expect(expect).clone(),
                    possible: self.upper.relation(name).expect(expect).clone(),
                }
            }
            // Literal nulls are rigid: only complete literal tuples are
            // certain (see the logical evaluator for the counterexample).
            PhysOp::Values(rel) => ApproxAnswer {
                certain: rel.complete_part(),
                possible: rel.clone(),
            },
            PhysOp::Delta => {
                if std::ptr::eq(self.lower, self.upper) {
                    // Single-database pair evaluation: one diagonal, built
                    // once per execution, shared by both sides.
                    let d = delta_of(&mut self.delta_lower, self.lower).clone();
                    ApproxAnswer {
                        certain: d.clone(),
                        possible: d,
                    }
                } else {
                    ApproxAnswer {
                        certain: delta_of(&mut self.delta_lower, self.lower).clone(),
                        possible: delta_of(&mut self.delta_upper, self.upper).clone(),
                    }
                }
            }
            PhysOp::Filter { input, predicate } => {
                let input = self.eval(input);
                let mut certain = Relation::new(input.certain.arity());
                for t in input.certain.iter() {
                    if predicate.eval_3vl_marked(t).is_true() {
                        certain.insert(t.clone());
                    }
                }
                let mut possible = Relation::new(input.possible.arity());
                for t in input.possible.iter() {
                    if predicate.eval_3vl_marked(t) != Truth::False {
                        possible.insert(t.clone());
                    }
                }
                ApproxAnswer { certain, possible }
            }
            PhysOp::Project { input, columns } => {
                let input = self.eval(input);
                ApproxAnswer {
                    certain: project(&input.certain, columns),
                    possible: project(&input.possible, columns),
                }
            }
            PhysOp::NestedProduct { left, right } => {
                let left = self.eval(left);
                let right = self.eval(right);
                ApproxAnswer {
                    certain: product(&left.certain, &right.certain),
                    possible: product(&left.possible, &right.possible),
                }
            }
            PhysOp::HashJoin {
                left,
                right,
                keys,
                residual,
            } => {
                let left_arity = left.arity();
                let l = self.eval(left);
                let r = self.eval(right);
                // Certain side: syntactic keys are exactly marked-3VL `True`
                // equalities, so the shared hash kernel applies verbatim.
                let left_refs: Vec<&Tuple> = l.certain.iter().collect();
                let right_refs: Vec<&Tuple> = r.certain.iter().collect();
                let certain_rows = syntactic_hash_join(
                    &left_refs,
                    &right_refs,
                    keys,
                    |row| {
                        residual
                            .as_ref()
                            .is_none_or(|p| p.eval_3vl_marked(row).is_true())
                    },
                    &mut self.stats,
                );
                let certain = Relation::from_tuples(node.arity(), certain_rows);
                // Possible side: a null key may match anything, so probe the
                // split index and re-check the full predicate (≠ False).
                let full = join_predicate(keys, left_arity, residual);
                let left_cols: Vec<usize> = keys.iter().map(|(lc, _)| *lc).collect();
                let right_cols: Vec<usize> = keys.iter().map(|(_, rc)| *rc).collect();
                let index = SplitIndex::build(r.possible.iter(), &right_cols, |t| t);
                let mut possible = Relation::new(node.arity());
                for lt in l.possible.iter() {
                    let candidates = index.candidates(lt, &left_cols);
                    if lt.key_is_complete(&left_cols) {
                        self.stats.fallback_pairs += index.symbolic_len();
                    } else {
                        self.stats.fallback_pairs += candidates.len();
                    }
                    for rt in candidates {
                        let row = lt.concat(rt);
                        if full.eval_3vl_marked(&row) != Truth::False {
                            possible.insert(row);
                        }
                    }
                }
                ApproxAnswer { certain, possible }
            }
            PhysOp::Union { left, right } => {
                let left = self.eval(left);
                let right = self.eval(right);
                ApproxAnswer {
                    certain: left.certain.union(&right.certain),
                    possible: left.possible.union(&right.possible),
                }
            }
            PhysOp::Intersect { left, right } => {
                let left = self.eval(left);
                let right = self.eval(right);
                let certain = left.certain.intersection(&right.certain);
                // Possibly in both: some valuation unifies t with a tuple
                // possibly on the right. Complete tuples probe the hash
                // bucket; null-bearing candidates go through `unifiable`.
                let arity = node.arity();
                let cols: Vec<usize> = (0..arity).collect();
                let index = SplitIndex::build(right.possible.iter(), &cols, |t| t);
                let mut possible = Relation::new(arity);
                for t in left.possible.iter() {
                    if index
                        .candidates(t, &cols)
                        .into_iter()
                        .any(|s| unifiable(t, s))
                    {
                        possible.insert(t.clone());
                    }
                }
                ApproxAnswer { certain, possible }
            }
            PhysOp::Difference { left, right } => {
                let left = self.eval(left);
                let right = self.eval(right);
                let arity = node.arity();
                let cols: Vec<usize> = (0..arity).collect();
                // Certainly in A and not even possibly equal to anything
                // possibly in B.
                let index = SplitIndex::build(right.possible.iter(), &cols, |t| t);
                let mut certain = Relation::new(arity);
                for t in left.certain.iter() {
                    if !index
                        .candidates(t, &cols)
                        .into_iter()
                        .any(|s| unifiable(t, s))
                    {
                        certain.insert(t.clone());
                    }
                }
                // Possibly in A and not certainly in B.
                let mut possible = Relation::new(arity);
                for t in left.possible.iter() {
                    if !right.certain.contains(t) {
                        possible.insert(t.clone());
                    }
                }
                ApproxAnswer { certain, possible }
            }
            PhysOp::Divide { left, right } => {
                let dividend = self.eval(left);
                let divisor = self.eval(right);
                let prefix_arity = node.arity();
                let prefix_cols: Vec<usize> = (0..prefix_arity).collect();
                let mut certain = Relation::new(prefix_arity);
                for t in dividend.certain.iter() {
                    let prefix = t.project(&prefix_cols);
                    if divisor
                        .possible
                        .iter()
                        .all(|s| dividend.certain.contains(&prefix.concat(s)))
                    {
                        certain.insert(prefix);
                    }
                }
                ApproxAnswer {
                    certain,
                    possible: project(&dividend.possible, &prefix_cols),
                }
            }
        }
    }
}

/// Lazily materializes the active-domain diagonal `Δ` of one side's database.
fn delta_of<'a>(cache: &'a mut Option<Relation>, db: &Database) -> &'a Relation {
    if cache.is_none() {
        *cache = Some(Relation::from_tuples(2, super::delta_diagonal(db)));
    }
    cache.as_ref().expect("just initialised")
}

fn project(rel: &Relation, cols: &[usize]) -> Relation {
    Relation::from_tuples(cols.len(), rel.iter().map(|t| t.project(cols)))
}

fn product(a: &Relation, b: &Relation) -> Relation {
    let mut out = Vec::with_capacity(a.len().saturating_mul(b.len()));
    for l in a.iter() {
        for r in b.iter() {
            out.push(l.concat(r));
        }
    }
    Relation::from_tuples(a.arity() + b.arity(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::eval_approx_unchecked;
    use relalgebra::ast::RaExpr;
    use relalgebra::plan::PlannedQuery;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::{DatabaseBuilder, Value};

    fn db() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b", "c"])
            .relation("U", &["b"])
            .ints("R", &[1, 10])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .tuple("R", vec![Value::null(1), Value::int(10)])
            .ints("S", &[10, 100])
            .tuple("S", vec![Value::null(0), Value::int(200)])
            .ints("U", &[10])
            .tuple("U", vec![Value::null(2)])
            .build()
    }

    fn assert_matches_logical(expr: &RaExpr) {
        let d = db();
        let plan = PlannedQuery::new(expr.clone(), d.schema()).unwrap();
        let physical = execute_approx(plan.physical(), &d);
        let logical = eval_approx_unchecked(expr, &d);
        assert_eq!(
            physical.certain, logical.certain,
            "certain side diverged for {expr}"
        );
        assert_eq!(
            physical.possible, logical.possible,
            "possible side diverged for {expr}"
        );
    }

    #[test]
    fn joins_with_null_keys_keep_the_possible_side_complete() {
        // R(2,⊥0) can join S(10,100) and S(⊥0,200) in some valuation; the
        // possible side must keep those pairs even though the hash key ⊥0
        // matches nothing syntactically except itself.
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let d = db();
        let plan = PlannedQuery::new(q.clone(), d.schema()).unwrap();
        let (answer, stats) = execute_approx_counted(plan.physical(), &d);
        assert!(stats.hash_joins >= 1, "certain side must hash");
        assert!(
            stats.fallback_pairs > 0,
            "null keys go through the fallback"
        );
        assert!(answer.possible.len() > answer.certain.len());
        assert_matches_logical(&q);
    }

    #[test]
    fn every_operator_matches_the_logical_pair_evaluator() {
        let r = RaExpr::relation("R");
        let join = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let cases = vec![
            r.clone(),
            r.clone().project(vec![0]),
            r.clone()
                .select(Predicate::neq(Operand::col(0), Operand::int(1))),
            join.clone(),
            join.project(vec![0, 3]),
            r.clone().project(vec![1]).union(RaExpr::relation("U")),
            r.clone().project(vec![1]).difference(RaExpr::relation("U")),
            r.clone()
                .project(vec![1])
                .intersection(RaExpr::relation("U")),
            r.clone().divide(RaExpr::relation("U")),
            RaExpr::Delta.union(RaExpr::Delta),
            RaExpr::values(Relation::from_tuples(
                2,
                vec![Tuple::new(vec![Value::null(0), Value::int(7)])],
            ))
            .union(r.clone()),
            r.clone()
                .difference(RaExpr::relation("S"))
                .select(Predicate::eq(Operand::col(0), Operand::int(2))),
        ];
        for q in cases {
            assert_matches_logical(&q);
        }
    }

    #[test]
    fn fixes_the_naive_difference_failure_like_the_logical_evaluator() {
        let d = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .tuple("S", vec![Value::int(1), Value::null(1)])
            .build();
        let q = RaExpr::relation("R")
            .difference(RaExpr::relation("S"))
            .project(vec![0]);
        let plan = PlannedQuery::new(q, d.schema()).unwrap();
        let out = execute_approx(plan.physical(), &d);
        assert!(out.certain.is_empty());
        assert!(out.possible.contains(&Tuple::ints(&[1])));
    }
}
