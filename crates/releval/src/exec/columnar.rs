//! The morsel-driven columnar executor: batch the ground, isolate the
//! symbolic.
//!
//! This module is the batched counterpart of the row-at-a-time executor in
//! [`super`] (which is kept as the differential-fuzz reference). The same
//! [`PhysicalPlan`] runs under both; the difference is purely physical:
//!
//! * **Columnar batches.** Operators consume and produce
//!   [`ColumnBatch`]es — column vectors of [`Value`] with a
//!   validity/null-id sidecar per column — instead of `Cow<Tuple>` rows. No
//!   per-row `Tuple` (and no per-key `Vec<Value>`) is allocated on the hot
//!   path; predicates and join residuals evaluate in place through
//!   `Predicate::eval_naive_on`.
//! * **Morsels.** Inner loops run over fixed-size row ranges
//!   ([`morsel_rows`] rows at a time, overridable via the `MORSEL_ROWS`
//!   environment variable) so a chunk's columns stay cache-resident;
//!   [`OpStats::batches`] counts the chunks.
//! * **Ground/symbolic runs.** The `SplitIndex` idea of the row core,
//!   lifted to batch granularity: [`ColumnBatch::ground_split`] reads the
//!   sidecars — built **once per input relation per execution**, during the
//!   leaf transpose, and reused by every operator — and partitions a batch
//!   into a ground run for the tight hash/compare loops and a symbolic
//!   remainder for the per-row fallback. Under this executor's syntactic
//!   equality every row is ground; the valuation-aware executors in
//!   [`approx`] and [`ctable`] are where the split earns its keep.
//! * **Raw `u64` hashing.** The `RowTable` kernel chains row ids under
//!   precomputed 64-bit hashes (`hash_key`) — build and probe never
//!   allocate, and a probe touches only `heads`/`next`/`hashes` until a
//!   hash matches, when the caller verifies column-wise equality.
//!
//! Scans transpose each relation **once per execution** and serve every
//! scan of that relation from the cache (the batched analogue of hoisting
//! `SplitIndex` construction out of per-node evaluation); the Δ diagonal is
//! likewise computed once. Conversion back to the set-semantics
//! [`Relation`] happens once, at the root.

pub mod approx;
pub mod ctable;
pub mod split;

use std::collections::HashMap;
use std::rc::Rc;

use relalgebra::physical::{PhysNode, PhysOp, PhysicalPlan};
use relmodel::batch::{morsel_ranges, morsel_rows, ColumnBatch};
use relmodel::value::{Constant, Value};
use relmodel::{Database, Relation};

use super::{NodeProfile, OpStats};

/// Executes a physical plan over a database under **syntactic** value
/// equality, on the batched core — the columnar counterpart of
/// [`super::execute`], and the executor the naive/complete strategies and
/// the worlds fold now run.
pub fn execute(plan: &PhysicalPlan, db: &Database) -> Relation {
    execute_counted(plan, db).0
}

/// [`execute`] plus the operator telemetry.
pub fn execute_counted(plan: &PhysicalPlan, db: &Database) -> (Relation, OpStats) {
    execute_counted_with_morsel(plan, db, morsel_rows())
}

/// [`execute_counted`] with an explicit morsel size — the differential
/// tests sweep this to pin chunk-boundary behaviour, and benches use it to
/// isolate the knob.
pub fn execute_counted_with_morsel(
    plan: &PhysicalPlan,
    db: &Database,
    morsel: usize,
) -> (Relation, OpStats) {
    let mut exec = ColumnarExec {
        db,
        scans: HashMap::new(),
        delta: None,
        morsel: morsel.max(1),
        stats: OpStats::default(),
        profile: None,
    };
    let out = exec.eval(plan.root());
    (out.to_relation(), exec.stats)
}

/// [`execute_counted_with_morsel`] plus a per-node [`NodeProfile`] for every
/// operator in the plan — the measurement pass behind `EXPLAIN ANALYZE`.
///
/// Profiles are **inclusive** (a node's time/batches cover its whole
/// subtree, Postgres-style) and keyed by [`PhysNode::id`]; they are emitted
/// in completion (post) order, so the root is last. Wall-clock lives here
/// and *not* in [`OpStats`], which stays deterministic and `Eq`-comparable
/// across executors.
pub fn execute_profiled_with_morsel(
    plan: &PhysicalPlan,
    db: &Database,
    morsel: usize,
) -> (Relation, OpStats, Vec<NodeProfile>) {
    let mut exec = ColumnarExec {
        db,
        scans: HashMap::new(),
        delta: None,
        morsel: morsel.max(1),
        stats: OpStats::default(),
        profile: Some(Vec::with_capacity(plan.operator_count())),
    };
    let out = exec.eval(plan.root());
    let profiles = exec.profile.take().expect("profiling was requested");
    (out.to_relation(), exec.stats, profiles)
}

/// [`execute`] with a caller-provided stats accumulator — the worlds
/// strategy threads one accumulator through its whole per-world loop.
pub fn execute_into(plan: &PhysicalPlan, db: &Database, stats: &mut OpStats) -> Relation {
    let (answers, run) = execute_counted(plan, db);
    stats.merge(&run);
    answers
}

struct ColumnarExec<'a> {
    db: &'a Database,
    /// Per-execution transpose cache: each relation is converted to a batch
    /// (values and validity sidecars) once, no matter how many scans
    /// reference it.
    scans: HashMap<&'a str, Rc<ColumnBatch>>,
    delta: Option<Rc<ColumnBatch>>,
    morsel: usize,
    stats: OpStats,
    /// When `Some`, every `eval` appends an inclusive [`NodeProfile`] for
    /// the node it just finished. `None` costs one branch per operator —
    /// nothing on the per-row path.
    profile: Option<Vec<NodeProfile>>,
}

impl<'a> ColumnarExec<'a> {
    /// Evaluates a node to a duplicate-free batch, recording an inclusive
    /// per-node profile when profiling is on.
    fn eval(&mut self, node: &'a PhysNode) -> Rc<ColumnBatch> {
        if self.profile.is_none() {
            return self.eval_op(node);
        }
        let batches_before = self.stats.batches;
        let built_before = self.stats.tables_built;
        let reused_before = self.stats.tables_reused;
        let started = std::time::Instant::now();
        let out = self.eval_op(node);
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let stats = &self.stats;
        let sample = NodeProfile {
            id: node.id(),
            rows: out.len(),
            batches: stats.batches - batches_before,
            tables_built: stats.tables_built - built_before,
            tables_reused: stats.tables_reused - reused_before,
            nanos,
        };
        self.profile.as_mut().expect("checked above").push(sample);
        out
    }

    /// The operator dispatch proper (leaves are sets; every operator
    /// preserves the duplicate-free invariant, deduplicating where it must).
    fn eval_op(&mut self, node: &'a PhysNode) -> Rc<ColumnBatch> {
        self.stats.operators += 1;
        match node.op() {
            PhysOp::Scan(name) => {
                let db = self.db;
                Rc::clone(self.scans.entry(name.as_str()).or_insert_with(|| {
                    Rc::new(ColumnBatch::from_relation(
                        db.relation(name)
                            .expect("physical plans are lowered from typechecked queries"),
                    ))
                }))
            }
            PhysOp::Values(rel) => Rc::new(ColumnBatch::from_relation(rel)),
            PhysOp::Delta => {
                if self.delta.is_none() {
                    let rows = super::delta_diagonal(self.db);
                    self.delta = Some(Rc::new(ColumnBatch::from_rows(2, rows.iter())));
                }
                Rc::clone(self.delta.as_ref().expect("just initialised"))
            }
            PhysOp::Filter { input, predicate } => {
                let input = self.eval(input);
                let keep = select_rows(&input, self.morsel, &mut self.stats, |row| {
                    predicate.eval_naive_on(&|i| input.value(i, row))
                });
                if keep.len() == input.len() {
                    input
                } else {
                    Rc::new(input.gather(&keep))
                }
            }
            PhysOp::Project { input, columns } => {
                let input = self.eval(input);
                Rc::new(project_dedup(&input, columns, self.morsel, &mut self.stats))
            }
            PhysOp::NestedProduct { left, right } => {
                let l = self.eval(left);
                let r = self.eval(right);
                Rc::new(product(&l, &r, self.morsel, &mut self.stats))
            }
            PhysOp::HashJoin {
                left,
                right,
                keys,
                residual,
            } => {
                let la = left.arity();
                let l = self.eval(left);
                let r = self.eval(right);
                let out = syntactic_join(
                    &l,
                    &r,
                    keys,
                    |li, ri| {
                        residual.as_ref().is_none_or(|p| {
                            p.eval_naive_on(&|i| {
                                if i < la {
                                    l.value(i, li)
                                } else {
                                    r.value(i - la, ri)
                                }
                            })
                        })
                    },
                    self.morsel,
                    &mut self.stats,
                );
                Rc::new(out)
            }
            PhysOp::Union { left, right } => {
                let l = self.eval(left);
                let r = self.eval(right);
                Rc::new(union_batches(&l, &r, self.morsel, &mut self.stats))
            }
            PhysOp::Difference { left, right } => {
                let l = self.eval(left);
                let r = self.eval(right);
                let keep = membership_keep(&l, &r, false, self.morsel, &mut self.stats);
                Rc::new(l.gather(&keep))
            }
            PhysOp::Intersect { left, right } => {
                let l = self.eval(left);
                let r = self.eval(right);
                let keep = membership_keep(&l, &r, true, self.morsel, &mut self.stats);
                Rc::new(l.gather(&keep))
            }
            PhysOp::Divide { left, right } => {
                let dividend = self.eval(left);
                let divisor = self.eval(right);
                Rc::new(divide_syntactic(
                    &dividend,
                    &divisor,
                    node.arity(),
                    self.morsel,
                    &mut self.stats,
                ))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Hash kernel: raw 64-bit hashes over values, no per-key allocation.
// ---------------------------------------------------------------------------

pub(crate) const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

#[inline]
fn mix(h: u64, x: u64) -> u64 {
    // FNV-1a style fold over 64-bit lanes; `finish` supplies the avalanche.
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

#[inline]
pub(crate) fn finish(mut h: u64) -> u64 {
    // 64-bit finalizer (murmur3-style): the RowTable masks low bits, so the
    // folded hash must avalanche before bucketing.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// Folds one value into a running hash. Tags separate the `Int`/`Str`/`Null`
/// payload spaces so `Int(1)`, `Str("\x01")`, and `⊥1` never collide by
/// construction.
#[inline]
pub(crate) fn hash_value(h: u64, v: &Value) -> u64 {
    match v {
        Value::Const(Constant::Int(i)) => mix(mix(h, 0x11), *i as u64),
        Value::Const(Constant::Str(s)) => {
            let mut h = mix(mix(h, 0x22), s.len() as u64);
            for chunk in s.as_bytes().chunks(8) {
                let mut lane = [0u8; 8];
                lane[..chunk.len()].copy_from_slice(chunk);
                h = mix(h, u64::from_le_bytes(lane));
            }
            h
        }
        Value::Null(n) => mix(mix(h, 0x33), n.0),
    }
}

/// The hash of a batch row's values at `cols`, folded left to right.
#[inline]
pub(crate) fn hash_key(batch: &ColumnBatch, cols: &[usize], row: usize) -> u64 {
    finish(
        cols.iter()
            .fold(HASH_SEED, |h, &c| hash_value(h, batch.value(c, row))),
    )
}

/// The same key hash over a materialized [`Tuple`](relmodel::Tuple) — used
/// by the c-table executor, whose rows carry conditions and therefore stay
/// row-shaped.
#[inline]
pub(crate) fn hash_tuple_key(tuple: &relmodel::Tuple, cols: &[usize]) -> u64 {
    finish(
        cols.iter()
            .fold(HASH_SEED, |h, &c| hash_value(h, &tuple[c])),
    )
}

/// A chained hash table from precomputed `u64` hashes to row ids — the
/// executor's one join/dedup/membership kernel. Capacity is fixed at
/// construction (the caller knows the maximum insert count), and `probe`
/// yields every inserted row whose full hash matches; the caller verifies
/// actual equality column-wise, so collisions cost comparisons, never
/// correctness.
pub(crate) struct RowTable {
    mask: u64,
    heads: Vec<u32>,
    hashes: Vec<u64>,
    next: Vec<u32>,
    rows: Vec<u32>,
}

const EMPTY: u32 = u32::MAX;

impl RowTable {
    /// A table sized for up to `rows` insertions (load factor ≤ 0.5).
    pub fn with_capacity(rows: usize) -> Self {
        let buckets = rows.saturating_mul(2).next_power_of_two().max(8);
        RowTable {
            mask: (buckets - 1) as u64,
            heads: vec![EMPTY; buckets],
            hashes: Vec::with_capacity(rows),
            next: Vec::with_capacity(rows),
            rows: Vec::with_capacity(rows),
        }
    }

    /// Chains `row` under `hash`.
    pub fn insert(&mut self, hash: u64, row: u32) {
        let slot = (hash & self.mask) as usize;
        let idx = self.rows.len() as u32;
        self.rows.push(row);
        self.hashes.push(hash);
        self.next.push(self.heads[slot]);
        self.heads[slot] = idx;
    }

    /// Every inserted row whose hash equals `hash`, most recent first.
    pub fn probe(&self, hash: u64) -> Probe<'_> {
        Probe {
            table: self,
            hash,
            cursor: self.heads[(hash & self.mask) as usize],
        }
    }
}

/// Iterator over a [`RowTable`] probe chain.
pub(crate) struct Probe<'a> {
    table: &'a RowTable,
    hash: u64,
    cursor: u32,
}

impl Iterator for Probe<'_> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        while self.cursor != EMPTY {
            let i = self.cursor as usize;
            self.cursor = self.table.next[i];
            if self.table.hashes[i] == self.hash {
                return Some(self.table.rows[i]);
            }
        }
        None
    }
}

/// Builds a [`RowTable`] over every row of `batch`, keyed on `cols`.
pub(crate) fn build_key_table(batch: &ColumnBatch, cols: &[usize]) -> RowTable {
    let mut table = RowTable::with_capacity(batch.len());
    for row in 0..batch.len() {
        table.insert(hash_key(batch, cols, row), row as u32);
    }
    table
}

/// Builds a [`RowTable`] over a subset of rows (a ground run), keyed on
/// `cols`.
pub(crate) fn build_key_table_for(batch: &ColumnBatch, cols: &[usize], rows: &[u32]) -> RowTable {
    let mut table = RowTable::with_capacity(rows.len());
    for &row in rows {
        table.insert(hash_key(batch, cols, row as usize), row);
    }
    table
}

// ---------------------------------------------------------------------------
// Shared columnar operator kernels (plain executor + the certain sides of
// the pair executor).
// ---------------------------------------------------------------------------

/// Morsel-chunked selection: the kept row ids, in order.
pub(crate) fn select_rows(
    batch: &ColumnBatch,
    morsel: usize,
    stats: &mut OpStats,
    keep: impl Fn(usize) -> bool,
) -> Vec<u32> {
    let mut out = Vec::new();
    for range in morsel_ranges(batch.len(), morsel) {
        stats.batches += 1;
        for row in range {
            if keep(row) {
                out.push(row as u32);
            }
        }
    }
    out
}

/// Morsel-chunked duplicate-eliminating projection: gathers `cols` of each
/// row, keeping the first occurrence of every projected row (hash dedup in
/// the same pass — no intermediate batch).
pub(crate) fn project_dedup(
    input: &ColumnBatch,
    cols: &[usize],
    morsel: usize,
    stats: &mut OpStats,
) -> ColumnBatch {
    let out_cols: Vec<usize> = (0..cols.len()).collect();
    let mut out = ColumnBatch::with_capacity(cols.len(), input.len());
    stats.tables_built += 1;
    let mut table = RowTable::with_capacity(input.len());
    for range in morsel_ranges(input.len(), morsel) {
        stats.batches += 1;
        for row in range {
            let h = hash_key(input, cols, row);
            let dup = table
                .probe(h)
                .any(|o| out.keys_equal(o as usize, &out_cols, input, row, cols));
            if !dup {
                table.insert(h, out.len() as u32);
                out.push_gather(input, row, cols);
            }
        }
    }
    out
}

/// Morsel-chunked nested-loop product.
pub(crate) fn product(
    l: &ColumnBatch,
    r: &ColumnBatch,
    morsel: usize,
    stats: &mut OpStats,
) -> ColumnBatch {
    let mut out =
        ColumnBatch::with_capacity(l.arity() + r.arity(), l.len().saturating_mul(r.len()));
    for range in morsel_ranges(l.len(), morsel) {
        stats.batches += 1;
        for li in range {
            for ri in 0..r.len() {
                out.push_concat(l, li, r, ri);
            }
        }
    }
    out
}

/// The columnar syntactic hash equi-join: builds a [`RowTable`] on the
/// smaller side's key columns, probes with the other in morsel chunks, and
/// keeps concatenated rows passing `keep` (called with the *left* and
/// *right* row ids; the output is always left-then-right). Serves both the
/// plain executor and — with a marked-3VL residual check — the certain side
/// of the pair executor, exactly like the row kernel it replaces.
pub(crate) fn syntactic_join(
    l: &ColumnBatch,
    r: &ColumnBatch,
    keys: &[(usize, usize)],
    keep: impl Fn(usize, usize) -> bool,
    morsel: usize,
    stats: &mut OpStats,
) -> ColumnBatch {
    let left_cols: Vec<usize> = keys.iter().map(|(lc, _)| *lc).collect();
    let right_cols: Vec<usize> = keys.iter().map(|(_, rc)| *rc).collect();
    let build_left = l.len() <= r.len();
    let (build, probe, build_cols, probe_cols) = if build_left {
        (l, r, &left_cols, &right_cols)
    } else {
        (r, l, &right_cols, &left_cols)
    };
    stats.hash_joins += 1;
    stats.build_rows += build.len();
    stats.probe_rows += probe.len();
    // Syntactic equality: every probed row takes the ground path.
    stats.ground_rows += probe.len();
    stats.tables_built += 1;
    let table = build_key_table(build, build_cols);
    let mut out = ColumnBatch::with_capacity(l.arity() + r.arity(), probe.len());
    for range in morsel_ranges(probe.len(), morsel) {
        stats.batches += 1;
        for prow in range {
            let h = hash_key(probe, probe_cols, prow);
            for brow in table.probe(h) {
                let brow = brow as usize;
                if !build.keys_equal(brow, build_cols, probe, prow, probe_cols) {
                    continue;
                }
                let (li, ri) = if build_left {
                    (brow, prow)
                } else {
                    (prow, brow)
                };
                if keep(li, ri) {
                    out.push_concat(l, li, r, ri);
                }
            }
        }
    }
    stats.join_rows_out += out.len();
    out
}

/// Columnar set union: all of `l`, plus the rows of `r` with no syntactic
/// duplicate in `l` (both inputs duplicate-free by the operator invariant).
pub(crate) fn union_batches(
    l: &ColumnBatch,
    r: &ColumnBatch,
    morsel: usize,
    stats: &mut OpStats,
) -> ColumnBatch {
    if r.is_empty() {
        return l.clone();
    }
    if l.is_empty() {
        return r.clone();
    }
    let all_cols: Vec<usize> = (0..l.arity()).collect();
    stats.tables_built += 1;
    let table = build_key_table(l, &all_cols);
    stats.ground_rows += r.len();
    let mut out = l.clone();
    for range in morsel_ranges(r.len(), morsel) {
        stats.batches += 1;
        for row in range {
            let h = hash_key(r, &all_cols, row);
            let dup = table.probe(h).any(|lr| l.rows_equal(lr as usize, r, row));
            if !dup {
                out.push_gather(r, row, &all_cols);
            }
        }
    }
    out
}

/// Full-row syntactic membership of `l`'s rows in `r`: the kept row ids —
/// members for intersection (`keep_member`), non-members for difference.
pub(crate) fn membership_keep(
    l: &ColumnBatch,
    r: &ColumnBatch,
    keep_member: bool,
    morsel: usize,
    stats: &mut OpStats,
) -> Vec<u32> {
    let all_cols: Vec<usize> = (0..l.arity()).collect();
    stats.tables_built += 1;
    let table = build_key_table(r, &all_cols);
    stats.ground_rows += l.len();
    let mut out = Vec::new();
    for range in morsel_ranges(l.len(), morsel) {
        stats.batches += 1;
        for row in range {
            let h = hash_key(l, &all_cols, row);
            let member = table.probe(h).any(|rr| r.rows_equal(rr as usize, l, row));
            if member == keep_member {
                out.push(row as u32);
            }
        }
    }
    out
}

/// Hash-lookup relational division on batches: distinct dividend prefixes,
/// each checked against every divisor row via a full-row membership table —
/// the incremental hash of `prefix ++ suffix` never materializes the
/// combined row.
pub(crate) fn divide_syntactic(
    dividend: &ColumnBatch,
    divisor: &ColumnBatch,
    prefix_arity: usize,
    morsel: usize,
    stats: &mut OpStats,
) -> ColumnBatch {
    let prefix_cols: Vec<usize> = (0..prefix_arity).collect();
    let all_cols: Vec<usize> = (0..dividend.arity()).collect();
    stats.ground_rows += dividend.len();
    // Distinct prefixes, in first-occurrence order.
    let mut reps: Vec<u32> = Vec::new();
    stats.tables_built += 1;
    let mut prefixes = RowTable::with_capacity(dividend.len());
    for range in morsel_ranges(dividend.len(), morsel) {
        stats.batches += 1;
        for row in range {
            let h = hash_key(dividend, &prefix_cols, row);
            let dup = prefixes.probe(h).any(|p| {
                dividend.keys_equal(p as usize, &prefix_cols, dividend, row, &prefix_cols)
            });
            if !dup {
                prefixes.insert(h, row as u32);
                reps.push(row as u32);
            }
        }
    }
    stats.tables_built += 1;
    let full = build_key_table(dividend, &all_cols);
    let mut out = ColumnBatch::with_capacity(prefix_arity, reps.len());
    for &rep in &reps {
        let rep = rep as usize;
        let qualifies = (0..divisor.len()).all(|srow| {
            let mut h = HASH_SEED;
            for &c in &prefix_cols {
                h = hash_value(h, dividend.value(c, rep));
            }
            for c in 0..divisor.arity() {
                h = hash_value(h, divisor.value(c, srow));
            }
            full.probe(finish(h)).any(|d| {
                let d = d as usize;
                dividend.keys_equal(d, &prefix_cols, dividend, rep, &prefix_cols)
                    && (0..divisor.arity())
                        .all(|c| dividend.value(prefix_arity + c, d) == divisor.value(c, srow))
            })
        });
        if qualifies {
            out.push_gather(dividend, rep, &prefix_cols);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::ast::RaExpr;
    use relalgebra::plan::PlannedQuery;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::{DatabaseBuilder, Tuple};

    fn db() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b", "c"])
            .relation("U", &["b"])
            .ints("R", &[1, 10])
            .ints("R", &[2, 20])
            .ints("R", &[1, 20])
            .tuple("R", vec![Value::int(3), Value::null(0)])
            .ints("S", &[10, 100])
            .ints("S", &[20, 200])
            .tuple("S", vec![Value::null(0), Value::int(300)])
            .ints("U", &[10])
            .ints("U", &[20])
            .build()
    }

    fn cases() -> Vec<RaExpr> {
        let r = RaExpr::relation("R");
        let join = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        vec![
            r.clone(),
            r.clone().project(vec![1]),
            r.clone()
                .select(Predicate::eq(Operand::col(0), Operand::int(1))),
            r.clone().product(RaExpr::relation("U")),
            join.clone(),
            join.clone().project(vec![0, 3]),
            RaExpr::relation("R").product(RaExpr::relation("S")).select(
                Predicate::eq(Operand::col(1), Operand::col(2))
                    .and(Predicate::neq(Operand::col(0), Operand::col(3))),
            ),
            r.clone().project(vec![0]).union(RaExpr::relation("U")),
            r.clone().project(vec![1]).difference(RaExpr::relation("U")),
            r.clone()
                .project(vec![1])
                .intersection(RaExpr::relation("U")),
            r.clone().divide(RaExpr::relation("U")),
            RaExpr::Delta,
            RaExpr::Delta.union(RaExpr::Delta),
            RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[7])]))
                .union(r.clone().project(vec![0])),
        ]
    }

    /// The batched executor must agree with the row-at-a-time reference on
    /// every operator, at every morsel size (chunk boundaries included).
    #[test]
    fn columnar_matches_row_reference_across_morsel_sizes() {
        let d = db();
        for q in cases() {
            let plan = PlannedQuery::new(q.clone(), d.schema()).unwrap();
            let reference = super::super::execute(plan.physical(), &d);
            for morsel in [1, 2, 3, 1024] {
                let (batched, _) = execute_counted_with_morsel(plan.physical(), &d, morsel);
                assert_eq!(
                    batched, reference,
                    "columnar != row for {q} (morsel {morsel})"
                );
            }
        }
    }

    #[test]
    fn scan_cache_transposes_each_relation_once() {
        // R is scanned twice; the per-execution cache must serve the second
        // scan from the first transpose (same Rc).
        let d = db();
        let q = RaExpr::relation("R").union(RaExpr::relation("R"));
        let plan = PlannedQuery::new(q, d.schema()).unwrap();
        let mut exec = ColumnarExec {
            db: &d,
            scans: HashMap::new(),
            delta: None,
            morsel: 1024,
            stats: OpStats::default(),
            profile: None,
        };
        exec.eval(plan.physical().root());
        assert_eq!(exec.scans.len(), 1);
        assert_eq!(
            Rc::strong_count(exec.scans.get("R").expect("R cached")),
            1,
            "both scans dropped their clones; the cache holds the last"
        );
    }

    #[test]
    fn telemetry_counts_batches_and_runs() {
        let d = db();
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let plan = PlannedQuery::new(q, d.schema()).unwrap();
        let (_, stats) = execute_counted_with_morsel(plan.physical(), &d, 2);
        assert!(stats.batches >= 2, "4 probe rows at morsel 2 → ≥2 chunks");
        assert_eq!(stats.hash_joins, 1);
        assert_eq!(
            stats.ground_rows, stats.probe_rows,
            "plain execution routes every probed row through the ground run"
        );
        assert_eq!(stats.symbolic_rows, 0);
    }

    #[test]
    fn row_table_probe_filters_by_hash_and_caller_verifies() {
        let batch = ColumnBatch::from_rows(
            1,
            [
                Tuple::ints(&[1]),
                Tuple::ints(&[2]),
                Tuple::ints(&[1]),
                Tuple::new(vec![Value::null(0)]),
            ]
            .iter(),
        );
        let table = build_key_table(&batch, &[0]);
        let h = hash_key(&batch, &[0], 0);
        let hits: Vec<u32> = table.probe(h).collect();
        assert!(hits.contains(&0) && hits.contains(&2));
        assert!(!hits.contains(&3), "⊥0 hashes in a different tag space");
    }

    #[test]
    fn hash_tags_separate_value_kinds() {
        let one = hash_value(HASH_SEED, &Value::int(1));
        let null_one = hash_value(HASH_SEED, &Value::null(1));
        let str_one = hash_value(HASH_SEED, &Value::str("\u{1}"));
        assert_ne!(one, null_one);
        assert_ne!(one, str_one);
        assert_ne!(null_one, str_one);
        // Strings hash by content, length included.
        assert_eq!(
            hash_value(HASH_SEED, &Value::str("ab")),
            hash_value(HASH_SEED, &Value::str("ab"))
        );
        assert_ne!(
            hash_value(HASH_SEED, &Value::str("ab")),
            hash_value(HASH_SEED, &Value::str("abc"))
        );
    }
}
